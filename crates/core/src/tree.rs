//! The Citrus tree algorithm (paper §3), line for line.
//!
//! * `get` — wait-free search inside an RCU read-side critical section
//!   (lines 1–15 → [`CitrusSession::search`]).
//! * `contains` — `get` plus a value read (lines 16–20 →
//!   [`CitrusSession::get`]).
//! * `insert` — search, lock `prev` **outside** the read-side section,
//!   validate, link a new leaf (lines 21–32 → [`CitrusSession::insert`]).
//! * `delete` — search, lock `prev` and `curr`, validate; a node with at
//!   most one child is *bypassed*; a node with two children is replaced by
//!   a **copy of its successor**, then the operation waits for concurrent
//!   searches with `synchronize_rcu` before unlinking the old successor
//!   (lines 42–84 → [`CitrusSession::remove`]).
//! * `validate` / `incrementTag` — lines 33–41 → [`validate`] /
//!   [`Node::increment_tag`].
//! * `range_scan` / `successor` / `predecessor` — ordered reads layered on
//!   the same read-side protocol (DESIGN.md §6i): collect an in-order
//!   traversal recording every crossed edge, re-check all of them after
//!   the walk, and restart from scratch when a concurrent update moved
//!   one.
//!
//! In **deferred-free mode** (`CITRUS_DEFERRED_FREE=1` or
//! [`CitrusTree::with_options`]; DESIGN.md §6g) the two-child delete does
//! not pay line 74's grace period inline: it splices the copy, transfers
//! the locks freezing the successor's old edge into an [`UnlinkRecord`],
//! and returns; a `call_rcu`-style batch ([`CallRcu`]) runs lines 75–83
//! after **one** shared grace period per batch.

use crate::metrics::TreeMetrics;
use crate::node::{Dir, KeyBound, Node};
use citrus_api::{ConcurrentMap, MapSession, OrderedMapSession};
use citrus_chaos as chaos;
use citrus_obs::MetricsRegistry;
use citrus_rcu::{RcuFlavor, RcuHandle, RcuReadGuard, ScalableRcu};
use citrus_reclaim::{
    deferred_free_from_env, CallRcu, CallRcuConfig, EbrDomain, EbrGuard, EbrHandle,
};
use citrus_sync::SpinMutex;
use core::cell::{Cell, RefCell};
use core::cmp::Ordering as CmpOrdering;
use core::fmt;
use core::marker::PhantomData;
use core::ptr;
use std::sync::Arc;
use std::time::Duration;

/// How removed nodes are reclaimed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReclaimMode {
    /// Removed nodes are queued and freed only when the tree is dropped.
    ///
    /// This is the paper's measurement methodology ("without performing any
    /// memory reclamation") — zero reclamation work on the operation path,
    /// unbounded transient memory.
    Leak,
    /// Removed nodes are retired to an epoch-based reclamation domain and
    /// freed after a grace period covering entire operations (the paper's
    /// future-work item; see `citrus-reclaim`). The default.
    #[default]
    Epoch,
}

enum ReclaimInner<K, V> {
    Leak(SpinMutex<Vec<*mut Node<K, V>>>),
    Epoch(EbrDomain),
}

// SAFETY: the graveyard pointers are owned (unlinked) allocations; handing
// them across threads is sound when the payloads are. The deferred-unlink
// machinery shares this sink across threads, hence the impls (guarded by
// the same bounds as the tree's own `Send`/`Sync`).
unsafe impl<K: Send + Sync, V: Send + Sync> Send for ReclaimInner<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for ReclaimInner<K, V> {}

impl<K, V> ReclaimInner<K, V> {
    /// Hands an unlinked node to the scheme, from any thread (the deferred
    /// flush callback runs wherever the flush does).
    ///
    /// # Safety
    ///
    /// `node` must be Box-allocated and unreachable from the root; threads
    /// may still hold references acquired while pinned (Epoch) or before
    /// tree drop (Leak).
    unsafe fn retire_node(&self, node: *mut Node<K, V>) {
        match self {
            ReclaimInner::Leak(graveyard) => graveyard.lock().push(node),
            // SAFETY: forwarded to the caller's contract.
            ReclaimInner::Epoch(domain) => unsafe { domain.retire_shared(node) },
        }
    }
}

impl<K, V> Drop for ReclaimInner<K, V> {
    fn drop(&mut self) {
        // Runs when the last owner (the tree, or the final in-flight
        // deferred-unlink record) goes away: every graveyard node is
        // unreachable by then.
        if let ReclaimInner::Leak(graveyard) = self {
            for p in graveyard.lock().drain(..) {
                // SAFETY: graveyard nodes were unlinked and never freed.
                unsafe { drop(Box::from_raw(p)) };
            }
        }
        // Epoch mode: the EbrDomain's own Drop frees its retired nodes.
    }
}

/// The Citrus tree: an internal binary search tree with fine-grained
/// locking among updaters and wait-free, RCU-protected `contains`.
///
/// Generic over the RCU implementation `F` — the paper's own scalable
/// flavor ([`ScalableRcu`], the default) or the classic global-lock flavor
/// ([`GlobalLockRcu`](citrus_rcu::GlobalLockRcu)) whose collapse Figure 8
/// demonstrates.
///
/// Threads operate through per-thread [`CitrusSession`]s.
///
/// # Example
///
/// ```
/// use citrus::CitrusTree;
///
/// let tree: CitrusTree<u64, &str> = CitrusTree::new();
/// let mut session = tree.session();
/// assert!(session.insert(1, "one"));
/// assert_eq!(session.get(&1), Some("one"));
/// assert!(session.remove(&1));
/// assert_eq!(session.get(&1), None);
/// ```
pub struct CitrusTree<K, V, F: RcuFlavor = ScalableRcu> {
    /// The `−1` sentinel; its right child is the `∞` sentinel and all real
    /// nodes live in the `∞` node's left subtree. Never changes.
    root: *mut Node<K, V>,
    /// Shared with the deferred machinery's flush path, which synchronizes
    /// on this domain from whichever thread flushes.
    rcu: Arc<F>,
    /// Shared with in-flight deferred-unlink records, which retire their
    /// successor into this sink when they run.
    reclaim: Arc<ReclaimInner<K, V>>,
    /// `Some` when two-child deletes defer their unlink to a `call_rcu`
    /// batch instead of synchronizing inline (DESIGN.md §6g).
    deferred: Option<CallRcu<F>>,
    metrics: TreeMetrics,
    _marker: PhantomData<Node<K, V>>,
}

// SAFETY: the tree is a concurrent container; all cross-thread access to
// node internals is mediated by atomics, per-node locks, RCU, and the
// reclamation protocol. Keys and values cross threads, hence the bounds.
unsafe impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> Send for CitrusTree<K, V, F> {}
unsafe impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> Sync for CitrusTree<K, V, F> {}

impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> CitrusTree<K, V, F> {
    /// Creates an empty tree with the default [`ReclaimMode::Epoch`].
    ///
    /// Two-child deletes synchronize inline (the paper's algorithm) unless
    /// the `CITRUS_DEFERRED_FREE` environment variable turns on deferred
    /// unlinking ([`deferred_free_from_env`]); use
    /// [`with_options`](Self::with_options) to pick explicitly.
    pub fn new() -> Self {
        Self::with_reclaim(ReclaimMode::default())
    }

    /// Creates an empty tree with the given reclamation mode (deferred
    /// unlinking per `CITRUS_DEFERRED_FREE`).
    pub fn with_reclaim(mode: ReclaimMode) -> Self {
        Self::with_rcu(F::new(), mode)
    }

    /// Creates an empty tree over a caller-constructed RCU domain — lets
    /// tests and ablations pin a domain configuration (e.g.
    /// `ScalableRcu::with_sharing(false)`) regardless of environment
    /// knobs like `CITRUS_RCU_NO_SHARING` (deferred unlinking still per
    /// `CITRUS_DEFERRED_FREE`).
    pub fn with_rcu(rcu: F, mode: ReclaimMode) -> Self {
        Self::with_options(rcu, mode, deferred_free_from_env())
    }

    /// Creates an empty tree with every mode pinned explicitly: the RCU
    /// domain, the reclamation scheme, and whether two-child deletes defer
    /// their unlink to a [`CallRcu`] batch (`deferred = true`) or pay the
    /// paper's inline `synchronize_rcu` (`deferred = false`).
    ///
    /// The `K: Send + Sync, V: Send + Sync` bounds on this impl block are
    /// what make deferred mode sound: pending unlink records free their
    /// node — key and value included — on whichever thread flushes.
    pub fn with_options(rcu: F, mode: ReclaimMode, deferred: bool) -> Self {
        Self::with_deferred_config(rcu, mode, deferred.then(Self::deferred_config))
    }

    /// Like [`with_options`](Self::with_options) but with the deferred
    /// [`CallRcuConfig`] pinned by the caller (`Some` enables deferred
    /// unlinking with exactly that tuning, `None` keeps the paper's
    /// inline `synchronize_rcu`). Schedule-exploration scenarios use this
    /// to make every flush run inline on the enqueuing (scheduled) thread
    /// — `batch_threshold: 1`, `eager_flush: true`, `wake_on_first:
    /// false` — so the straggler worker never participates.
    pub fn with_deferred_config(
        rcu: F,
        mode: ReclaimMode,
        deferred: Option<CallRcuConfig>,
    ) -> Self {
        let inf = Node::new_leaf(KeyBound::PosInf, None);
        let root = Node::new_leaf(KeyBound::NegInf, None);
        // SAFETY: freshly allocated, exclusively owned until `Self` exists.
        unsafe { (*root).set_child(Dir::Right, inf) };
        let rcu = Arc::new(rcu);
        Self {
            root,
            rcu: Arc::clone(&rcu),
            reclaim: Arc::new(match mode {
                ReclaimMode::Leak => ReclaimInner::Leak(SpinMutex::new(Vec::new())),
                ReclaimMode::Epoch => ReclaimInner::Epoch(EbrDomain::new()),
            }),
            deferred: deferred.map(|config| CallRcu::with_config(rcu, config)),
            metrics: TreeMetrics::new(),
            _marker: PhantomData,
        }
    }

    /// The tree's `call_rcu` tuning. Unlink records freeze two node locks
    /// until they run, so the flush cadence trades lock-frozen time
    /// against flush overhead: `eager_flush` makes the deleting thread
    /// that fills a batch run the flush itself — one shared grace period
    /// per `batch_threshold` deletes, zero worker wakeups in the steady
    /// state (a wakeup is two context switches, expensive when cores are
    /// scarce), and a frozen window bounded by the time the batch takes
    /// to fill. The worker only catches stragglers: `wake_on_first` plus
    /// the batch-build delay bound a lone record's frozen window when the
    /// delete rate drops to zero. Flushing per record instead measures
    /// *slower* than the inline algorithm on a single-core host: a
    /// context switch plus a grace period per delete.
    ///
    /// `CITRUS_DEFERRED_BATCH` (records) and
    /// `CITRUS_DEFERRED_INTERVAL_US` (microseconds) override the two
    /// knobs for experiments; the defaults are tuned on the committed
    /// benchmark host.
    fn deferred_config() -> CallRcuConfig {
        // Malformed values abort loudly instead of silently falling back:
        // a typo'd knob would otherwise make the run *look* configured.
        let env_u64 = |name: &str, default: u64| match std::env::var(name) {
            Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
                panic!("invalid {name}={raw:?}: {e} (expected an unsigned integer)")
            }),
            Err(std::env::VarError::NotPresent) => default,
            Err(e) => panic!("invalid {name}: {e}"),
        };
        CallRcuConfig {
            batch_threshold: env_u64("CITRUS_DEFERRED_BATCH", 16) as usize,
            worker_interval: Duration::from_micros(env_u64("CITRUS_DEFERRED_INTERVAL_US", 200)),
            wake_on_first: true,
            eager_flush: true,
        }
    }
}

impl<K, V, F: RcuFlavor> CitrusTree<K, V, F> {
    /// This tree's metric instruments (no-ops unless built with the
    /// `stats` feature).
    pub fn metrics(&self) -> &TreeMetrics {
        &self.metrics
    }

    /// Registers the whole stack's instruments into `registry`:
    ///
    /// * the tree's own counters under component `"citrus"`,
    /// * the RCU domain's under the flavor name (e.g. `"rcu-scalable"`),
    /// * in [`ReclaimMode::Epoch`], the reclamation domain's under
    ///   `"reclaim"`.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        self.register_metrics_prefixed(registry, "");
    }

    /// Like [`register_metrics`](Self::register_metrics) but with every
    /// component name prefixed — lets a harness keep several trees (e.g.
    /// one per benchmark point) apart in one registry.
    pub fn register_metrics_prefixed(&self, registry: &MetricsRegistry, prefix: &str) {
        self.metrics
            .register_into(registry, &format!("{prefix}citrus"));
        self.rcu
            .metrics()
            .register_into(registry, &format!("{prefix}{}", F::NAME));
        if let ReclaimInner::Epoch(domain) = &*self.reclaim {
            domain
                .metrics()
                .register_into(registry, &format!("{prefix}reclaim"));
        }
        if let Some(deferred) = &self.deferred {
            deferred
                .metrics()
                .register_into(registry, &format!("{prefix}deferred"));
        }
    }

    /// The tree's reclamation mode.
    pub fn reclaim_mode(&self) -> ReclaimMode {
        match &*self.reclaim {
            ReclaimInner::Leak(_) => ReclaimMode::Leak,
            ReclaimInner::Epoch(_) => ReclaimMode::Epoch,
        }
    }

    /// Whether two-child deletes defer their unlink to a [`CallRcu`] batch
    /// instead of calling `synchronize_rcu` inline.
    pub fn deferred_free(&self) -> bool {
        self.deferred.is_some()
    }

    /// The deferred-reclamation domain, when
    /// [`deferred_free`](Self::deferred_free) is on (diagnostics: batch
    /// and execution counts for benchmarks and tests).
    pub fn deferred(&self) -> Option<&CallRcu<F>> {
        self.deferred.as_ref()
    }

    /// Runs every pending deferred unlink to completion (no-op in inline
    /// mode). One shared grace period per queued batch; on return — given
    /// no concurrently active sessions — no successor is left awaiting
    /// unlink, which is what the quiescent inspection helpers in
    /// [`crate::checks`] rely on.
    pub fn flush_deferred(&self) {
        if let Some(deferred) = &self.deferred {
            deferred.drain();
        }
    }

    /// The RCU domain (diagnostics: grace-period counts for benchmarks).
    pub fn rcu(&self) -> &F {
        &self.rcu
    }

    /// Number of removed nodes already freed by the reclamation scheme:
    /// `Some(count)` in [`ReclaimMode::Epoch`], `None` in
    /// [`ReclaimMode::Leak`] (nothing is freed before drop).
    pub fn reclaimed_count(&self) -> Option<u64> {
        match &*self.reclaim {
            ReclaimInner::Epoch(domain) => Some(domain.freed_count()),
            ReclaimInner::Leak(_) => None,
        }
    }

    /// Creates a session for the calling thread.
    ///
    /// Sessions are cheap (one RCU reader slot, one optional reclamation
    /// slot) but not free — create one per thread, not per operation.
    pub fn session(&self) -> CitrusSession<'_, K, V, F> {
        CitrusSession {
            tree: self,
            rcu: self.rcu.register(),
            ebr: match &*self.reclaim {
                ReclaimInner::Epoch(domain) => Some(domain.register()),
                ReclaimInner::Leak(_) => None,
            },
            graveyard: RefCell::new(Vec::new()),
            stats: SessionStats::default(),
            stripe: self.metrics.assign_stripe(),
        }
    }

    /// Root pointer, for the invariant checkers in [`crate::checks`].
    pub(crate) fn root_ptr(&self) -> *mut Node<K, V> {
        self.root
    }
}

impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> Default for CitrusTree<K, V, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, F: RcuFlavor> Drop for CitrusTree<K, V, F> {
    fn drop(&mut self) {
        // `&mut self`: no sessions exist (they borrow the tree), so every
        // reachable node is exclusively ours.
        //
        // Shut down the deferred machinery *first*: its drop joins the
        // worker and runs every pending unlink record, so by the time the
        // root sweep below starts, every deferred successor has been
        // unlinked and retired into `self.reclaim` — the sweep and the
        // reclamation sink are disjoint again (delete unlinks before
        // retiring).
        drop(self.deferred.take());
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            // SAFETY: reachable nodes form a tree (Lemma 6: single parent),
            // so each is visited exactly once.
            unsafe {
                stack.push((*p).child(Dir::Left));
                stack.push((*p).child(Dir::Right));
                drop(Box::from_raw(p));
            }
        }
        // Leak graveyard and Epoch orphans are freed by `ReclaimInner`'s /
        // `EbrDomain`'s own Drop when the last `Arc` reference (normally
        // this one) goes away.
    }
}

impl<K: fmt::Debug, V, F: RcuFlavor> fmt::Debug for CitrusTree<K, V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CitrusTree")
            .field("rcu", &F::NAME)
            .field("reclaim", &self.reclaim_mode())
            .field("deferred", &self.deferred_free())
            .finish_non_exhaustive()
    }
}

impl<K, V, F> ConcurrentMap<K, V> for CitrusTree<K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    type Session<'a>
        = CitrusSession<'a, K, V, F>
    where
        Self: 'a;

    const NAME: &'static str = "citrus";

    fn session(&self) -> CitrusSession<'_, K, V, F> {
        CitrusTree::session(self)
    }
}

/// Per-session operation statistics (diagnostics for tests and ablations).
#[derive(Debug, Default)]
pub struct SessionStats {
    insert_retries: Cell<u64>,
    remove_retries: Cell<u64>,
    synchronize_calls: Cell<u64>,
    deferred_unlinks: Cell<u64>,
    scan_restarts: Cell<u64>,
}

impl SessionStats {
    /// Times an `insert` failed validation and restarted.
    pub fn insert_retries(&self) -> u64 {
        self.insert_retries.get()
    }

    /// Times a `remove` failed validation and restarted.
    pub fn remove_retries(&self) -> u64 {
        self.remove_retries.get()
    }

    /// `synchronize_rcu` invocations (one per successful two-child delete
    /// in inline mode; deferred-mode deletes count under
    /// [`deferred_unlinks`](Self::deferred_unlinks) instead).
    pub fn synchronize_calls(&self) -> u64 {
        self.synchronize_calls.get()
    }

    /// Two-child deletes that enqueued their unlink on the deferred queue
    /// instead of synchronizing inline.
    pub fn deferred_unlinks(&self) -> u64 {
        self.deferred_unlinks.get()
    }

    /// Ordered reads (`range_scan` / `successor` / `predecessor`) whose
    /// traversal failed validation and restarted.
    pub fn scan_restarts(&self) -> u64 {
        self.scan_restarts.get()
    }
}

/// A per-thread handle to a [`CitrusTree`].
///
/// Holds the thread's RCU reader slot and (in `Epoch` mode) its
/// reclamation slot. Not `Send`.
pub struct CitrusSession<'t, K, V, F: RcuFlavor> {
    tree: &'t CitrusTree<K, V, F>,
    rcu: F::Handle<'t>,
    ebr: Option<EbrHandle<'t>>,
    /// `Leak` mode: locally buffered unlinked nodes, flushed to the tree's
    /// graveyard in batches (and on drop).
    graveyard: RefCell<Vec<*mut Node<K, V>>>,
    stats: SessionStats,
    /// This session's tree-metric counter stripe.
    stripe: usize,
}

/// Batch size for flushing the session graveyard to the shared one.
const GRAVEYARD_FLUSH: usize = 256;

/// RAII set of node locks held by one update operation.
///
/// The delete path holds up to five locks (`prev`, `curr`, `prev_succ`,
/// `succ`, and the replacement copy) and releases them together. A panic
/// while any is held — e.g. from a user `Clone` impl called under the
/// locks — would otherwise leave those nodes locked forever, wedging every
/// later updater that reaches them. The set unlocks `nodes[..len]` in
/// reverse acquisition order on drop, on normal exit and during unwinding
/// alike.
struct LockSet<K, V> {
    nodes: [*mut Node<K, V>; 5],
    len: usize,
}

impl<K, V> LockSet<K, V> {
    fn new() -> Self {
        Self {
            nodes: [ptr::null_mut(); 5],
            len: 0,
        }
    }

    /// Locks `node` and takes responsibility for unlocking it.
    ///
    /// # Safety
    ///
    /// `node` must be valid, stay allocated while this set lives, and not
    /// already be locked by this thread (the spin lock does not nest).
    unsafe fn acquire(&mut self, node: *mut Node<K, V>) {
        // SAFETY: valid per contract.
        unsafe { (*node).lock.lock() };
        self.adopt(node);
    }

    /// Takes responsibility for a node this thread has *already* locked
    /// (delete locks the replacement copy before publishing it).
    fn adopt(&mut self, node: *mut Node<K, V>) {
        debug_assert!(self.len < self.nodes.len());
        self.nodes[self.len] = node;
        self.len += 1;
    }

    /// Relinquishes responsibility for `node` *without* unlocking it — the
    /// caller (a deferred [`UnlinkRecord`]) now owns the unlock. `node`
    /// must be in the set.
    fn transfer(&mut self, node: *mut Node<K, V>) {
        for slot in self.nodes[..self.len].iter_mut() {
            if *slot == node {
                *slot = ptr::null_mut();
                return;
            }
        }
        debug_assert!(false, "transferred a node the lock set does not hold");
    }
}

impl<K, V> Drop for LockSet<K, V> {
    fn drop(&mut self) {
        for &node in self.nodes[..self.len].iter().rev() {
            // Nulled slots were transferred to a deferred unlink record.
            if node.is_null() {
                continue;
            }
            // SAFETY: locked by this thread via `acquire`/`adopt` and not
            // yet unlocked; nodes outlive the operation (reclamation
            // protocol).
            unsafe { (*node).lock.unlock() };
        }
    }
}

/// The deferred continuation of a two-child delete (DESIGN.md §6g): the
/// state needed to run the paper's lines 75–83 — mark the old successor,
/// swing the edge past it, retire it — once a grace period has elapsed.
///
/// The record *owns two spin locks*, transferred out of the operation's
/// [`LockSet`]: `edge_owner`'s (freezing the edge that still points at
/// `succ`) and `succ`'s own (freezing its children and its mark). Holding
/// them until [`run_unlink`] executes is what keeps the captured edge
/// valid: every structural mutation in the tree happens under the owning
/// node's lock, and neither node can be marked, bypassed, or retired while
/// locked. Updaters that reach the frozen edge spin or fail validation and
/// retry — bounded by the flush latency — while readers, who never take
/// locks, are unaffected.
struct UnlinkRecord<K, V> {
    /// The node owning the still-live edge to `succ`: the replacement copy
    /// when the successor was `curr`'s right child (paper line 76), else
    /// `prev_succ` (line 79).
    edge_owner: *mut Node<K, V>,
    edge_dir: Dir,
    /// The old successor: unmarked and reachable through `edge_owner`
    /// until the record runs (the weak-BST duplicate-key window).
    succ: *mut Node<K, V>,
    /// Where `succ` goes once unlinked. Keeps the sink alive even if the
    /// tree is mid-drop (tree drop drains the deferred queue first).
    sink: Arc<ReclaimInner<K, V>>,
}

/// Executes an [`UnlinkRecord`] (type-erased for the deferred queue).
///
/// # Safety
///
/// `data` must come from `Box::into_raw` of the record; a grace period
/// covering every read-side critical section that predates the record's
/// enqueue must have elapsed (the [`CallRcu`] contract).
unsafe fn run_unlink<K, V>(data: *mut u8) {
    // SAFETY: `data` is the Boxed record per this function's contract.
    let rec = unsafe { Box::from_raw(data.cast::<UnlinkRecord<K, V>>()) };
    chaos::point!("citrus/deferred-unlink/run");
    // SAFETY: both nodes are valid — `edge_owner` cannot be unlinked or
    // retired while its lock (held by this record) is taken, and `succ` is
    // retired only below. The grace period has elapsed, so no pre-existing
    // search can still be parked at `succ`'s old position: unlinking now
    // is exactly the paper's lines 75–81, executed late under the same
    // locks.
    unsafe {
        (*rec.succ).mark();
        // `succ` has no left child (validated under lock at delete time
        // and frozen by `succ`'s lock since), so bypassing it to its right
        // child removes exactly one node.
        (*rec.edge_owner).set_child(rec.edge_dir, (*rec.succ).child(Dir::Right));
        (*rec.edge_owner).increment_tag(rec.edge_dir);
        // Release in reverse acquisition order, as the inline path does.
        (*rec.succ).lock.unlock();
        (*rec.edge_owner).lock.unlock();
        // Into the reclamation sink, not a direct free: updaters may still
        // hold `succ` from before their pins/epochs expired.
        rec.sink.retire_node(rec.succ);
    }
}

/// One traversed edge, recorded during an ordered read for post-traversal
/// validation (DESIGN.md §6i).
enum ScanEdge<K, V> {
    /// `parent.child(dir)` observed non-null.
    Live {
        parent: *mut Node<K, V>,
        dir: Dir,
        child: *mut Node<K, V>,
    },
    /// `parent.child(dir)` observed null, with the edge's tag at read
    /// time — null edges are the real ABA risk (null → leaf → null under
    /// a racing insert + delete), and the paper's tag bumps every time
    /// the edge is re-nulled.
    Null {
        parent: *mut Node<K, V>,
        dir: Dir,
        tag: u64,
    },
}

/// A collected, not-yet-validated ordered-read traversal: every edge the
/// walk crossed plus the nodes whose keys answered the query (in visit
/// order).
///
/// Collection and validation are deliberately split: all edge *reads*
/// happen before all edge *re-checks*, so when [`validate`](Self::validate)
/// succeeds every per-edge constancy interval contains the instant the
/// collection ended — the entire traversed region existed simultaneously
/// at that instant, which is the read's linearization point. `pub(crate)`
/// so [`ForestSession`](crate::ForestSession) can collect one attempt per
/// shard and validate the whole fan-out together.
pub(crate) struct ScanAttempt<K, V> {
    edges: Vec<ScanEdge<K, V>>,
    hits: Vec<*mut Node<K, V>>,
}

impl<K, V> ScanAttempt<K, V> {
    fn new() -> Self {
        Self {
            edges: Vec::new(),
            hits: Vec::new(),
        }
    }

    /// Loads and records `parent`'s `dir` edge, returning the child.
    ///
    /// # Safety
    ///
    /// `parent` must be a valid node.
    unsafe fn record_edge(&mut self, parent: *mut Node<K, V>, dir: Dir) -> *mut Node<K, V> {
        // SAFETY: valid per contract.
        let child = unsafe { (*parent).child(dir) };
        if child.is_null() {
            // SAFETY: valid per contract.
            let tag = unsafe { (*parent).tag(dir) };
            self.edges.push(ScanEdge::Null { parent, dir, tag });
        } else {
            self.edges.push(ScanEdge::Live { parent, dir, child });
        }
        child
    }

    /// Re-checks every recorded edge; `true` means none moved since it was
    /// read.
    ///
    /// For a non-null edge, pointer equality plus an unmarked child
    /// suffices: a bypassed or spliced-out node is marked before it is
    /// unlinked and is never re-linked, and its address cannot be reused
    /// while the collector's pin is held — so an unchanged, unmarked child
    /// pointer means the edge held for the whole interval. Null edges use
    /// the tag (see [`ScanEdge::Null`]).
    ///
    /// # Safety
    ///
    /// Every recorded node must still be allocated: the read-side section
    /// and pin the attempt was collected under must still be held.
    pub(crate) unsafe fn validate(&self) -> bool {
        self.edges.iter().all(|edge| match *edge {
            ScanEdge::Live { parent, dir, child } => {
                // SAFETY: allocated per contract.
                unsafe { (*parent).child(dir) == child && !(*child).is_marked() }
            }
            ScanEdge::Null { parent, dir, tag } => {
                // SAFETY: allocated per contract.
                unsafe { (*parent).child(dir).is_null() && (*parent).tag(dir) == tag }
            }
        })
    }

    /// Whether the attempt recorded any candidate hit. Safe: only the hit
    /// list's emptiness is inspected, no node is dereferenced — the forest's
    /// widening directed probe uses this to decide whether to stop before
    /// the attempt has been validated.
    pub(crate) fn has_candidate(&self) -> bool {
        !self.hits.is_empty()
    }
}

impl<K: Ord + Clone, V: Clone> ScanAttempt<K, V> {
    /// Clones the matched entries in key order, collapsing the adjacent
    /// duplicate the two-child delete's replacement window can expose:
    /// between splice and unlink, the replacement copy and the old
    /// successor both carry the successor's key *and value*, and sit next
    /// to each other in visit order.
    ///
    /// # Safety
    ///
    /// As for [`validate`](Self::validate).
    pub(crate) unsafe fn entries(&self) -> Vec<(K, V)> {
        let mut out: Vec<(K, V)> = Vec::with_capacity(self.hits.len());
        for &hit in &self.hits {
            // SAFETY: allocated per contract; hits are real (non-sentinel)
            // nodes, whose key and value never change after construction.
            let node = unsafe { &*hit };
            let key = node.key.as_key().expect("hits carry real keys");
            if out.last().is_some_and(|(k, _)| k == key) {
                continue;
            }
            out.push((
                key.clone(),
                node.value.clone().expect("real nodes carry values"),
            ));
        }
        out
    }

    /// Clones the single candidate entry (successor / predecessor probes
    /// record at most one hit).
    ///
    /// # Safety
    ///
    /// As for [`validate`](Self::validate).
    pub(crate) unsafe fn candidate(&self) -> Option<(K, V)> {
        self.hits.last().map(|&hit| {
            // SAFETY: as in `entries`.
            let node = unsafe { &*hit };
            (
                node.key
                    .as_key()
                    .expect("candidates carry real keys")
                    .clone(),
                node.value.clone().expect("real nodes carry values"),
            )
        })
    }
}

/// Read-side guards for one ordered-read attempt: the session's EBR pin
/// (`Epoch` mode) plus its RCU read lock, bundled so the forest can hold
/// one per shard for the whole fan-out's collect-then-validate window.
pub(crate) struct OrderedReadGuard<'s, 't, F: RcuFlavor> {
    _pin: Option<EbrGuard<'s, 't>>,
    _rcu: RcuReadGuard<'s, F::Handle<'t>>,
}

/// The paper's `validate` (lines 33–38): all checks are on locked nodes'
/// local fields.
///
/// # Safety
///
/// `prev` must be a valid, locked node; `curr` must be null or a valid
/// node.
unsafe fn validate<K, V>(prev: *mut Node<K, V>, tag: u64, curr: *mut Node<K, V>, dir: Dir) -> bool {
    // SAFETY: `prev` valid per contract.
    let prev_ref = unsafe { &*prev };
    if prev_ref.is_marked() || prev_ref.child(dir) != curr {
        return false;
    }
    if !curr.is_null() {
        // SAFETY: `curr` valid per contract.
        return !unsafe { &*curr }.is_marked();
    }
    prev_ref.tag(dir) == tag
}

impl<'t, K, V, F> CitrusSession<'t, K, V, F>
where
    K: Ord + Clone,
    V: Clone,
    F: RcuFlavor,
{
    /// The paper's `get` (lines 1–15): wait-free search from the root,
    /// inside a read-side critical section, returning
    /// `(prev, tag, curr, direction)`.
    ///
    /// Must be called inside an RCU read-side critical section (and with
    /// the EBR pin held in `Epoch` mode).
    fn search(&self, key: &K) -> (*mut Node<K, V>, u64, *mut Node<K, V>, Dir) {
        debug_assert!(self.rcu.in_read_section());
        let mut prev = self.tree.root;
        // SAFETY: the root is never null (line 4's comment) and never
        // freed before the tree; nodes reached during the read-side
        // section stay allocated (RCU + reclamation protocol).
        unsafe {
            let mut dir = Dir::Right;
            let mut curr = (*prev).child(dir); // root's right child: the ∞ sentinel
            loop {
                chaos::point!("citrus/search/step");
                if curr.is_null() {
                    break;
                }
                let cmp = (*curr).key.cmp_key(key);
                if cmp == CmpOrdering::Equal {
                    break;
                }
                prev = curr;
                dir = Dir::from_cmp(cmp);
                curr = (*prev).child(dir);
            }
            // Line 13: save the tag inside the read-side critical section.
            let tag = (*prev).tag(dir);
            (prev, tag, curr, dir)
        }
    }

    /// The paper's `contains` (lines 16–20): returns the value stored with
    /// `key`, if present. Wait-free.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let _pin = self.ebr.as_ref().map(|h| h.pin());
        let _guard = self.rcu.read_lock();
        let (_prev, _tag, curr, _dir) = self.search(key);
        // Widens the window between locating the node and reading its
        // value, still inside the read-side section — the interval where
        // a stale read would manifest if the RCU protocol were broken
        // (exercised by the lincheck chaos sweeps).
        chaos::point!("citrus/get/after-search");
        if curr.is_null() {
            return None;
        }
        // SAFETY: `curr` was reachable during the read-side section
        // (Lemma 2) and its value never changes; it cannot be freed while
        // we are inside the section (Leak mode never frees; Epoch mode is
        // covered by the pin).
        unsafe { (*curr).value.clone() }
    }

    /// Returns `true` iff `key` is present. Wait-free, and — unlike
    /// [`get`](Self::get) — never touches the value: a presence check must
    /// not pay for a `V::clone` it immediately drops.
    pub fn contains(&mut self, key: &K) -> bool {
        let _pin = self.ebr.as_ref().map(|h| h.pin());
        let _guard = self.rcu.read_lock();
        let (_prev, _tag, curr, _dir) = self.search(key);
        // Same window as `get`: the lincheck chaos sweeps drive both
        // operations through this point.
        chaos::point!("citrus/get/after-search");
        !curr.is_null()
    }

    /// Enters the read-side context ordered reads traverse under — the
    /// EBR pin (`Epoch` mode) and the RCU read lock — bundled so the
    /// forest can hold one per shard across a fan-out scan.
    pub(crate) fn ordered_read_enter(&self) -> OrderedReadGuard<'_, 't, F> {
        OrderedReadGuard {
            _pin: self.ebr.as_ref().map(|h| h.pin()),
            _rcu: self.rcu.read_lock(),
        }
    }

    /// Walks the tree in order over `[lo, hi]`, recording every traversed
    /// edge and every in-range node. Collection only — the caller
    /// validates afterwards, possibly together with other shards'
    /// attempts.
    ///
    /// Must be called inside this session's read-side context
    /// ([`ordered_read_enter`](Self::ordered_read_enter)).
    pub(crate) fn collect_range(&self, lo: &K, hi: &K) -> ScanAttempt<K, V> {
        debug_assert!(self.rcu.in_read_section());
        let mut attempt = ScanAttempt::new();
        if lo > hi {
            return attempt;
        }
        /// In-order walk frames: descend left first, then emit and go
        /// right.
        enum Frame<K, V> {
            Enter(*mut Node<K, V>),
            Visit(*mut Node<K, V>),
        }
        let mut stack = vec![Frame::Enter(self.tree.root)];
        while let Some(frame) = stack.pop() {
            // SAFETY: every pushed pointer was read from a live edge
            // inside the read-side section, so it stays allocated (Leak
            // never frees; Epoch is covered by the caller's pin).
            unsafe {
                match frame {
                    Frame::Enter(n) => {
                        chaos::point!("citrus/scan/step");
                        stack.push(Frame::Visit(n));
                        // Keys below `n` can only matter when n.key > lo
                        // (sentinels prune themselves: −∞ is never
                        // greater, so the root's left edge is skipped).
                        if (*n).key.cmp_key(lo) == CmpOrdering::Greater {
                            let left = attempt.record_edge(n, Dir::Left);
                            if !left.is_null() {
                                stack.push(Frame::Enter(left));
                            }
                        }
                    }
                    Frame::Visit(n) => {
                        let key = &(*n).key;
                        // Sentinels compare outside every [lo, hi].
                        if key.cmp_key(lo) != CmpOrdering::Less
                            && key.cmp_key(hi) != CmpOrdering::Greater
                        {
                            attempt.hits.push(n);
                        }
                        // Keys above `n` can only matter when n.key < hi.
                        if key.cmp_key(hi) == CmpOrdering::Less {
                            let right = attempt.record_edge(n, Dir::Right);
                            if !right.is_null() {
                                stack.push(Frame::Enter(right));
                            }
                        }
                    }
                }
            }
        }
        attempt
    }

    /// Walks the successor (`side == Dir::Right`) or predecessor
    /// (`side == Dir::Left`) search path for `key`, recording every
    /// traversed edge; the attempt's hit list ends holding the candidate —
    /// the nearest real key strictly beyond the probe — if one exists.
    ///
    /// Must be called inside this session's read-side context, like
    /// [`collect_range`](Self::collect_range).
    pub(crate) fn collect_directed(&self, key: &K, side: Dir) -> ScanAttempt<K, V> {
        debug_assert!(self.rcu.in_read_section());
        let mut attempt = ScanAttempt::new();
        let mut n = self.tree.root;
        // SAFETY: as in `collect_range` — every pointer comes from a live
        // edge read inside the read-side section.
        unsafe {
            loop {
                chaos::point!("citrus/scan/step");
                let cmp = (*n).key.cmp_key(key);
                // Successor: any node with key > probe is a candidate, and
                // the search continues left toward smaller ones; otherwise
                // right. Predecessor is the mirror image. Sentinels
                // steer the walk but never become candidates.
                let toward_probe = if side == Dir::Right {
                    cmp == CmpOrdering::Greater
                } else {
                    cmp == CmpOrdering::Less
                };
                let dir = if toward_probe {
                    if (*n).key.as_key().is_some() {
                        attempt.hits.clear();
                        attempt.hits.push(n);
                    }
                    if side == Dir::Right {
                        Dir::Left
                    } else {
                        Dir::Right
                    }
                } else {
                    side
                };
                let child = attempt.record_edge(n, dir);
                if child.is_null() {
                    break;
                }
                n = child;
            }
        }
        attempt
    }

    /// Runs one ordered read to a validated completion: collect inside
    /// the read-side context, validate every crossed edge, extract —
    /// restarting from scratch whenever a concurrent update moved one.
    /// Restarts are bounded by interference: each one implies a
    /// concurrent update completed inside the attempt's window (DESIGN.md
    /// §6i), the same progress argument as the updaters' retry loops.
    fn ordered_read<T>(
        &self,
        collect: impl Fn(&Self) -> ScanAttempt<K, V>,
        extract: impl Fn(&ScanAttempt<K, V>) -> T,
    ) -> T {
        loop {
            let out = {
                let _guard = self.ordered_read_enter();
                let attempt = collect(self);
                chaos::point!("citrus/scan/validate");
                // The mutant is a test-only planted bug (chaos builds
                // only): skipping validation can tear the read across a
                // concurrent update — the exploration suite must find the
                // resulting non-linearizable result.
                // SAFETY: `_guard` still holds the read-side section and
                // pin `collect` ran under.
                if chaos::mutant_enabled("citrus/scan/skip-validation")
                    || unsafe { attempt.validate() }
                {
                    Some(extract(&attempt))
                } else {
                    None
                }
            };
            match out {
                Some(value) => {
                    self.tree.metrics.record_scan_op(self.stripe);
                    return value;
                }
                None => {
                    self.stats
                        .scan_restarts
                        .set(self.stats.scan_restarts.get() + 1);
                    self.tree.metrics.record_scan_restart(self.stripe);
                    chaos::point!("citrus/scan/restart");
                }
            }
        }
    }

    /// Every `(key, value)` pair with `lo <= key <= hi`, in ascending key
    /// order, observed atomically: after the in-order walk, every crossed
    /// edge is re-checked — all reads precede all re-checks, so success
    /// means the whole traversed region existed at one instant, the
    /// scan's linearization point — and the walk restarts when a
    /// concurrent update interfered (DESIGN.md §6i).
    pub fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, V)> {
        self.ordered_read(
            |s| s.collect_range(lo, hi),
            // SAFETY: `ordered_read` extracts under its read-side guard.
            |attempt| unsafe { attempt.entries() },
        )
    }

    /// The entry with the least key strictly greater than `key`, observed
    /// atomically (validated traversal, as in
    /// [`range_scan`](Self::range_scan)).
    pub fn successor(&mut self, key: &K) -> Option<(K, V)> {
        self.ordered_read(
            |s| s.collect_directed(key, Dir::Right),
            // SAFETY: `ordered_read` extracts under its read-side guard.
            |attempt| unsafe { attempt.candidate() },
        )
    }

    /// The entry with the greatest key strictly less than `key`, observed
    /// atomically (validated traversal, as in
    /// [`range_scan`](Self::range_scan)).
    pub fn predecessor(&mut self, key: &K) -> Option<(K, V)> {
        self.ordered_read(
            |s| s.collect_directed(key, Dir::Left),
            // SAFETY: `ordered_read` extracts under its read-side guard.
            |attempt| unsafe { attempt.candidate() },
        )
    }

    /// The paper's `insert` (lines 21–32). Returns `true` iff `key` was
    /// absent.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let _pin = self.ebr.as_ref().map(|h| h.pin());
        // The payload is moved out only on the path that returns, so every
        // retry still owns it — no `Option` dance needed.
        let payload = (key, value);
        loop {
            // Locks are acquired *outside* the read-side critical section
            // (avoiding RCU deadlock), so the guard is scoped to the search.
            let (prev, tag, curr, dir) = {
                let _guard = self.rcu.read_lock();
                self.search(&payload.0)
            };
            if !curr.is_null() {
                // Line 24: the key was found.
                return false;
            }
            // The search→lock window: `prev` may be unlinked or gain a
            // child before we lock it — exactly what validate re-checks.
            chaos::point!("citrus/insert/before-lock");
            // SAFETY: `prev` stays allocated (reclamation protocol); locking
            // an unlinked node is harmless — validation will fail.
            unsafe {
                let mut locks = LockSet::new();
                locks.acquire(prev);
                self.tree.metrics.record_locks(self.stripe, 1);
                if validate(prev, tag, ptr::null_mut(), dir)
                    && !chaos::should_fail!("citrus/insert/force-restart")
                {
                    chaos::point!("citrus/insert/after-validate");
                    let (key, value) = payload;
                    let node = Node::new_leaf(KeyBound::Key(key), Some(value));
                    // Line 29: publish the new leaf.
                    (*prev).set_child(dir, node);
                    return true;
                }
                // Line 32: validation failed; `locks` releases, retry.
            }
            self.stats
                .insert_retries
                .set(self.stats.insert_retries.get() + 1);
            self.tree.metrics.record_insert_retry(self.stripe);
        }
    }

    /// The paper's `delete` (lines 42–84). Returns `true` iff `key` was
    /// present.
    pub fn remove(&mut self, key: &K) -> bool {
        let _pin = self.ebr.as_ref().map(|h| h.pin());
        loop {
            let (prev, _tag, curr, dir) = {
                let _guard = self.rcu.read_lock();
                self.search(key)
            };
            if curr.is_null() {
                // Line 45: the key was not found.
                return false;
            }
            // The search→lock window, as in `insert`.
            chaos::point!("citrus/remove/before-lock");
            // SAFETY: nodes stay allocated for the whole operation (Leak
            // never frees; Epoch covered by `_pin`); every field write
            // below is to a node this thread has locked, and `locks`
            // releases them — in reverse acquisition order, matching the
            // paper's unlock sequence — on every exit, unwinding included.
            unsafe {
                let mut locks = LockSet::new();
                locks.acquire(prev);
                locks.acquire(curr);
                self.tree.metrics.record_locks(self.stripe, 2);
                if !validate(prev, 0, curr, dir)
                    || chaos::should_fail!("citrus/remove/force-restart")
                {
                    drop(locks);
                    self.stats
                        .remove_retries
                        .set(self.stats.remove_retries.get() + 1);
                    self.tree.metrics.record_remove_retry(self.stripe);
                    continue;
                }
                chaos::point!("citrus/remove/after-validate");
                let left = (*curr).child(Dir::Left);
                let right = (*curr).child(Dir::Right);
                if left.is_null() || right.is_null() {
                    // Lines 50–56: at most one child — bypass `curr`.
                    (*curr).mark();
                    let not_none_child = if !left.is_null() { left } else { right };
                    (*prev).set_child(dir, not_none_child);
                    // Bypass published, tag not yet bumped: a concurrent
                    // insert's validate must still catch the change.
                    chaos::point!("citrus/remove/before-increment-tag");
                    (*prev).increment_tag(dir);
                    drop(locks);
                    self.retire(curr);
                    return true;
                }

                // Lines 57–64: two children — find the successor by walking
                // the leftmost branch of `curr`'s right subtree. No
                // read-side critical section is needed: the traversal never
                // consults keys.
                let mut prev_succ = curr;
                let mut succ = right;
                let mut next = (*succ).child(Dir::Left);
                while !next.is_null() {
                    prev_succ = succ;
                    succ = next;
                    next = (*next).child(Dir::Left);
                }
                // Line 65.
                let succ_dir = if prev_succ == curr {
                    Dir::Right
                } else {
                    Dir::Left
                };
                // Lines 66–68: do not lock `curr` twice.
                if prev_succ != curr {
                    locks.acquire(prev_succ);
                }
                locks.acquire(succ);
                self.tree
                    .metrics
                    .record_locks(self.stripe, if prev_succ == curr { 1 } else { 2 });

                // Line 69.
                let succ_left_tag = (*succ).tag(Dir::Left);
                if validate(prev_succ, 0, succ, succ_dir)
                    && validate(succ, succ_left_tag, ptr::null_mut(), Dir::Left)
                {
                    // Line 70: a copy of the successor with `curr`'s
                    // children. The user `Clone` calls happen *before* any
                    // structural change: if one panics, `locks` unwinds and
                    // the tree is untouched.
                    let node = Node::new_replacement(
                        (*succ).key.clone(),
                        (*succ).value.clone(),
                        (*curr).child(Dir::Left),
                        (*curr).child(Dir::Right),
                    );
                    // Line 71: ...locked before publication.
                    (*node).lock.lock();
                    locks.adopt(node);
                    self.tree.metrics.record_locks(self.stripe, 1);
                    // Lines 72–73: mark `curr`, splice the copy in. From
                    // here until line 75 two nodes carry the successor's
                    // key — the weak BST property (Definition 1).
                    (*curr).mark();
                    (*prev).set_child(dir, node);

                    if let Some(deferred) = &self.tree.deferred {
                        // Deferred mode (DESIGN.md §6g): do not pay line
                        // 74's grace period here. The edge that still
                        // points at the old successor — the copy's right
                        // edge (line 76) or `prev_succ`'s left (line 79) —
                        // and `succ` itself stay locked, their locks
                        // transferred into an unlink record; `call_rcu`
                        // runs lines 75–83 after one shared grace period
                        // covering a whole batch of deletes.
                        let (edge_owner, edge_dir) = if prev_succ == curr {
                            (node, Dir::Right)
                        } else {
                            (prev_succ, Dir::Left)
                        };
                        locks.transfer(edge_owner);
                        locks.transfer(succ);
                        // Releases the rest — `prev`, the marked `curr`,
                        // and whichever of the copy / `prev_succ` does not
                        // own the frozen edge.
                        drop(locks);
                        // `curr` is unreachable already; its old holders
                        // are covered by their pins (Epoch) or by drop
                        // (Leak).
                        self.retire(curr);
                        let record = Box::into_raw(Box::new(UnlinkRecord {
                            edge_owner,
                            edge_dir,
                            succ,
                            sink: Arc::clone(&self.tree.reclaim),
                        }));
                        chaos::point!("citrus/remove/defer-unlink");
                        // SAFETY: the record exclusively owns the two
                        // transferred locks; the constructor's
                        // `K/V: Send + Sync` bounds make running it — node
                        // frees included — on another thread sound.
                        deferred.defer(record.cast(), run_unlink::<K, V>);
                        self.stats
                            .deferred_unlinks
                            .set(self.stats.deferred_unlinks.get() + 1);
                        self.tree.metrics.record_deferred_unlink(self.stripe);
                        return true;
                    }

                    // The weak-BST window: two nodes carry the successor's
                    // key until the grace period elapses.
                    chaos::point!("citrus/remove/before-synchronize");
                    // Line 74: wait for pre-existing searches, which may
                    // still be looking at the successor's *old* location.
                    // The mutant guard is a test-only bug switch (chaos
                    // builds only): skipping the grace period unlinks the
                    // old successor while a pre-existing reader may be
                    // about to traverse it — the exploration suite must
                    // find the resulting lost read.
                    if !chaos::mutant_enabled("citrus/remove/skip-synchronize") {
                        self.rcu.synchronize();
                    }
                    chaos::point!("citrus/remove/after-synchronize");
                    self.stats
                        .synchronize_calls
                        .set(self.stats.synchronize_calls.get() + 1);
                    self.tree.metrics.record_synchronize(self.stripe);

                    // Lines 75–81: unlink the old successor.
                    (*succ).mark();
                    if prev_succ == curr {
                        // Line 76: succ was the right child of curr, so its
                        // old position is now under the replacement copy.
                        (*node).set_child(Dir::Right, (*succ).child(Dir::Right));
                        (*node).increment_tag(Dir::Right);
                    } else {
                        (*prev_succ).set_child(Dir::Left, (*succ).child(Dir::Right));
                        (*prev_succ).increment_tag(Dir::Left);
                    }

                    // Lines 82–83: release all locks (reverse acquisition
                    // order: node, succ, prev_succ, curr, prev).
                    drop(locks);
                    self.retire(curr);
                    self.retire(succ);
                    return true;
                }

                // Line 84: validation failed; `locks` releases all five,
                // retry.
            }
            self.stats
                .remove_retries
                .set(self.stats.remove_retries.get() + 1);
            self.tree.metrics.record_remove_retry(self.stripe);
        }
    }

    /// Operation statistics for this session.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Hands an unlinked node to the tree's reclamation scheme.
    ///
    /// # Safety-relevant invariant
    ///
    /// `node` must be unreachable from the root (just unlinked by this
    /// thread while holding the relevant locks).
    fn retire(&self, node: *mut Node<K, V>) {
        match &self.ebr {
            Some(handle) => {
                // SAFETY: `node` is unlinked and Box-allocated; concurrent
                // holders are covered by their pins.
                unsafe { handle.retire(node) };
            }
            None => {
                let mut local = self.graveyard.borrow_mut();
                local.push(node);
                if local.len() >= GRAVEYARD_FLUSH {
                    if let ReclaimInner::Leak(shared) = &*self.tree.reclaim {
                        shared.lock().append(&mut local);
                    }
                }
            }
        }
    }
}

impl<K, V, F: RcuFlavor> Drop for CitrusSession<'_, K, V, F> {
    fn drop(&mut self) {
        let mut local = self.graveyard.borrow_mut();
        if !local.is_empty() {
            if let ReclaimInner::Leak(shared) = &*self.tree.reclaim {
                shared.lock().append(&mut local);
            }
        }
    }
}

impl<K, V, F: RcuFlavor> fmt::Debug for CitrusSession<'_, K, V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CitrusSession")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<K, V, F> MapSession<K, V> for CitrusSession<'_, K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    fn get(&mut self, key: &K) -> Option<V> {
        CitrusSession::get(self, key)
    }

    fn contains(&mut self, key: &K) -> bool {
        // Not the default `get(..).is_some()`: presence checks must not
        // clone the value.
        CitrusSession::contains(self, key)
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        CitrusSession::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> bool {
        CitrusSession::remove(self, key)
    }
}

impl<K, V, F> OrderedMapSession<K, V> for CitrusSession<'_, K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, V)> {
        CitrusSession::range_scan(self, lo, hi)
    }

    fn successor(&mut self, key: &K) -> Option<(K, V)> {
        CitrusSession::successor(self, key)
    }

    fn predecessor(&mut self, key: &K) -> Option<(K, V)> {
        CitrusSession::predecessor(self, key)
    }
}
