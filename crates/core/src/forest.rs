//! `CitrusForest`: key-sharded Citrus trees with per-shard RCU and
//! reclamation domains.
//!
//! The paper's two-child `delete` calls `synchronize_rcu` while holding
//! node locks, so every updater of a single tree ultimately queues behind
//! one grace-period domain. Grace-period *sharing* (PR 3) amortizes that
//! wait but cannot remove the serialization: a reader of key `1` still
//! delays a deleter of key `10⁶` because both live in one RCU domain.
//!
//! A forest partitions the key space over a fixed power-of-two array of
//! independent [`CitrusTree`] shards. Each shard owns a **private** RCU
//! flavor instance and (in [`ReclaimMode::Epoch`]) a **private**
//! epoch-reclamation domain, so `synchronize_rcu` and epoch advancement in
//! one shard never wait on readers or updaters of another. This is the
//! same partition-to-scale move as Linux Tree RCU's per-CPU hierarchy,
//! applied at the data-structure level.
//!
//! # Routing
//!
//! A forest routes each key through one of two pluggable policies
//! ([`RouterKind`]); both are pure functions of the key and the forest's
//! configuration, and under both `get`/`contains` stay wait-free — one
//! shard lookup, then one RCU read-side section in that shard alone.
//!
//! * **Hash** (the default): a *seeded multiplicative hash*. The key's
//!   standard [`Hash`] digest is XORed with the forest's sharding seed,
//!   multiplied by the 64-bit golden-ratio constant, and the product's
//!   high bits select the shard (a multiply-shift, which for power-of-two
//!   shard counts equals taking the top `log2(n)` bits — no shift-by-64
//!   edge case at `n = 1`). Skew-resistant: adversarial or hot adjacent
//!   keys scatter across shards. The cost shows up in ordered reads,
//!   which must fan out to every shard (next section).
//! * **Range** ([`with_range_router`](CitrusForest::with_range_router)):
//!   a strictly ascending splitter array partitions the key space into
//!   contiguous per-shard ranges — with splitters `s₀ < s₁ < … < sₘ`,
//!   shard `0` owns `(-∞, s₀)`, shard `i` owns `[sᵢ₋₁, sᵢ)`, and shard
//!   `m+1` owns `[sₘ, ∞)` (a key equal to a splitter routes to the upper
//!   shard). Ordered reads now enter **only** the shards their span
//!   overlaps, at the price of hash routing's skew resistance: hot
//!   adjacent keys all land in one shard.
//!
//! `u64`-keyed forests can pick the policy at run time via
//! `CITRUS_ROUTER=hash|range`
//! ([`with_env_router`](CitrusForest::with_env_router)), with evenly
//! spaced default splitters ([`even_splitters`]) over the workload's key
//! range.
//!
//! # What stays per-shard vs. global
//!
//! Per-shard: BST invariants, per-node locks, grace periods, epochs,
//! retired-node lifetimes, metric components. Global: the routing
//! function, plus the *combined* read-side window a concurrent ordered
//! read holds across every shard (next section). Aggregate views
//! ([`len_quiescent`], [`to_vec_quiescent`]) remain **quiescent-only**
//! operations, same as on a single tree;
//! [`range_scan`](ForestSession::range_scan) /
//! [`successor`](ForestSession::successor) /
//! [`predecessor`](ForestSession::predecessor) are their concurrent,
//! linearizable counterparts.
//!
//! # Concurrent ordered reads
//!
//! To stay linearizable a multi-shard read cannot scan shards one after
//! another — shard A's snapshot would predate shard B's, and a writer
//! completing two inserts between them could be observed half-done.
//! Instead the session enters the relevant shards' read-side contexts,
//! collects a validated traversal per shard, and only then re-checks all
//! recorded edges across those shards, restarting the whole fan-out if
//! any moved. All reads precede all re-checks, so a successful pass
//! observed every entered shard simultaneously at one instant; the
//! per-shard results k-way merge into one ascending list.
//!
//! Which shards are "relevant" is the routers' big divergence. Under hash
//! routing *every* shard can hold keys in any key range, so a scan fans
//! out to all shards — an Ω(shard count) cost no matter how few keys
//! match, the price paid for skew resistance (DESIGN.md §6i). Under range
//! routing a span `[lo, hi]` overlaps exactly the contiguous shard run
//! `shard_for(lo) ..= shard_for(hi)`, so the fan-out (grace-period
//! domains entered, edges validated, merge width) shrinks to the overlap
//! — restricting the joint validation to a subset is sound because the
//! routing invariant guarantees the skipped shards hold no key in the
//! span (DESIGN.md §6j). `successor`/`predecessor` probe outward from the
//! key's home shard one adjacent shard at a time, and almost always stop
//! after one or two.
//!
//! [`len_quiescent`]: CitrusForest::len_quiescent
//! [`to_vec_quiescent`]: CitrusForest::to_vec_quiescent

use crate::checks::{InvariantViolation, TreeStats};
use crate::node::Dir;
use crate::tree::{CitrusSession, CitrusTree, ReclaimMode, ScanAttempt};
use citrus_api::{ConcurrentMap, MapSession, OrderedMapSession};
use citrus_chaos as chaos;
use citrus_obs::{Counter, Log2Histogram, MetricsRegistry};
use citrus_rcu::{RcuFlavor, ScalableRcu};
use core::cmp::Reverse;
use core::fmt;
use core::sync::atomic::{AtomicUsize, Ordering};
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};

/// Default shard count for [`CitrusForest::new`].
const DEFAULT_SHARDS: usize = 8;

/// Stripe count for the forest's routing counters.
const STRIPES: usize = 32;

/// 64-bit golden-ratio multiplier (`⌊2⁶⁴/φ⌋`, odd), the standard
/// Fibonacci-hashing constant; spreads the seeded digest across the high
/// bits the multiply-shift router reads.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which routing policy a [`CitrusForest`] maps keys to shards with (see
/// the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Seeded multiplicative hash (the default): skew-resistant, but
    /// ordered reads fan out to every shard.
    Hash,
    /// Ordered splitter array: each shard owns a contiguous key range, so
    /// ordered reads enter only the shards their span overlaps — at the
    /// price of hash routing's skew resistance.
    Range,
}

impl RouterKind {
    /// Stable label used in bench JSON identity rows and CI lane output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Hash => "hash",
            Self::Range => "range",
        }
    }

    /// Parses a router label; `name` is the knob being parsed, for the
    /// error message. Malformed values are hard errors, per the repo's
    /// env-knob convention: a typo must not silently bench the default.
    ///
    /// # Panics
    ///
    /// Panics unless `raw` (trimmed) is `""`, `"hash"`, or `"range"`.
    #[must_use]
    pub fn parse(name: &str, raw: &str) -> Self {
        match raw.trim() {
            "" | "hash" => Self::Hash,
            "range" => Self::Range,
            other => panic!("invalid {name}={other:?}: expected \"hash\" or \"range\""),
        }
    }

    /// Reads the `CITRUS_ROUTER` environment knob (`hash` when unset).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value (see [`parse`](Self::parse)).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("CITRUS_ROUTER") {
            Ok(raw) => Self::parse("CITRUS_ROUTER", &raw),
            Err(std::env::VarError::NotPresent) => Self::Hash,
            Err(err) => panic!("invalid CITRUS_ROUTER: {err}"),
        }
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The routing policy instance behind [`CitrusForest::shard_for`].
enum Router<K> {
    /// Seeded multiplicative hash over the key's [`Hash`] digest.
    Hash {
        /// XORed into the digest before the golden-ratio multiply.
        seed: u64,
    },
    /// Strictly ascending splitters: shard `i` owns
    /// `[splitters[i-1], splitters[i])`, with the first and last shards
    /// unbounded below and above. `splitters.len() + 1 == shard count`.
    Range { splitters: Box<[K]> },
}

/// Evenly spaced splitters partitioning `[0, key_range)` into `shards`
/// contiguous ranges — the default splitter set `CITRUS_ROUTER=range`
/// uses. Keys at or above `key_range` all land in the last shard, which
/// additionally owns `[key_range · (shards-1)/shards, ∞)`.
///
/// # Panics
///
/// Panics if `shards == 0`, or if `key_range < shards` (the splitters
/// would collide instead of ascending strictly).
#[must_use]
pub fn even_splitters(shards: usize, key_range: u64) -> Vec<u64> {
    assert!(shards > 0, "even_splitters: at least one shard required");
    assert!(
        key_range >= shards as u64,
        "even_splitters: key range {key_range} cannot split into {shards} non-empty shard ranges"
    );
    (1..shards as u64)
        .map(|i| ((u128::from(i) * u128::from(key_range)) / shards as u128) as u64)
        .collect()
}

/// Routing metrics for a [`CitrusForest`]: how many operations each shard
/// received, and a [`Log2Histogram`] of per-shard occupancy to expose
/// routing skew. No-ops unless built with the `stats` feature.
#[derive(Debug)]
pub struct ForestMetrics {
    /// One routed-operations counter per shard.
    routed: Box<[Counter]>,
    /// Completed fan-out ordered reads (scans, successors, predecessors).
    scans: Counter,
    /// Fan-outs that failed cross-shard validation and restarted.
    scan_restarts: Counter,
    /// Total shards entered by completed fan-out ordered reads; divided
    /// by `scans` this is the mean fan-out width — the quantity range
    /// routing exists to shrink.
    fanout_shards: Counter,
    /// Per-shard key counts observed by
    /// [`CitrusForest::record_occupancy`].
    shard_occupancy: Log2Histogram,
    /// Round-robin stripe allocator for sessions.
    next_stripe: AtomicUsize,
}

impl ForestMetrics {
    fn new(shards: usize) -> Self {
        Self {
            routed: (0..shards).map(|_| Counter::new(STRIPES)).collect(),
            scans: Counter::new(STRIPES),
            scan_restarts: Counter::new(STRIPES),
            fanout_shards: Counter::new(STRIPES),
            shard_occupancy: Log2Histogram::new(),
            next_stripe: AtomicUsize::new(0),
        }
    }

    /// Assigns the next session its counter stripe.
    fn assign_stripe(&self) -> usize {
        self.next_stripe.fetch_add(1, Ordering::Relaxed) % STRIPES
    }

    /// Records one operation routed to `shard`.
    #[inline]
    fn record_route(&self, shard: usize, stripe: usize) {
        self.routed[shard].incr(stripe);
    }

    /// Records one completed fan-out ordered read.
    #[inline]
    fn record_scan(&self, stripe: usize) {
        self.scans.incr(stripe);
    }

    /// Records a fan-out that failed cross-shard validation and restarted.
    #[inline]
    fn record_scan_restart(&self, stripe: usize) {
        self.scan_restarts.incr(stripe);
    }

    /// Records the shard width of one completed fan-out.
    #[inline]
    fn record_fanout(&self, shards: usize, stripe: usize) {
        self.fanout_shards.add(stripe, shards as u64);
    }

    /// Operations routed to `shard` so far (`0` with stats off).
    #[must_use]
    pub fn routed_to(&self, shard: usize) -> u64 {
        self.routed[shard].get()
    }

    /// Completed fan-out ordered reads (`0` with stats off).
    #[must_use]
    pub fn scans(&self) -> u64 {
        self.scans.get()
    }

    /// Fan-out ordered reads that failed cross-shard validation and
    /// restarted (`0` with stats off).
    #[must_use]
    pub fn scan_restarts(&self) -> u64 {
        self.scan_restarts.get()
    }

    /// Total shards entered by completed fan-out ordered reads (`0` with
    /// stats off). `fanout_shards() / scans()` is the mean fan-out width:
    /// always the shard count under hash routing, the span overlap under
    /// range routing.
    #[must_use]
    pub fn fanout_shards(&self) -> u64 {
        self.fanout_shards.get()
    }

    /// The per-shard occupancy histogram.
    #[must_use]
    pub fn shard_occupancy(&self) -> &Log2Histogram {
        &self.shard_occupancy
    }

    /// Registers the forest-level instruments under `component`.
    fn register_into(&self, registry: &MetricsRegistry, component: &str) {
        for (i, counter) in self.routed.iter().enumerate() {
            registry.register_counter(component, &format!("routed_shard{i}"), counter);
        }
        registry.register_counter(component, "scans", &self.scans);
        registry.register_counter(component, "scan_restarts", &self.scan_restarts);
        registry.register_counter(component, "fanout_shards", &self.fanout_shards);
        registry.register_histogram(component, "shard_occupancy", &self.shard_occupancy);
    }
}

/// A fixed array of independent [`CitrusTree`] shards routed by a seeded
/// multiplicative key hash.
///
/// Each shard owns a private RCU domain and a private reclamation domain;
/// see the [module docs](self) for why. Threads operate through
/// per-thread [`ForestSession`]s, which create per-shard tree sessions
/// lazily on first touch.
///
/// # Example
///
/// ```
/// use citrus::CitrusForest;
///
/// let forest: CitrusForest<u64, &str> = CitrusForest::with_shards(4);
/// let mut session = forest.session();
/// assert!(session.insert(1, "one"));
/// assert_eq!(session.get(&1), Some("one"));
/// assert!(session.remove(&1));
/// assert_eq!(session.get(&1), None);
/// ```
pub struct CitrusForest<K, V, F: RcuFlavor = ScalableRcu> {
    /// The shard trees; `len()` is a power of two under hash routing,
    /// `splitters.len() + 1` under range routing.
    shards: Box<[CitrusTree<K, V, F>]>,
    /// How keys map to shard indices.
    router: Router<K>,
    metrics: ForestMetrics,
}

impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> CitrusForest<K, V, F> {
    /// Creates a forest with the default shard count (8) and
    /// [`ReclaimMode::Epoch`]. Two-child deletes defer their unlink per
    /// the `CITRUS_DEFERRED_FREE` environment knob
    /// ([`citrus_reclaim::deferred_free_from_env`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates a forest with (at least) `n` shards and the default
    /// reclamation mode. `n` is rounded **up** to the next power of two
    /// (minimum 1) so the multiply-shift router stays bias-free.
    #[must_use]
    pub fn with_shards(n: usize) -> Self {
        Self::with_config(n, 0, ReclaimMode::default())
    }

    /// Like [`with_shards`](Self::with_shards) but with an explicit
    /// sharding seed, for de-correlating routing from adversarial key
    /// patterns (and for the routing-determinism tests).
    #[must_use]
    pub fn with_sharding_seed(n: usize, seed: u64) -> Self {
        Self::with_config(n, seed, ReclaimMode::default())
    }

    /// Explicit constructor: shard count (rounded up to a power of two),
    /// sharding seed, and reclamation mode for every shard (deferred
    /// unlinking still per `CITRUS_DEFERRED_FREE`).
    #[must_use]
    pub fn with_config(n: usize, seed: u64, mode: ReclaimMode) -> Self {
        Self::with_options(n, seed, mode, citrus_reclaim::deferred_free_from_env())
    }

    /// Fully explicit constructor: additionally pins whether every shard's
    /// two-child deletes defer their unlink to the shard's own `call_rcu`
    /// batch (`deferred = true`) or synchronize inline. Each shard gets a
    /// **private** deferred domain — its batches wait only on the shard's
    /// own grace periods, preserving shard independence.
    #[must_use]
    pub fn with_options(n: usize, seed: u64, mode: ReclaimMode, deferred: bool) -> Self {
        let n = n.max(1).next_power_of_two();
        Self {
            shards: (0..n)
                .map(|_| CitrusTree::with_options(F::new(), mode, deferred))
                .collect(),
            router: Router::Hash { seed },
            metrics: ForestMetrics::new(n),
        }
    }
}

impl<K: Ord + Send + Sync, V: Send + Sync, F: RcuFlavor> CitrusForest<K, V, F> {
    /// Creates a range-routed forest: `splitters.len() + 1` shards, each
    /// owning a contiguous key range (see the [module docs](self)), with
    /// the default reclamation mode and the `CITRUS_DEFERRED_FREE` knob.
    /// An empty splitter list is the degenerate single-shard forest.
    ///
    /// # Panics
    ///
    /// Panics unless `splitters` is strictly ascending.
    #[must_use]
    pub fn with_range_router(splitters: Vec<K>) -> Self {
        Self::with_range_router_options(
            splitters,
            ReclaimMode::default(),
            citrus_reclaim::deferred_free_from_env(),
        )
    }

    /// Fully explicit range-routed constructor; the reclamation knobs
    /// mean the same as in [`with_options`](Self::with_options).
    ///
    /// # Panics
    ///
    /// Panics unless `splitters` is strictly ascending.
    #[must_use]
    pub fn with_range_router_options(splitters: Vec<K>, mode: ReclaimMode, deferred: bool) -> Self {
        assert!(
            splitters.windows(2).all(|w| w[0] < w[1]),
            "range-router splitters must be strictly ascending"
        );
        let n = splitters.len() + 1;
        Self {
            shards: (0..n)
                .map(|_| CitrusTree::with_options(F::new(), mode, deferred))
                .collect(),
            router: Router::Range {
                splitters: splitters.into_boxed_slice(),
            },
            metrics: ForestMetrics::new(n),
        }
    }
}

impl<V: Send + Sync, F: RcuFlavor> CitrusForest<u64, V, F> {
    /// Builds a `u64`-keyed forest with the router picked by the
    /// `CITRUS_ROUTER` environment knob: `hash` (the default) behaves
    /// exactly like [`with_config`](Self::with_config); `range`
    /// partitions `[0, key_range)` with [`even_splitters`] (the seed is
    /// then unused). `n` is rounded up to a power of two in **both** arms
    /// so the two routers sweep identical shard counts.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `CITRUS_ROUTER` value, or in `range`
    /// mode when `key_range` is smaller than the rounded shard count.
    #[must_use]
    pub fn with_env_router(n: usize, seed: u64, mode: ReclaimMode, key_range: u64) -> Self {
        let deferred = citrus_reclaim::deferred_free_from_env();
        let n = n.max(1).next_power_of_two();
        match RouterKind::from_env() {
            RouterKind::Hash => Self::with_options(n, seed, mode, deferred),
            RouterKind::Range => {
                Self::with_range_router_options(even_splitters(n, key_range), mode, deferred)
            }
        }
    }
}

impl<K, V, F: RcuFlavor> CitrusForest<K, V, F> {
    /// Number of shards (a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The hash router's sharding seed (`0` under range routing, which
    /// has no seed).
    #[must_use]
    pub fn sharding_seed(&self) -> u64 {
        match self.router {
            Router::Hash { seed } => seed,
            Router::Range { .. } => 0,
        }
    }

    /// Which routing policy this forest was built with.
    #[must_use]
    pub fn router_kind(&self) -> RouterKind {
        match self.router {
            Router::Hash { .. } => RouterKind::Hash,
            Router::Range { .. } => RouterKind::Range,
        }
    }

    /// The range router's splitter array (`None` under hash routing).
    #[must_use]
    pub fn splitters(&self) -> Option<&[K]> {
        match &self.router {
            Router::Hash { .. } => None,
            Router::Range { splitters } => Some(splitters),
        }
    }

    /// Borrows shard `i` (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shard_count()`.
    #[must_use]
    pub fn shard(&self, i: usize) -> &CitrusTree<K, V, F> {
        &self.shards[i]
    }

    /// The forest-level routing metrics.
    #[must_use]
    pub fn metrics(&self) -> &ForestMetrics {
        &self.metrics
    }

    /// The shards' reclamation mode (identical across shards).
    #[must_use]
    pub fn reclaim_mode(&self) -> ReclaimMode {
        self.shards[0].reclaim_mode()
    }

    /// Whether the shards defer two-child-delete unlinks to per-shard
    /// `call_rcu` batches (identical across shards).
    #[must_use]
    pub fn deferred_free(&self) -> bool {
        self.shards[0].deferred_free()
    }

    /// Runs every shard's pending deferred unlinks to completion (no-op
    /// in inline mode). Shards flush independently: shard A's drain waits
    /// only on A's private grace periods.
    pub fn flush_deferred(&self) {
        for shard in self.shards.iter() {
            shard.flush_deferred();
        }
    }

    /// Deferred unlinks enqueued by each shard (tree metrics; all zeros
    /// with stats off).
    #[must_use]
    pub fn deferred_unlinks_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|t| t.metrics().deferred_unlinks())
            .collect()
    }

    /// Total removed nodes already freed across all shards:
    /// `Some(sum)` in [`ReclaimMode::Epoch`], `None` in
    /// [`ReclaimMode::Leak`].
    #[must_use]
    pub fn reclaimed_count(&self) -> Option<u64> {
        self.shards.iter().map(CitrusTree::reclaimed_count).sum()
    }

    /// `synchronize_rcu` calls issued by each shard (tree metrics; all
    /// zeros with stats off). Grace periods in one shard never wait on
    /// another — these counters plus
    /// [`grace_periods_per_shard`](Self::grace_periods_per_shard) make
    /// that independence observable.
    #[must_use]
    pub fn synchronize_calls_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|t| t.metrics().synchronize_calls())
            .collect()
    }

    /// Grace periods completed by each shard's private RCU domain
    /// (always-on, independent of the `stats` feature).
    #[must_use]
    pub fn grace_periods_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|t| t.rcu().grace_periods())
            .collect()
    }

    /// Registers every shard's full instrument stack plus the forest's
    /// routing metrics into `registry`. Shard `i`'s components are
    /// prefixed `shard{i}/` (e.g. `shard0/citrus`, `shard0/rcu-scalable`),
    /// the forest's own live under `forest`.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        self.register_metrics_prefixed(registry, "");
    }

    /// Like [`register_metrics`](Self::register_metrics) with every
    /// component name additionally prefixed.
    pub fn register_metrics_prefixed(&self, registry: &MetricsRegistry, prefix: &str) {
        for (i, tree) in self.shards.iter().enumerate() {
            tree.register_metrics_prefixed(registry, &format!("{prefix}shard{i}/"));
        }
        self.metrics
            .register_into(registry, &format!("{prefix}forest"));
    }

    /// Creates a session for the calling thread. Per-shard tree sessions
    /// are created lazily on first touch, so a thread that only ever
    /// operates on a few shards never registers with the other shards'
    /// RCU/reclamation domains.
    pub fn session(&self) -> ForestSession<'_, K, V, F> {
        ForestSession {
            forest: self,
            sessions: (0..self.shards.len()).map(|_| None).collect(),
            stripe: self.metrics.assign_stripe(),
        }
    }
}

impl<K: Hash + Ord, V, F: RcuFlavor> CitrusForest<K, V, F> {
    /// Routes `key` to its shard index. Hash router: seeded digest →
    /// golden-ratio multiply → multiply-shift by the shard count, pure in
    /// `(key, seed, shard_count)`. Range router: binary search of the
    /// splitter array, pure in `(key, splitters)` — a key equal to a
    /// splitter routes to the upper shard (splitter ranges are
    /// low-inclusive).
    #[must_use]
    pub fn shard_for(&self, key: &K) -> usize {
        match &self.router {
            Router::Hash { seed } => {
                let mut hasher = std::hash::DefaultHasher::new();
                key.hash(&mut hasher);
                let mixed = (hasher.finish() ^ seed).wrapping_mul(GOLDEN_GAMMA);
                // Lemire multiply-shift: maps the 64-bit mix uniformly
                // onto [0, n). For power-of-two n this is exactly the top
                // log2(n) bits, with no undefined shift at n = 1.
                ((u128::from(mixed) * self.shards.len() as u128) >> 64) as usize
            }
            // Shard i owns [splitters[i-1], splitters[i]): the key's
            // shard is the count of splitters at or below it.
            Router::Range { splitters } => splitters.partition_point(|s| s <= key),
        }
    }

    /// The contiguous shard index range `[first, last]` an ordered read
    /// over `[lo, hi]` must enter: every shard under hash routing, only
    /// the overlapping run under range routing (contiguity is what makes
    /// the subset fan-out a simple slice).
    fn shards_for_span(&self, lo: &K, hi: &K) -> (usize, usize) {
        match &self.router {
            Router::Hash { .. } => (0, self.shards.len() - 1),
            Router::Range { .. } => (self.shard_for(lo), self.shard_for(hi)),
        }
    }
}

impl<K, V, F: RcuFlavor> CitrusForest<K, V, F>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Total key count across shards. Quiescent-only, like
    /// [`CitrusTree::len_quiescent`].
    pub fn len_quiescent(&mut self) -> usize {
        self.shards.iter_mut().map(CitrusTree::len_quiescent).sum()
    }

    /// Whether every shard is empty. Quiescent-only.
    pub fn is_empty_quiescent(&mut self) -> bool {
        self.shards.iter_mut().all(CitrusTree::is_empty_quiescent)
    }

    /// All key–value pairs across shards in ascending key order.
    /// Quiescent-only.
    pub fn to_vec_quiescent(&mut self) -> Vec<(K, V)> {
        let mut all: Vec<(K, V)> = self
            .shards
            .iter_mut()
            .flat_map(CitrusTree::to_vec_quiescent)
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Validates every shard's structural invariants **and** the forest's
    /// cross-shard ones, returning aggregate stats (total length, maximum
    /// shard height) or the first violation. Quiescent-only.
    ///
    /// Per-shard validation alone cannot back
    /// [`to_vec_quiescent`](Self::to_vec_quiescent)'s promise of one
    /// duplicate-free ascending view: a routing bug could land the same
    /// key in two (individually valid) shards and silently double-count
    /// it. So this also checks that no key appears in more than one shard
    /// and that every key lives in the shard the router assigns it to.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] found in any shard, or a
    /// [`CrossShardDuplicate`](InvariantViolation::CrossShardDuplicate) /
    /// [`MisroutedKey`](InvariantViolation::MisroutedKey) across shards.
    pub fn validate_structure(&mut self) -> Result<TreeStats, InvariantViolation>
    where
        K: Hash,
    {
        let mut len = 0;
        let mut height = 0;
        let mut seen: Vec<(K, usize)> = Vec::new();
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let stats = shard.validate_structure()?;
            len += stats.len;
            height = height.max(stats.height);
            for (key, _) in shard.to_vec_quiescent() {
                seen.push((key, idx));
            }
        }
        seen.sort_by(|a, b| a.0.cmp(&b.0));
        for pair in seen.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(InvariantViolation::CrossShardDuplicate {
                    shards: (pair[0].1, pair[1].1),
                });
            }
        }
        for (key, found_in) in &seen {
            let routed_to = self.shard_for(key);
            if routed_to != *found_in {
                return Err(InvariantViolation::MisroutedKey {
                    found_in: *found_in,
                    routed_to,
                });
            }
        }
        Ok(TreeStats { len, height })
    }

    /// Samples each shard's current key count into the `shard_occupancy`
    /// histogram and returns the counts (skew diagnostics).
    /// Quiescent-only.
    pub fn record_occupancy(&mut self) -> Vec<usize> {
        // Split the borrow: occupancy lives next to the shards.
        let metrics = &self.metrics;
        self.shards
            .iter_mut()
            .map(|shard| {
                let len = shard.len_quiescent();
                metrics.shard_occupancy.record(len as u64);
                len
            })
            .collect()
    }
}

impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> Default for CitrusForest<K, V, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, F: RcuFlavor> fmt::Debug for CitrusForest<K, V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CitrusForest")
            .field("shards", &self.shards.len())
            .field("router", &self.router_kind().as_str())
            .field("seed", &self.sharding_seed())
            .field("rcu", &F::NAME)
            .field("reclaim", &self.reclaim_mode())
            .finish_non_exhaustive()
    }
}

impl<K, V, F> ConcurrentMap<K, V> for CitrusForest<K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    type Session<'a>
        = ForestSession<'a, K, V, F>
    where
        Self: 'a;

    const NAME: &'static str = "citrus-forest";

    fn session(&self) -> ForestSession<'_, K, V, F> {
        CitrusForest::session(self)
    }
}

/// A per-thread handle to a [`CitrusForest`].
///
/// Holds lazily-created per-shard [`CitrusSession`]s: a shard's session —
/// and with it the thread's reader slot in that shard's private RCU domain
/// and its slot in the shard's reclamation domain — is only created the
/// first time an operation routes there. Not `Send`.
pub struct ForestSession<'t, K, V, F: RcuFlavor> {
    forest: &'t CitrusForest<K, V, F>,
    sessions: Vec<Option<CitrusSession<'t, K, V, F>>>,
    /// This session's forest-metric counter stripe.
    stripe: usize,
}

impl<'t, K, V, F> ForestSession<'t, K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    /// Creates shard `idx`'s session if this thread hasn't touched the
    /// shard yet.
    fn ensure_session(&mut self, idx: usize) {
        let slot = &mut self.sessions[idx];
        if slot.is_none() {
            chaos::point!("forest/session/lazy-init");
            *slot = Some(self.forest.shards[idx].session());
        }
    }

    /// Routes `key` and returns the shard's session, creating it on first
    /// touch.
    fn session_for(&mut self, key: &K) -> &mut CitrusSession<'t, K, V, F> {
        chaos::point!("forest/route/before-shard");
        let idx = self.forest.shard_for(key);
        self.forest.metrics.record_route(idx, self.stripe);
        self.ensure_session(idx);
        self.sessions[idx].as_mut().expect("ensured above")
    }

    /// Returns the value associated with `key`, if present. Wait-free:
    /// one shard lookup, one RCU read-side section in that shard.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.session_for(key).get(key)
    }

    /// Returns `true` iff `key` is present. Wait-free, like
    /// [`get`](Self::get).
    pub fn contains(&mut self, key: &K) -> bool {
        self.session_for(key).contains(key)
    }

    /// Inserts `(key, value)` into the key's shard; returns `true` iff
    /// the key was absent.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.session_for(&key).insert(key, value)
    }

    /// Removes `key` from its shard; returns `true` iff it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.session_for(key).remove(key)
    }

    /// Runs one fan-out ordered read over shards `first..=last` to a
    /// validated completion: enter each entered shard's read-side
    /// context, collect one traversal per shard, then re-check every
    /// recorded edge across all of them — restarting the **whole**
    /// fan-out when any moved. Scanning shards one after another would
    /// not be linearizable (shard A's snapshot would predate shard B's);
    /// holding all contexts and validating after all reads extends the
    /// single-tree common-instant argument across the entered subset.
    /// Restricting to a subset is only sound when the router guarantees
    /// the skipped shards cannot answer the query (see the module docs).
    fn fan_out<T>(
        &mut self,
        first: usize,
        last: usize,
        collect: impl Fn(&CitrusSession<'t, K, V, F>) -> ScanAttempt<K, V>,
        extract: impl Fn(&[ScanAttempt<K, V>]) -> T,
    ) -> T {
        chaos::point!("forest/scan/fan-out");
        for idx in first..=last {
            self.ensure_session(idx);
        }
        let sessions: Vec<&CitrusSession<'t, K, V, F>> = self.sessions[first..=last]
            .iter()
            .map(|slot| slot.as_ref().expect("materialized above"))
            .collect();
        loop {
            let guards: Vec<_> = sessions.iter().map(|s| s.ordered_read_enter()).collect();
            let attempts: Vec<ScanAttempt<K, V>> = sessions.iter().map(|&s| collect(s)).collect();
            chaos::point!("forest/scan/validate");
            // SAFETY: `guards` still holds every entered shard's
            // read-side section and pin the attempts were collected
            // under.
            let ok = chaos::mutant_enabled("citrus/scan/skip-validation")
                || attempts.iter().all(|a| unsafe { a.validate() });
            if ok {
                let out = extract(&attempts);
                drop(guards);
                self.forest.metrics.record_scan(self.stripe);
                self.forest
                    .metrics
                    .record_fanout(attempts.len(), self.stripe);
                return out;
            }
            drop(guards);
            self.forest.metrics.record_scan_restart(self.stripe);
            chaos::point!("forest/scan/restart");
        }
    }

    /// Every `(key, value)` pair with `lo <= key <= hi`, in ascending key
    /// order, observed atomically. Hash routing scatters any key range
    /// over every shard, so the fan-out enters all of them — an Ω(shard
    /// count) cost per scan no matter how narrow the range; range routing
    /// enters only the shards `[lo, hi]` overlaps (module docs). The
    /// per-shard results k-way merge into one ascending list.
    pub fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, V)> {
        if lo > hi {
            // An empty span holds at every instant; no shard need be
            // entered (and `shards_for_span` would invert on it).
            return Vec::new();
        }
        let (first, last) = self.forest.shards_for_span(lo, hi);
        self.fan_out(
            first,
            last,
            |session| session.collect_range(lo, hi),
            |attempts| {
                // SAFETY: `fan_out` extracts while every shard guard is
                // still held.
                merge_sorted(attempts.iter().map(|a| unsafe { a.entries() }).collect())
            },
        )
    }

    /// The entry with the least key strictly greater than `key`, observed
    /// atomically. Hash routing fans out to every shard (one candidate
    /// path per shard, validated together, minimum candidate wins); range
    /// routing probes outward from the key's home shard and usually stops
    /// after one or two shards ([`directed_probe`](Self::directed_probe)).
    pub fn successor(&mut self, key: &K) -> Option<(K, V)> {
        match self.forest.router_kind() {
            RouterKind::Range => self.directed_probe(key, Dir::Right),
            RouterKind::Hash => self.fan_out(
                0,
                self.forest.shard_count() - 1,
                |session| session.collect_directed(key, Dir::Right),
                |attempts| {
                    attempts
                        .iter()
                        // SAFETY: `fan_out` extracts while every shard
                        // guard is still held.
                        .filter_map(|a| unsafe { a.candidate() })
                        .min_by(|a, b| a.0.cmp(&b.0))
                },
            ),
        }
    }

    /// The entry with the greatest key strictly less than `key`, observed
    /// atomically (mirror of [`successor`](Self::successor)).
    pub fn predecessor(&mut self, key: &K) -> Option<(K, V)> {
        match self.forest.router_kind() {
            RouterKind::Range => self.directed_probe(key, Dir::Left),
            RouterKind::Hash => self.fan_out(
                0,
                self.forest.shard_count() - 1,
                |session| session.collect_directed(key, Dir::Left),
                |attempts| {
                    attempts
                        .iter()
                        // SAFETY: `fan_out` extracts while every shard
                        // guard is still held.
                        .filter_map(|a| unsafe { a.candidate() })
                        .max_by(|a, b| a.0.cmp(&b.0))
                },
            ),
        }
    }

    /// Range-router successor/predecessor: probe the key's home shard,
    /// then widen one adjacent shard at a time in the probe direction
    /// until a jointly validated attempt either holds a candidate or the
    /// forest is exhausted. Shards are ordered under range routing, so
    /// the first shard in probe order with any qualifying key owns the
    /// answer — almost always the home shard or its neighbor, vs. hash
    /// routing's unconditional all-shard fan-out.
    ///
    /// Each widened round re-collects **every** probed shard under one
    /// set of guards and validates them jointly: probing shards one after
    /// another would not be linearizable, because a writer could insert a
    /// closer key into an already-probed shard and the eventually-found
    /// answer into a later one between probes, making the returned entry
    /// wrong at every single instant. Only the final validated round
    /// establishes the linearization point; earlier rounds merely steer
    /// the widening.
    fn directed_probe(&mut self, key: &K, side: Dir) -> Option<(K, V)> {
        chaos::point!("forest/scan/fan-out");
        let start = self.forest.shard_for(key);
        let max_width = match side {
            Dir::Right => self.forest.shard_count() - start,
            Dir::Left => start + 1,
        };
        let shard_at = |step: usize| match side {
            Dir::Right => start + step,
            Dir::Left => start - step,
        };
        let mut width = 1;
        loop {
            for step in 0..width {
                self.ensure_session(shard_at(step));
            }
            let mut guards = Vec::with_capacity(width);
            let mut attempts: Vec<ScanAttempt<K, V>> = Vec::with_capacity(width);
            let mut found = false;
            for step in 0..width {
                let session = self.sessions[shard_at(step)]
                    .as_ref()
                    .expect("ensured above");
                guards.push(session.ordered_read_enter());
                let attempt = session.collect_directed(key, side);
                found = attempt.has_candidate();
                attempts.push(attempt);
                if found {
                    break;
                }
            }
            chaos::point!("forest/scan/validate");
            // SAFETY: `guards` still holds every probed shard's read-side
            // section and pin the attempts were collected under.
            let ok = chaos::mutant_enabled("citrus/scan/skip-validation")
                || attempts.iter().all(|a| unsafe { a.validate() });
            if !ok {
                drop(guards);
                self.forest.metrics.record_scan_restart(self.stripe);
                chaos::point!("forest/scan/restart");
                continue;
            }
            if found || width == max_width {
                // The last probed shard is the first in probe order with
                // a candidate (or the probe exhausted the forest empty);
                // range partitioning orders whole shards, so its
                // candidate beats every key in the shards beyond it.
                // SAFETY: as above — guards still held.
                let out = attempts.last().and_then(|a| unsafe { a.candidate() });
                drop(guards);
                self.forest.metrics.record_scan(self.stripe);
                self.forest
                    .metrics
                    .record_fanout(attempts.len(), self.stripe);
                return out;
            }
            drop(guards);
            width += 1;
        }
    }

    /// How many shard sessions this session has actually created.
    #[must_use]
    pub fn live_shard_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_some()).count()
    }
}

/// K-way merges per-shard, individually ascending entry runs into one
/// ascending list. Shards partition the key space, so no key appears in
/// two runs; the run index is only a total-order tiebreak for the heap.
fn merge_sorted<K: Ord + Clone, V>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    let total = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut iters: Vec<_> = runs.into_iter().map(|r| r.into_iter().peekable()).collect();
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = iters
        .iter_mut()
        .enumerate()
        .filter_map(|(i, it)| it.peek().map(|(k, _)| Reverse((k.clone(), i))))
        .collect();
    while let Some(Reverse((_, i))) = heap.pop() {
        let (k, v) = iters[i].next().expect("heap entries mirror run heads");
        out.push((k, v));
        if let Some((next, _)) = iters[i].peek() {
            heap.push(Reverse((next.clone(), i)));
        }
    }
    out
}

impl<K, V, F: RcuFlavor> fmt::Debug for ForestSession<'_, K, V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForestSession")
            .field("shards", &self.sessions.len())
            .field(
                "live",
                &self.sessions.iter().filter(|s| s.is_some()).count(),
            )
            .finish_non_exhaustive()
    }
}

impl<K, V, F> MapSession<K, V> for ForestSession<'_, K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    fn get(&mut self, key: &K) -> Option<V> {
        ForestSession::get(self, key)
    }

    fn contains(&mut self, key: &K) -> bool {
        ForestSession::contains(self, key)
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        ForestSession::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> bool {
        ForestSession::remove(self, key)
    }
}

impl<K, V, F> OrderedMapSession<K, V> for ForestSession<'_, K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, V)> {
        ForestSession::range_scan(self, lo, hi)
    }

    fn successor(&mut self, key: &K) -> Option<(K, V)> {
        ForestSession::successor(self, key)
    }

    fn predecessor(&mut self, key: &K) -> Option<(K, V)> {
        ForestSession::predecessor(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus_rcu::GlobalLockRcu;

    type Forest = CitrusForest<u64, u64>;

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        for (requested, expect) in [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16)] {
            let f = Forest::with_shards(requested);
            assert_eq!(f.shard_count(), expect, "requested {requested}");
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let a = Forest::with_sharding_seed(8, 0xDEAD);
        let b = Forest::with_sharding_seed(8, 0xDEAD);
        let c = Forest::with_sharding_seed(8, 0xBEEF);
        let mut differs = false;
        for key in 0u64..4096 {
            let s = a.shard_for(&key);
            assert!(s < 8);
            assert_eq!(s, b.shard_for(&key), "same seed must route identically");
            differs |= s != c.shard_for(&key);
        }
        assert!(differs, "different seeds should shuffle at least one key");
    }

    #[test]
    fn single_shard_forest_routes_everything_to_zero() {
        let f = Forest::with_shards(1);
        for key in 0u64..256 {
            assert_eq!(f.shard_for(&key), 0);
        }
    }

    #[test]
    fn lifecycle_and_aggregates() {
        let mut f = Forest::with_shards(4);
        {
            let mut s = f.session();
            for k in 0..100u64 {
                assert!(s.insert(k, k * 10));
                assert!(!s.insert(k, 0), "duplicate insert must fail");
            }
            for k in 0..100u64 {
                assert_eq!(s.get(&k), Some(k * 10));
                assert!(s.contains(&k));
            }
            for k in (0..100u64).step_by(2) {
                assert!(s.remove(&k));
                assert!(!s.remove(&k));
            }
        }
        assert_eq!(f.len_quiescent(), 50);
        assert!(!f.is_empty_quiescent());
        let v = f.to_vec_quiescent();
        assert_eq!(v.len(), 50);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");
        let stats = f.validate_structure().unwrap();
        assert_eq!(stats.len, 50);
    }

    #[test]
    fn inserted_keys_land_in_their_routed_shard() {
        let mut f = Forest::with_shards(8);
        let keys: Vec<u64> = (0..200).collect();
        {
            let mut s = f.session();
            for &k in &keys {
                s.insert(k, k);
            }
        }
        for &k in &keys {
            let idx = f.shard_for(&k);
            for i in 0..f.shard_count() {
                let present = f.shards[i]
                    .to_vec_quiescent()
                    .iter()
                    .any(|(kk, _)| *kk == k);
                assert_eq!(present, i == idx, "key {k} in shard {i}");
            }
        }
    }

    #[test]
    fn ordered_reads_fan_out_and_merge() {
        let f = Forest::with_shards(4);
        let mut s = f.session();
        for k in 0..100u64 {
            assert!(s.insert(k, k * 10));
        }
        let mid = s.range_scan(&10, &19);
        assert_eq!(mid.len(), 10);
        assert!(mid.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        assert_eq!(mid[0], (10, 100));
        assert_eq!(mid[9], (19, 190));
        assert_eq!(s.range_scan(&200, &300), vec![]);
        assert_eq!(s.range_scan(&19, &10), vec![], "empty range");
        assert_eq!(s.successor(&41), Some((42, 420)));
        assert_eq!(s.successor(&99), None);
        assert_eq!(s.predecessor(&1), Some((0, 0)));
        assert_eq!(s.predecessor(&0), None);
        assert_eq!(s.live_shard_sessions(), 4, "fan-out touches every shard");
    }

    #[test]
    fn range_router_routes_by_splitters() {
        let f: Forest = Forest::with_range_router(vec![100, 200, 300]);
        assert_eq!(f.shard_count(), 4);
        assert_eq!(f.router_kind(), RouterKind::Range);
        assert_eq!(f.splitters(), Some(&[100u64, 200, 300][..]));
        assert_eq!(f.shard_for(&u64::MIN), 0);
        assert_eq!(f.shard_for(&99), 0);
        // A key exactly at a splitter belongs to the upper shard: shard
        // ranges are low-inclusive.
        assert_eq!(f.shard_for(&100), 1);
        assert_eq!(f.shard_for(&199), 1);
        assert_eq!(f.shard_for(&200), 2);
        assert_eq!(f.shard_for(&300), 3);
        assert_eq!(f.shard_for(&u64::MAX), 3);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn range_router_rejects_unsorted_splitters() {
        let _: Forest = Forest::with_range_router(vec![10, 10]);
    }

    #[test]
    fn degenerate_empty_splitter_list_is_single_shard() {
        let f: Forest = Forest::with_range_router(vec![]);
        assert_eq!(f.shard_count(), 1);
        for key in [0u64, 1, 1000, u64::MAX] {
            assert_eq!(f.shard_for(&key), 0);
        }
        let mut s = f.session();
        assert!(s.insert(5, 50));
        assert!(s.insert(u64::MAX, 1));
        assert_eq!(
            s.range_scan(&0, &u64::MAX),
            vec![(5, 50), (u64::MAX, 1)],
            "degenerate forest still scans"
        );
    }

    #[test]
    fn even_splitters_partition_evenly() {
        assert_eq!(even_splitters(1, 100), vec![]);
        assert_eq!(even_splitters(4, 100), vec![25, 50, 75]);
        assert_eq!(even_splitters(4, 4), vec![1, 2, 3]);
        let s = even_splitters(8, 1 << 20);
        assert_eq!(s.len(), 7);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn even_splitters_reject_too_small_key_range() {
        let _ = even_splitters(8, 4);
    }

    #[test]
    #[should_panic(expected = "CITRUS_ROUTER")]
    fn router_kind_rejects_unknown_labels() {
        let _ = RouterKind::parse("CITRUS_ROUTER", "radix");
    }

    #[test]
    fn router_kind_parses_labels() {
        assert_eq!(RouterKind::parse("CITRUS_ROUTER", ""), RouterKind::Hash);
        assert_eq!(RouterKind::parse("CITRUS_ROUTER", "hash"), RouterKind::Hash);
        assert_eq!(
            RouterKind::parse("CITRUS_ROUTER", " range "),
            RouterKind::Range
        );
    }

    #[test]
    fn range_scans_enter_only_overlapping_shards() {
        let f: Forest = Forest::with_range_router(vec![100, 200, 300]);
        let mut writer = f.session();
        for k in 0..400u64 {
            assert!(writer.insert(k, k * 10));
        }
        drop(writer);

        // A span inside one shard's range touches exactly that shard.
        let mut s = f.session();
        let mid = s.range_scan(&120, &180);
        assert_eq!(mid.len(), 61);
        assert_eq!(mid[0], (120, 1200));
        assert_eq!(mid[60], (180, 1800));
        assert_eq!(s.live_shard_sessions(), 1, "narrow span: one shard");

        // A span crossing two splitters touches exactly three shards.
        let mut s = f.session();
        let wide = s.range_scan(&50, &250);
        assert_eq!(wide.len(), 201);
        assert!(wide.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        assert_eq!(s.live_shard_sessions(), 3, "wide span: three shards");

        // Span edges exactly on a shard boundary: [100, 199] lives wholly
        // in shard 1; [100, 200] additionally touches shard 2.
        let mut s = f.session();
        assert_eq!(s.range_scan(&100, &199).len(), 100);
        assert_eq!(s.live_shard_sessions(), 1, "boundary-to-boundary span");
        assert_eq!(s.range_scan(&100, &200).len(), 101);
        assert_eq!(s.live_shard_sessions(), 2, "span ending on a splitter");

        // Inverted span: no shard entered at all.
        let mut s = f.session();
        assert_eq!(s.range_scan(&19, &10), vec![]);
        assert_eq!(s.live_shard_sessions(), 0, "empty span enters nothing");
    }

    #[test]
    fn directed_probes_widen_only_as_needed() {
        let f: Forest = Forest::with_range_router(vec![100, 200]);
        let mut writer = f.session();
        assert!(writer.insert(50, 1));
        assert!(writer.insert(150, 2));
        drop(writer);

        // Successor answered by the home shard: one session.
        let mut s = f.session();
        assert_eq!(s.successor(&10), Some((50, 1)));
        assert_eq!(s.live_shard_sessions(), 1);

        // Home shard exhausted rightward: widen to the next shard.
        let mut s = f.session();
        assert_eq!(s.successor(&50), Some((150, 2)));
        assert_eq!(s.live_shard_sessions(), 2);

        // Predecessor mirrors: home shard 1 has nothing below 150, so the
        // probe widens down to shard 0.
        let mut s = f.session();
        assert_eq!(s.predecessor(&150), Some((50, 1)));
        assert_eq!(s.live_shard_sessions(), 2);

        // Probes that exhaust the forest still answer correctly.
        let mut s = f.session();
        assert_eq!(s.successor(&150), None);
        assert_eq!(s.predecessor(&50), None);
        assert_eq!(s.successor(&u64::MAX), None);
        assert_eq!(s.predecessor(&u64::MIN), None);

        // A key exactly at a splitter probes from the upper shard.
        let mut s = f.session();
        assert_eq!(s.successor(&100), Some((150, 2)));
        assert_eq!(s.live_shard_sessions(), 1, "splitter key: upper shard");
        assert_eq!(s.predecessor(&100), Some((50, 1)));
    }

    #[test]
    fn range_router_boundary_keys_round_trip() {
        let f: Forest = Forest::with_range_router(vec![100, 200]);
        let mut s = f.session();
        for k in [u64::MIN, 99, 100, 101, 199, 200, u64::MAX] {
            assert!(s.insert(k, k.wrapping_add(1)));
        }
        for k in [u64::MIN, 99, 100, 101, 199, 200, u64::MAX] {
            assert_eq!(s.get(&k), Some(k.wrapping_add(1)), "key {k}");
        }
        assert_eq!(s.successor(&u64::MIN), Some((99, 100)));
        assert_eq!(s.predecessor(&u64::MAX), Some((200, 201)));
        let all = s.range_scan(&u64::MIN, &u64::MAX);
        assert_eq!(all.len(), 7);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        drop(s);
        let mut f = f;
        let stats = f.validate_structure().unwrap();
        assert_eq!(stats.len, 7);
    }

    #[test]
    fn cross_shard_validation_catches_range_misroutes() {
        // Plant a key in a shard outside its `[low, high)` range — what a
        // splitter-comparison bug would do.
        let mut f: Forest = Forest::with_range_router(vec![100, 200, 300]);
        f.shards[0].session().insert(250, 1);
        match f.validate_structure() {
            Err(InvariantViolation::MisroutedKey {
                found_in,
                routed_to,
            }) => {
                assert_eq!(found_in, 0);
                assert_eq!(routed_to, 2, "250 belongs to [200, 300)");
            }
            other => panic!("expected a misrouted key, got {other:?}"),
        }
    }

    #[cfg(feature = "stats")]
    #[test]
    fn fanout_width_metric_tracks_router() {
        let hash: Forest = Forest::with_shards(4);
        let mut s = hash.session();
        s.insert(1, 1);
        s.range_scan(&0, &3);
        assert_eq!(hash.metrics().fanout_shards(), 4, "hash: all shards");
        drop(s);

        let range: Forest = Forest::with_range_router(vec![100, 200, 300]);
        let mut s = range.session();
        s.insert(1, 1);
        s.range_scan(&0, &3);
        assert_eq!(range.metrics().fanout_shards(), 1, "range: overlap only");
    }

    #[test]
    fn cross_shard_validation_catches_duplicates() {
        // Plant a duplicate by writing into two shards' trees directly,
        // bypassing routing — exactly what a routing bug would do.
        let mut f = Forest::with_shards(4);
        let key = 7u64;
        let home = f.shard_for(&key);
        let other = (home + 1) % f.shard_count();
        f.shards[home].session().insert(key, 1);
        f.shards[other].session().insert(key, 2);
        match f.validate_structure() {
            Err(InvariantViolation::CrossShardDuplicate { .. }) => {}
            other => panic!("expected a cross-shard duplicate, got {other:?}"),
        }
    }

    #[test]
    fn cross_shard_validation_catches_misroutes() {
        let mut f = Forest::with_shards(4);
        let key = 9u64;
        let home = f.shard_for(&key);
        let wrong = (home + 1) % f.shard_count();
        f.shards[wrong].session().insert(key, 1);
        match f.validate_structure() {
            Err(InvariantViolation::MisroutedKey {
                found_in,
                routed_to,
            }) => {
                assert_eq!(found_in, wrong);
                assert_eq!(routed_to, home);
            }
            other => panic!("expected a misrouted key, got {other:?}"),
        }
    }

    #[test]
    fn sessions_are_lazy() {
        let f = Forest::with_shards(8);
        let mut s = f.session();
        assert_eq!(s.live_shard_sessions(), 0);
        s.insert(7, 7);
        assert_eq!(s.live_shard_sessions(), 1);
        s.get(&7);
        assert_eq!(s.live_shard_sessions(), 1, "reuse, don't re-create");
    }

    #[test]
    fn per_shard_grace_periods_are_independent() {
        let f = Forest::with_shards(4);
        let before = f.grace_periods_per_shard();
        // Force a grace period in exactly one shard via its own domain.
        let target = f.shard_for(&42u64);
        {
            let handle = f.shard(target).rcu().register();
            citrus_rcu::RcuHandle::synchronize(&handle);
        }
        let after = f.grace_periods_per_shard();
        assert!(after[target] > before[target]);
        for i in 0..4 {
            if i != target {
                assert_eq!(after[i], before[i], "shard {i} must not advance");
            }
        }
    }

    #[test]
    fn works_with_global_lock_flavor() {
        let forest: CitrusForest<u64, u64, GlobalLockRcu> = CitrusForest::with_shards(2);
        let mut s = forest.session();
        assert!(s.insert(1, 1));
        assert!(s.remove(&1));
    }

    #[test]
    fn leak_mode_reports_no_reclaimed_count() {
        let f: Forest = CitrusForest::with_config(2, 0, ReclaimMode::Leak);
        assert_eq!(f.reclaimed_count(), None);
        let f: Forest = CitrusForest::with_config(2, 0, ReclaimMode::Epoch);
        assert_eq!(f.reclaimed_count(), Some(0));
    }

    #[cfg(feature = "stats")]
    #[test]
    fn metrics_roll_up_with_shard_labels() {
        let mut f = Forest::with_shards(2);
        let registry = MetricsRegistry::new();
        f.register_metrics(&registry);
        {
            let mut s = f.session();
            for k in 0..64u64 {
                s.insert(k, k);
            }
        }
        f.record_occupancy();
        let snap = registry.snapshot();
        let locks: u64 = (0..2)
            .map(|i| {
                snap.counter(&format!("shard{i}/citrus"), "lock_acquisitions")
                    .unwrap()
            })
            .sum();
        assert!(locks >= 64, "every insert locks at least one node");
        let routed: u64 = (0..2)
            .map(|i| snap.counter("forest", &format!("routed_shard{i}")).unwrap())
            .sum();
        assert_eq!(routed, 64);
        let occupancy = snap.histogram("forest", "shard_occupancy").unwrap();
        assert_eq!(occupancy.count, 2, "one occupancy sample per shard");
    }
}
