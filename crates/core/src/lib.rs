//! # Citrus: concurrent updates with RCU
//!
//! A from-scratch Rust implementation of the **Citrus tree** from
//! Maya Arbel and Hagit Attiya, *"Concurrent Updates with RCU: Search Tree
//! as an Example"*, PODC 2014 — the first RCU-based data structure that
//! allows concurrent updaters.
//!
//! Citrus is an internal (keys in all nodes), unbalanced binary search
//! tree implementing a dictionary:
//!
//! * [`CitrusSession::get`] / [`CitrusSession::contains`] — **wait-free**,
//!   runs inside an RCU read-side critical section, never blocks and never
//!   retries, and proceeds in parallel with updates.
//! * [`CitrusSession::insert`] / [`CitrusSession::remove`] — synchronize
//!   among themselves with **fine-grained per-node locks**, validated
//!   after acquisition (restarting on failure), and with readers through
//!   RCU: a `delete` that must relocate a node's successor first inserts a
//!   *copy* at the new location, calls `synchronize_rcu` to wait out every
//!   search that might still find the successor at its old location, and
//!   only then unlinks the original.
//!
//! The tree is generic over the RCU implementation ([`RcuFlavor`]): the
//! paper's scalable flavor ([`ScalableRcu`], default) or the classic
//! global-lock flavor whose breakdown under concurrent updates the paper's
//! Figure 8 demonstrates.
//!
//! ## Quick start
//!
//! ```
//! use citrus::CitrusTree;
//!
//! let tree: CitrusTree<u64, String> = CitrusTree::new();
//!
//! // One session per thread.
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let mut session = tree.session();
//!         session.insert(1, "readers never block".to_string());
//!     });
//!     s.spawn(|| {
//!         let mut session = tree.session();
//!         let _ = session.get(&1); // wait-free, even during updates
//!     });
//! });
//! ```
//!
//! ## Memory reclamation
//!
//! The paper's experiments run with reclamation disabled; its future work
//! asks for proper reclamation. Both are available ([`ReclaimMode`]):
//! `Leak` queues removed nodes until the tree drops (the paper's
//! methodology), `Epoch` (default) retires them to an epoch-based
//! reclamation domain and frees them after a grace period.
//!
//! ## Crate map
//!
//! | paper artifact | here |
//! |---|---|
//! | `get` lines 1–15 | `CitrusSession::search` (internal) |
//! | `contains` 16–20 | [`CitrusSession::get`] |
//! | `insert` 21–32 | [`CitrusSession::insert`] |
//! | `validate` 33–38 | `tree::validate` (internal) |
//! | `incrementTag` 39–41 | `node::Node::increment_tag` (internal) |
//! | `delete` 42–84 | [`CitrusSession::remove`] |
//! | WBST / linearizability (§4) | [`CitrusTree::validate_structure`] + test suites |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checks;
mod forest;
mod metrics;
mod node;
mod tree;

pub use checks::{InvariantViolation, TreeStats};
pub use citrus_rcu::{GlobalLockRcu, RcuFlavor, ScalableRcu};
pub use citrus_reclaim::{deferred_free_from_env, CallRcu, CallRcuConfig};
pub use forest::{even_splitters, CitrusForest, ForestMetrics, ForestSession, RouterKind};
pub use metrics::TreeMetrics;
pub use tree::{CitrusSession, CitrusTree, ReclaimMode, SessionStats};

#[cfg(test)]
mod tests {
    use super::*;
    use citrus_api::testkit;

    type Tree = CitrusTree<u64, u64>;
    type TreeStd = CitrusTree<u64, u64, GlobalLockRcu>;

    fn all_modes() -> [ReclaimMode; 2] {
        [ReclaimMode::Leak, ReclaimMode::Epoch]
    }

    #[test]
    fn empty_tree_behaves() {
        for mode in all_modes() {
            let tree = Tree::with_reclaim(mode);
            let mut s = tree.session();
            assert_eq!(s.get(&1), None);
            assert!(!s.contains(&1));
            assert!(!s.remove(&1));
            drop(s);
            let mut tree = tree;
            assert!(tree.is_empty_quiescent());
            tree.validate_structure().unwrap();
        }
    }

    #[test]
    fn single_key_lifecycle() {
        let tree = Tree::new();
        let mut s = tree.session();
        assert!(s.insert(5, 50));
        assert!(!s.insert(5, 51), "duplicate insert must fail");
        assert_eq!(s.get(&5), Some(50), "value must not be overwritten");
        assert!(s.remove(&5));
        assert!(!s.remove(&5));
        assert_eq!(s.get(&5), None);
    }

    #[test]
    fn delete_leaf() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in [10, 5, 15] {
            s.insert(k, k);
        }
        assert!(s.remove(&5)); // leaf
        drop(s);
        let mut tree = tree;
        assert_eq!(tree.to_vec_quiescent(), vec![(10, 10), (15, 15)]);
        tree.validate_structure().unwrap();
    }

    #[test]
    fn delete_node_with_one_child() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in [10, 5, 3] {
            s.insert(k, k);
        }
        assert!(s.remove(&5)); // one (left) child
        assert_eq!(s.get(&3), Some(3), "child must be spliced up");
        drop(s);
        let mut tree = tree;
        assert_eq!(tree.to_vec_quiescent(), vec![(3, 3), (10, 10)]);
        tree.validate_structure().unwrap();

        let tree = Tree::new();
        let mut s = tree.session();
        for k in [10, 5, 7] {
            s.insert(k, k);
        }
        assert!(s.remove(&5)); // one (right) child
        assert_eq!(s.get(&7), Some(7));
        drop(s);
        let mut tree = tree;
        tree.validate_structure().unwrap();
    }

    #[test]
    fn delete_node_with_two_children_uses_successor() {
        // Successor deep in the right subtree (prevSucc != curr).
        let tree = Tree::new();
        let mut s = tree.session();
        for k in [10, 5, 20, 15, 12, 17] {
            s.insert(k, k * 100);
        }
        let sync_before = s.stats().synchronize_calls();
        let defer_before = s.stats().deferred_unlinks();
        assert!(s.remove(&10));
        // Inline mode pays one synchronize_rcu; deferred mode enqueues one
        // unlink record instead (CITRUS_DEFERRED_FREE picks the mode).
        assert_eq!(
            s.stats().synchronize_calls() + s.stats().deferred_unlinks(),
            sync_before + defer_before + 1,
            "two-child delete must synchronize inline or defer its unlink, exactly once"
        );
        for k in [5, 20, 15, 12, 17] {
            assert_eq!(s.get(&k), Some(k * 100), "key {k} lost by successor move");
        }
        assert_eq!(s.get(&10), None);
        drop(s);
        let mut tree = tree;
        tree.validate_structure().unwrap();
    }

    #[test]
    fn delete_where_successor_is_right_child() {
        // prevSucc == curr: succ is curr's own right child (paper line 76).
        let tree = Tree::new();
        let mut s = tree.session();
        for k in [10, 5, 20, 25] {
            s.insert(k, k);
        }
        assert!(s.remove(&10)); // successor 20 is 10's right child
        for k in [5, 20, 25] {
            assert_eq!(s.get(&k), Some(k));
        }
        drop(s);
        let mut tree = tree;
        assert_eq!(tree.to_vec_quiescent(), vec![(5, 5), (20, 20), (25, 25)]);
        tree.validate_structure().unwrap();
    }

    #[test]
    fn delete_root_of_data_subtree_repeatedly() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in 0..64u64 {
            s.insert(k, k);
        }
        // Remove in an order that repeatedly hits two-children cases.
        for k in [31, 15, 47, 7, 23, 39, 55, 3, 11, 19, 27, 35, 43, 51, 59] {
            assert!(s.remove(&k), "key {k}");
        }
        drop(s);
        let mut tree = tree;
        let stats = tree.validate_structure().unwrap();
        assert_eq!(stats.len, 64 - 15);
    }

    #[test]
    fn sequential_model_all_modes_and_flavors() {
        for mode in all_modes() {
            testkit::check_sequential_model(&Tree::with_reclaim(mode), 6_000, 256, 0xACE1);
            testkit::check_sequential_model(&TreeStd::with_reclaim(mode), 3_000, 128, 0xACE2);
        }
    }

    #[test]
    fn duplicate_semantics() {
        testkit::check_duplicate_inserts(&Tree::new());
        testkit::check_duplicate_inserts(&TreeStd::new());
    }

    #[test]
    fn concurrent_lost_updates_all_modes() {
        for mode in all_modes() {
            testkit::check_lost_updates(&Tree::with_reclaim(mode), 8, 300);
        }
    }

    #[test]
    fn concurrent_partitioned_determinism_all_modes() {
        for mode in all_modes() {
            testkit::check_partitioned_determinism(&Tree::with_reclaim(mode), 8, 3_000, 64);
        }
    }

    #[test]
    fn concurrent_mixed_quiescent_all_modes() {
        for mode in all_modes() {
            testkit::check_mixed_quiescent_consistency(&Tree::with_reclaim(mode), 8, 3_000, 128);
        }
    }

    #[test]
    fn concurrent_stress_with_global_lock_rcu() {
        testkit::check_partitioned_determinism(&TreeStd::new(), 4, 1_500, 32);
        testkit::check_mixed_quiescent_consistency(&TreeStd::new(), 4, 1_500, 64);
    }

    #[test]
    fn structure_valid_after_concurrent_churn() {
        for mode in all_modes() {
            let tree = Tree::with_reclaim(mode);
            testkit::check_mixed_quiescent_consistency(&tree, 8, 4_000, 64);
            let mut tree = tree;
            let stats = tree.validate_structure().unwrap();
            assert!(stats.len <= 64);
        }
    }

    #[test]
    fn quiescent_iteration_is_sorted() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in [9, 1, 8, 2, 7, 3, 6, 4, 5] {
            s.insert(k, k * 2);
        }
        drop(s);
        let mut tree = tree;
        let v = tree.to_vec_quiescent();
        assert_eq!(v.len(), 9);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(v.iter().all(|(k, val)| *val == k * 2));
        assert_eq!(tree.len_quiescent(), 9);
    }

    #[test]
    fn epoch_mode_survives_heavy_churn_and_frees() {
        let tree = Tree::with_reclaim(ReclaimMode::Epoch);
        let mut s = tree.session();
        for round in 0..20 {
            for k in 0..200u64 {
                s.insert(k, round);
            }
            for k in 0..200u64 {
                s.remove(&k);
            }
        }
        drop(s);
        assert!(
            tree.reclaimed_count().expect("epoch mode reports counts") > 0,
            "4000 removals must free something before drop"
        );
        let mut tree = tree;
        assert!(tree.is_empty_quiescent());
        tree.validate_structure().unwrap();
    }

    #[test]
    fn leak_mode_frees_nothing_before_drop() {
        let tree = Tree::with_reclaim(ReclaimMode::Leak);
        let mut s = tree.session();
        for k in 0..100u64 {
            s.insert(k, k);
        }
        for k in 0..100u64 {
            s.remove(&k);
        }
        drop(s);
        assert_eq!(tree.reclaimed_count(), None);
    }

    #[test]
    fn reclaim_mode_accessors() {
        assert_eq!(Tree::new().reclaim_mode(), ReclaimMode::Epoch);
        assert_eq!(
            Tree::with_reclaim(ReclaimMode::Leak).reclaim_mode(),
            ReclaimMode::Leak
        );
    }

    #[test]
    fn works_with_string_keys_and_values() {
        let tree: CitrusTree<String, String> = CitrusTree::new();
        let mut s = tree.session();
        assert!(s.insert("b".into(), "bee".into()));
        assert!(s.insert("a".into(), "ay".into()));
        assert!(s.insert("c".into(), "sea".into()));
        assert_eq!(s.get(&"b".to_string()), Some("bee".to_string()));
        assert!(s.remove(&"b".to_string()));
        assert_eq!(s.get(&"b".to_string()), None);
        drop(s);
        let mut tree = tree;
        assert_eq!(tree.len_quiescent(), 2);
        tree.validate_structure().unwrap();
    }

    #[test]
    fn min_and_max_keys_are_usable() {
        // The sentinels are symbolic (−∞/∞ variants), so the full u64 range
        // is usable — no reserved keys.
        let tree = Tree::new();
        let mut s = tree.session();
        assert!(s.insert(0, 1));
        assert!(s.insert(u64::MAX, 2));
        assert_eq!(s.get(&0), Some(1));
        assert_eq!(s.get(&u64::MAX), Some(2));
        assert!(s.remove(&0));
        assert!(s.remove(&u64::MAX));
    }

    #[test]
    fn debug_impls_nonempty() {
        let tree = Tree::new();
        let s = tree.session();
        assert!(format!("{tree:?}").contains("CitrusTree"));
        assert!(format!("{s:?}").contains("CitrusSession"));
    }

    #[test]
    fn tree_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tree>();
        assert_send_sync::<TreeStd>();
    }
}
