//! Quiescent-state structural checks and traversals.
//!
//! All functions here take `&mut CitrusTree`, which guarantees exclusivity
//! (no sessions can exist, since sessions borrow the tree immutably), so
//! walking raw pointers is safe and the tree must satisfy the *strict*
//! sequential BST invariants — the weak BST property's duplicates
//! (Definition 1) exist only transiently inside a two-child `delete`.

use crate::node::{Dir, KeyBound, Node};
use crate::tree::CitrusTree;
use citrus_rcu::RcuFlavor;
use core::fmt;

/// Structural statistics returned by a successful
/// [`validate_structure`](CitrusTree::validate_structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreeStats {
    /// Number of key-bearing (non-sentinel) nodes.
    pub len: usize,
    /// Height of the key-bearing tree (0 for empty).
    pub height: usize,
}

/// A violated structural invariant, found by
/// [`validate_structure`](CitrusTree::validate_structure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The `−1`/`∞` sentinel frame is damaged.
    BrokenSentinels(&'static str),
    /// A node's key falls outside the range implied by its ancestors.
    OrderViolation {
        /// Depth at which the violation was found.
        depth: usize,
    },
    /// Two reachable nodes carry the same key (legal only *during* a
    /// two-child delete; never at quiescence).
    DuplicateKey,
    /// A reachable node is marked deleted.
    ReachableMarked,
    /// A reachable node's lock is held although the tree is quiescent.
    ReachableLocked,
    /// Two forest shards both hold the same key (forest validation only):
    /// an aggregate view would double-count it.
    CrossShardDuplicate {
        /// The two shards holding the duplicate.
        shards: (usize, usize),
    },
    /// A forest shard holds a key the router assigns to another shard
    /// (forest validation only).
    MisroutedKey {
        /// The shard the key was found in.
        found_in: usize,
        /// The shard the router assigns it to.
        routed_to: usize,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BrokenSentinels(what) => write!(f, "broken sentinel frame: {what}"),
            Self::OrderViolation { depth } => {
                write!(f, "BST order violated at depth {depth}")
            }
            Self::DuplicateKey => write!(f, "duplicate key reachable at quiescence"),
            Self::ReachableMarked => write!(f, "marked node still reachable"),
            Self::ReachableLocked => write!(f, "node lock held at quiescence"),
            Self::CrossShardDuplicate { shards } => {
                write!(f, "same key in forest shards {} and {}", shards.0, shards.1)
            }
            Self::MisroutedKey {
                found_in,
                routed_to,
            } => {
                write!(
                    f,
                    "key found in shard {found_in} but routes to shard {routed_to}"
                )
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

impl<K, V, F> CitrusTree<K, V, F>
where
    K: Ord,
    F: RcuFlavor,
{
    /// Verifies the full set of quiescent structural invariants:
    /// sentinel frame, strict BST order, key uniqueness, no reachable
    /// marked nodes, no held locks. Returns node count and height.
    ///
    /// Requires `&mut self`, which proves quiescence.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] found.
    pub fn validate_structure(&mut self) -> Result<TreeStats, InvariantViolation> {
        // Deferred mode: a pending unlink record legitimately keeps the
        // old successor reachable, marked, locked, and duplicated. Run all
        // pending records first so the strict invariants below apply.
        self.flush_deferred();
        let root = self.root_ptr();
        // SAFETY (whole function): `&mut self` means no concurrent
        // accessors; reachable nodes are alive until drop.
        unsafe {
            let root_ref = &*root;
            if root_ref.key != KeyBound::NegInf {
                return Err(InvariantViolation::BrokenSentinels("root key is not −∞"));
            }
            let inf = root_ref.child(Dir::Right);
            if inf.is_null() {
                return Err(InvariantViolation::BrokenSentinels(
                    "root has no right child",
                ));
            }
            if (*inf).key != KeyBound::PosInf {
                return Err(InvariantViolation::BrokenSentinels(
                    "root's right child is not ∞",
                ));
            }
            if !(*inf).child(Dir::Right).is_null() {
                return Err(InvariantViolation::BrokenSentinels(
                    "∞ sentinel grew a right subtree",
                ));
            }
            if !root_ref.child(Dir::Left).is_null() {
                return Err(InvariantViolation::BrokenSentinels(
                    "−∞ sentinel grew a left subtree",
                ));
            }
            for (node, name) in [(root, "−∞"), (inf, "∞")] {
                if (*node).is_marked() {
                    return Err(InvariantViolation::BrokenSentinels(match name {
                        "−∞" => "−∞ sentinel is marked",
                        _ => "∞ sentinel is marked",
                    }));
                }
            }

            // Iterative bounded-range DFS over the key-bearing subtree.
            let mut stats = TreeStats::default();
            let mut prev_key: Option<&K> = None;
            // (node, lower, upper, depth); in-order via explicit stack.
            let mut stack: Vec<(*mut Node<K, V>, usize)> = Vec::new();
            let mut current = (*inf).child(Dir::Left);
            let mut depth = 1usize;
            // In-order traversal checking strict ordering via `prev_key`
            // (equivalent to range checking, and it detects duplicates).
            loop {
                while !current.is_null() {
                    stack.push((current, depth));
                    current = (*current).child(Dir::Left);
                    depth += 1;
                }
                let Some((node, node_depth)) = stack.pop() else {
                    break;
                };
                let node_ref = &*node;
                if node_ref.is_marked() {
                    return Err(InvariantViolation::ReachableMarked);
                }
                if node_ref.lock.is_locked() {
                    return Err(InvariantViolation::ReachableLocked);
                }
                let Some(key) = node_ref.key.as_key() else {
                    return Err(InvariantViolation::BrokenSentinels(
                        "sentinel key inside the data subtree",
                    ));
                };
                if let Some(prev) = prev_key {
                    match prev.cmp(key) {
                        core::cmp::Ordering::Less => {}
                        core::cmp::Ordering::Equal => return Err(InvariantViolation::DuplicateKey),
                        core::cmp::Ordering::Greater => {
                            return Err(InvariantViolation::OrderViolation { depth: node_depth })
                        }
                    }
                }
                prev_key = Some(key);
                stats.len += 1;
                stats.height = stats.height.max(node_depth);
                current = node_ref.child(Dir::Right);
                depth = node_depth + 1;
            }
            Ok(stats)
        }
    }

    /// Calls `f` for every key–value pair in ascending key order.
    ///
    /// Requires `&mut self` (quiescence); the paper's Figure 1 shows that
    /// concurrent multi-item read-only traversals are *not* linearizable
    /// under RCU with concurrent updaters — which is exactly why Citrus
    /// offers only single-key `contains` concurrently, and iteration only
    /// at quiescence.
    pub fn for_each_quiescent(&mut self, mut f: impl FnMut(&K, &V)) {
        // Run pending deferred unlinks: a not-yet-unlinked successor would
        // otherwise be visited twice (its copy and its old position).
        self.flush_deferred();
        let root = self.root_ptr();
        // SAFETY: `&mut self` — exclusive access.
        unsafe {
            let inf = (*root).child(Dir::Right);
            let mut stack: Vec<*mut Node<K, V>> = Vec::new();
            let mut current = (*inf).child(Dir::Left);
            loop {
                while !current.is_null() {
                    stack.push(current);
                    current = (*current).child(Dir::Left);
                }
                let Some(node) = stack.pop() else { break };
                if let (KeyBound::Key(k), Some(v)) = (&(*node).key, &(*node).value) {
                    f(k, v);
                }
                current = (*node).child(Dir::Right);
            }
        }
    }

    /// Number of keys in the tree. Requires `&mut self` (quiescence).
    pub fn len_quiescent(&mut self) -> usize {
        let mut n = 0;
        self.for_each_quiescent(|_, _| n += 1);
        n
    }

    /// `true` if the tree holds no keys. Requires `&mut self` (quiescence).
    pub fn is_empty_quiescent(&mut self) -> bool {
        self.len_quiescent() == 0
    }

    /// Collects all key–value pairs in ascending key order.
    /// Requires `&mut self` (quiescence).
    pub fn to_vec_quiescent(&mut self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        self.for_each_quiescent(|k, v| out.push((k.clone(), v.clone())));
        out
    }
}
