//! Tree nodes and key bounds.
//!
//! Layout follows the paper (§2, §3): an *internal* BST node stores its
//! key–value pair, a `marked` bit ("the node was deleted", used by
//! `validate`), one lock, two child pointers, and **two tag fields** — one
//! per child — incremented whenever the corresponding child pointer is set
//! to null, to protect `insert`'s validation against ABA (a leaf inserted
//! and then moved away by a concurrent `delete`).

use citrus_sync::RawSpinLock;
use core::cmp::Ordering as CmpOrdering;
use core::fmt;
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

/// A key extended with the paper's two dummy values `−1` (below every key)
/// and `∞` (above every key), stored in the two sentinel nodes so the tree
/// never has fewer than two nodes and searches need no corner cases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum KeyBound<K> {
    /// The `−1` sentinel: smaller than every key. Held by the root.
    NegInf,
    /// A real key.
    Key(K),
    /// The `∞` sentinel: larger than every key. Held by the root's right
    /// child; all real nodes live in its left subtree.
    PosInf,
}

impl<K: Ord> KeyBound<K> {
    /// Compares this (possibly sentinel) key against a real search key.
    pub(crate) fn cmp_key(&self, key: &K) -> CmpOrdering {
        match self {
            KeyBound::NegInf => CmpOrdering::Less,
            KeyBound::Key(k) => k.cmp(key),
            KeyBound::PosInf => CmpOrdering::Greater,
        }
    }

    /// Returns the real key, if this is not a sentinel.
    pub(crate) fn as_key(&self) -> Option<&K> {
        match self {
            KeyBound::Key(k) => Some(k),
            _ => None,
        }
    }
}

impl<K: Ord> PartialOrd for KeyBound<K> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for KeyBound<K> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        use KeyBound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => CmpOrdering::Equal,
            (NegInf, _) | (_, PosInf) => CmpOrdering::Less,
            (_, NegInf) | (PosInf, _) => CmpOrdering::Greater,
            (Key(a), Key(b)) => a.cmp(b),
        }
    }
}

/// Child direction; `direction` in the paper's pseudocode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Dir {
    /// Left child (index 0).
    Left = 0,
    /// Right child (index 1).
    Right = 1,
}

impl Dir {
    /// The paper's `direction ← (currentKey > key ? left : right)`.
    pub(crate) fn from_cmp(current_vs_search: CmpOrdering) -> Self {
        if current_vs_search == CmpOrdering::Greater {
            Dir::Left
        } else {
            Dir::Right
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// One Citrus tree node.
///
/// # Layout
///
/// `repr(C, align(64))` pins the *hot head* — lock, mark, child pointers,
/// tags: every word the search loop and `validate` touch — to the first
/// 64-byte cache line of the node, with the (immutable, possibly large)
/// key and value behind it. The RCU reader words in `citrus-sync` are
/// already cache-padded; without this, two unrelated nodes could share a
/// line and a delete's lock traffic would invalidate a neighbor node's
/// child pointers under concurrent searches.
#[repr(C, align(64))]
pub(crate) struct Node<K, V> {
    /// The node's fine-grained updater lock.
    pub(crate) lock: RawSpinLock,
    /// Set (under `lock`) just before the node is unlinked; `validate`
    /// checks it to detect operating on a deleted node.
    pub(crate) marked: AtomicBool,
    /// Child pointers (`child[0]` = left, `child[1]` = right).
    pub(crate) child: [AtomicPtr<Node<K, V>>; 2],
    /// Per-child tags, incremented when the corresponding child is set to
    /// null (`incrementTag`), so `insert`'s "child still null" validation
    /// cannot suffer ABA.
    pub(crate) tag: [AtomicU64; 2],
    /// The key; **never changes** after construction (paper §2).
    pub(crate) key: KeyBound<K>,
    /// The value; `None` only in the two sentinels. Never changes.
    pub(crate) value: Option<V>,
}

impl<K, V> Node<K, V> {
    /// Allocates a leaf with the given key/value and null children,
    /// returning the raw pointer (ownership passes to the tree once
    /// published).
    pub(crate) fn new_leaf(key: KeyBound<K>, value: Option<V>) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value,
            marked: AtomicBool::new(false),
            lock: RawSpinLock::new(),
            child: [
                AtomicPtr::new(ptr::null_mut()),
                AtomicPtr::new(ptr::null_mut()),
            ],
            tag: [AtomicU64::new(0), AtomicU64::new(0)],
        }))
    }

    /// Allocates the successor's replacement copy (paper line 70): `succ`'s
    /// key and value with `curr`'s children. Tags start at zero — the copy
    /// is a fresh node instance, so stale tag observations of the old nodes
    /// cannot alias it.
    pub(crate) fn new_replacement(
        key: KeyBound<K>,
        value: Option<V>,
        left: *mut Self,
        right: *mut Self,
    ) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value,
            marked: AtomicBool::new(false),
            lock: RawSpinLock::new(),
            child: [AtomicPtr::new(left), AtomicPtr::new(right)],
            tag: [AtomicU64::new(0), AtomicU64::new(0)],
        }))
    }

    /// Loads a child pointer.
    #[inline]
    pub(crate) fn child(&self, dir: Dir) -> *mut Self {
        self.child[dir.index()].load(Ordering::Acquire)
    }

    /// Stores a child pointer (caller must hold this node's lock).
    #[inline]
    pub(crate) fn set_child(&self, dir: Dir, ptr: *mut Self) {
        self.child[dir.index()].store(ptr, Ordering::Release);
    }

    /// Loads a tag.
    #[inline]
    pub(crate) fn tag(&self, dir: Dir) -> u64 {
        self.tag[dir.index()].load(Ordering::Acquire)
    }

    /// The paper's `incrementTag`: if the child in `dir` is null, bump the
    /// associated tag. Caller must hold this node's lock.
    pub(crate) fn increment_tag(&self, dir: Dir) {
        if self.child(dir).is_null() {
            self.tag[dir.index()].fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Whether the node has been marked deleted.
    #[inline]
    pub(crate) fn is_marked(&self) -> bool {
        self.marked.load(Ordering::Acquire)
    }

    /// Marks the node deleted (caller must hold this node's lock).
    #[inline]
    pub(crate) fn mark(&self) {
        self.marked.store(true, Ordering::Release);
    }
}

impl<K: fmt::Debug, V> fmt::Debug for Node<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("key", &self.key)
            .field("marked", &self.is_marked())
            .field("tags", &[self.tag(Dir::Left), self.tag(Dir::Right)])
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keybound_total_order() {
        let neg: KeyBound<u64> = KeyBound::NegInf;
        let five = KeyBound::Key(5u64);
        let nine = KeyBound::Key(9u64);
        let pos: KeyBound<u64> = KeyBound::PosInf;
        assert!(neg < five && five < nine && nine < pos);
        assert!(neg < pos);
        assert_eq!(five.clone().cmp(&five), CmpOrdering::Equal);
    }

    #[test]
    fn cmp_key_handles_sentinels() {
        assert_eq!(KeyBound::<u64>::NegInf.cmp_key(&0), CmpOrdering::Less);
        assert_eq!(
            KeyBound::<u64>::PosInf.cmp_key(&u64::MAX),
            CmpOrdering::Greater
        );
        assert_eq!(KeyBound::Key(3u64).cmp_key(&3), CmpOrdering::Equal);
        assert_eq!(KeyBound::Key(2u64).cmp_key(&3), CmpOrdering::Less);
    }

    #[test]
    fn as_key_only_for_real_keys() {
        assert_eq!(KeyBound::Key(1u64).as_key(), Some(&1));
        assert_eq!(KeyBound::<u64>::NegInf.as_key(), None);
        assert_eq!(KeyBound::<u64>::PosInf.as_key(), None);
    }

    #[test]
    fn dir_from_cmp_matches_paper() {
        // currentKey > key → left, else right.
        assert_eq!(Dir::from_cmp(CmpOrdering::Greater), Dir::Left);
        assert_eq!(Dir::from_cmp(CmpOrdering::Less), Dir::Right);
        assert_eq!(Dir::from_cmp(CmpOrdering::Equal), Dir::Right);
    }

    #[test]
    fn increment_tag_only_when_child_null() {
        let n = Node::<u64, u64>::new_leaf(KeyBound::Key(1), Some(1));
        // SAFETY: freshly allocated, exclusively owned.
        unsafe {
            assert_eq!((*n).tag(Dir::Left), 0);
            (*n).increment_tag(Dir::Left);
            assert_eq!((*n).tag(Dir::Left), 1);

            let leaf = Node::<u64, u64>::new_leaf(KeyBound::Key(2), Some(2));
            (*n).set_child(Dir::Left, leaf);
            (*n).increment_tag(Dir::Left);
            assert_eq!(
                (*n).tag(Dir::Left),
                1,
                "tag must not move for non-null child"
            );

            drop(Box::from_raw(leaf));
            drop(Box::from_raw(n));
        }
    }

    #[test]
    fn hot_head_is_cache_line_aligned() {
        use core::mem::{align_of, offset_of};
        // The node itself starts on a cache-line boundary...
        assert!(align_of::<Node<u64, u64>>() >= 64);
        // ...and the whole hot word group (lock, mark, children, tags)
        // fits inside the first 64 bytes, ahead of key and value.
        let hot_end = offset_of!(Node<u64, u64>, tag) + 2 * core::mem::size_of::<AtomicU64>();
        assert!(
            hot_end <= 64,
            "hot head spills past the first cache line (ends at {hot_end})"
        );
        assert!(offset_of!(Node<u64, u64>, key) >= offset_of!(Node<u64, u64>, tag));
    }

    #[test]
    fn mark_is_sticky() {
        let n = Node::<u64, u64>::new_leaf(KeyBound::Key(1), Some(1));
        // SAFETY: freshly allocated, exclusively owned.
        unsafe {
            assert!(!(*n).is_marked());
            (*n).mark();
            assert!((*n).is_marked());
            drop(Box::from_raw(n));
        }
    }
}
