//! Tree-level metrics: validation restarts, per-node lock acquisitions,
//! and `synchronize_rcu` calls on the two-child delete path.
//!
//! Instruments come from `citrus-obs` and are no-ops unless this crate is
//! built with the `stats` feature. [`CitrusTree::register_metrics`]
//! registers these together with the RCU domain's and (in `Epoch` mode)
//! the reclamation domain's instruments, giving one registry snapshot for
//! the whole stack.
//!
//! [`CitrusTree::register_metrics`]: crate::CitrusTree::register_metrics

use citrus_obs::{Counter, MetricsRegistry};
use core::sync::atomic::{AtomicUsize, Ordering};

/// Stripe count for the per-tree event counters.
const STRIPES: usize = 32;

/// Metrics kept by every [`CitrusTree`](crate::CitrusTree).
///
/// # Example
///
/// ```
/// use citrus::CitrusTree;
/// use citrus_obs::MetricsRegistry;
///
/// let tree: CitrusTree<u64, u64> = CitrusTree::new();
/// let registry = MetricsRegistry::new();
/// tree.register_metrics(&registry);
///
/// let mut s = tree.session();
/// s.insert(1, 10);
/// s.remove(&1);
/// # drop(s);
///
/// let snap = registry.snapshot();
/// #[cfg(feature = "stats")]
/// assert!(snap.counter("citrus", "lock_acquisitions").unwrap() >= 3);
/// #[cfg(not(feature = "stats"))]
/// assert!(snap.is_empty());
/// ```
#[derive(Debug)]
pub struct TreeMetrics {
    insert_retries: Counter,
    remove_retries: Counter,
    lock_acquisitions: Counter,
    synchronize_calls: Counter,
    deferred_unlinks: Counter,
    scan_ops: Counter,
    scan_restarts: Counter,
    /// Round-robin stripe allocator for sessions (cold path: one
    /// `fetch_add` per [`session`](crate::CitrusTree::session)).
    next_stripe: AtomicUsize,
}

impl TreeMetrics {
    pub(crate) fn new() -> Self {
        Self {
            insert_retries: Counter::new(STRIPES),
            remove_retries: Counter::new(STRIPES),
            lock_acquisitions: Counter::new(STRIPES),
            synchronize_calls: Counter::new(STRIPES),
            deferred_unlinks: Counter::new(STRIPES),
            scan_ops: Counter::new(STRIPES),
            scan_restarts: Counter::new(STRIPES),
            next_stripe: AtomicUsize::new(0),
        }
    }

    /// Assigns the next session its counter stripe.
    pub(crate) fn assign_stripe(&self) -> usize {
        self.next_stripe.fetch_add(1, Ordering::Relaxed) % STRIPES
    }

    /// Records an `insert` that failed validation and restarted.
    #[inline]
    pub(crate) fn record_insert_retry(&self, stripe: usize) {
        self.insert_retries.incr(stripe);
    }

    /// Records a `remove` that failed validation and restarted.
    #[inline]
    pub(crate) fn record_remove_retry(&self, stripe: usize) {
        self.remove_retries.incr(stripe);
    }

    /// Records `n` per-node lock acquisitions.
    #[inline]
    pub(crate) fn record_locks(&self, stripe: usize, n: u64) {
        self.lock_acquisitions.add(stripe, n);
    }

    /// Records one `synchronize_rcu` issued by a two-child delete.
    #[inline]
    pub(crate) fn record_synchronize(&self, stripe: usize) {
        self.synchronize_calls.incr(stripe);
    }

    /// Records a two-child delete that deferred its unlink instead of
    /// synchronizing inline (DESIGN.md §6g).
    #[inline]
    pub(crate) fn record_deferred_unlink(&self, stripe: usize) {
        self.deferred_unlinks.incr(stripe);
    }

    /// Records one completed ordered read (`range_scan` / `successor` /
    /// `predecessor`).
    #[inline]
    pub(crate) fn record_scan_op(&self, stripe: usize) {
        self.scan_ops.incr(stripe);
    }

    /// Records an ordered read whose traversal failed validation and
    /// restarted (DESIGN.md §6i).
    #[inline]
    pub(crate) fn record_scan_restart(&self, stripe: usize) {
        self.scan_restarts.incr(stripe);
    }

    /// Total `insert` validation restarts across sessions
    /// (`0` with stats off).
    #[must_use]
    pub fn insert_retries(&self) -> u64 {
        self.insert_retries.get()
    }

    /// Total `remove` validation restarts across sessions
    /// (`0` with stats off).
    #[must_use]
    pub fn remove_retries(&self) -> u64 {
        self.remove_retries.get()
    }

    /// Total per-node lock acquisitions across sessions
    /// (`0` with stats off).
    #[must_use]
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.get()
    }

    /// Total `synchronize_rcu` calls issued by two-child deletes
    /// (`0` with stats off).
    #[must_use]
    pub fn synchronize_calls(&self) -> u64 {
        self.synchronize_calls.get()
    }

    /// Total two-child deletes that deferred their unlink
    /// (`0` with stats off).
    #[must_use]
    pub fn deferred_unlinks(&self) -> u64 {
        self.deferred_unlinks.get()
    }

    /// Total completed ordered reads (`range_scan` / `successor` /
    /// `predecessor`) across sessions (`0` with stats off).
    #[must_use]
    pub fn scan_ops(&self) -> u64 {
        self.scan_ops.get()
    }

    /// Total ordered-read traversals that failed validation and restarted
    /// (`0` with stats off).
    #[must_use]
    pub fn scan_restarts(&self) -> u64 {
        self.scan_restarts.get()
    }

    /// Registers this tree's instruments under `component`.
    pub fn register_into(&self, registry: &MetricsRegistry, component: &str) {
        registry.register_counter(component, "insert_retries", &self.insert_retries);
        registry.register_counter(component, "remove_retries", &self.remove_retries);
        registry.register_counter(component, "lock_acquisitions", &self.lock_acquisitions);
        registry.register_counter(component, "synchronize_calls", &self.synchronize_calls);
        registry.register_counter(component, "deferred_unlinks", &self.deferred_unlinks);
        registry.register_counter(component, "scan_ops", &self.scan_ops);
        registry.register_counter(component, "scan_restarts", &self.scan_restarts);
    }
}
