//! Exhaustive small-schedule exploration of the Citrus tree's
//! linearization-sensitive windows (DESIGN.md §6h).
//!
//! Each scenario scripts 2 threads over a 4-node tree so that a
//! `remove` takes the two-child path — the paper's central race: mark the
//! victim, splice a copy of the successor, wait one grace period
//! (`synchronize_rcu`), then unlink the old successor. The sweeps
//! enumerate *every* interleaving of the instrumented yield points within
//! a preemption bound and check each against the linearizability oracle
//! plus full structural validation.
//!
//! The mutant tests prove the harness has teeth: with the grace period
//! deliberately skipped (`citrus/remove/skip-synchronize` for the inline
//! path, `reclaim/flush/skip-synchronize` for the deferred path), the
//! explorer must find a reader that misses a key that was never absent —
//! and the failing schedule it reports, replayed verbatim, must fail
//! again (and pass once the mutant is disabled).
//!
//! Replay any failure here with `CITRUS_SCHEDULE=<schedule> cargo test
//! --features chaos -p citrus <test>`.

#![cfg(feature = "chaos")]

use citrus::{CallRcuConfig, CitrusForest, CitrusTree, GlobalLockRcu, ReclaimMode};
use citrus_api::testkit::{
    enable_mutant, explore_schedules_with, replay_schedule_with, stress_watchdog, ExploreConfig,
    Explorer, ScenarioOp, ScheduleScenario,
};
use std::time::Duration;

type Tree = CitrusTree<u64, u64, GlobalLockRcu>;
type Forest = CitrusForest<u64, u64, GlobalLockRcu>;

/// Pinned minimal schedule (harvested from the mutant sweep) driving the
/// reader past the victim before the splice and back through the
/// successor's parent after the unlink — the exact window the inline
/// `synchronize_rcu` exists to close.
const PINNED_INLINE_DELETE_SCHEDULE: &str = "1110";

/// Pinned minimal schedule for the same window with the unlink deferred
/// through a `call_rcu` batch flushed inline by the deleting thread.
const PINNED_DEFERRED_FLUSH_SCHEDULE: &str = "1110";

fn make_inline() -> Tree {
    Tree::with_options(GlobalLockRcu::new(), ReclaimMode::Leak, false)
}

/// Deferred unlinking tuned for deterministic schedules: every enqueue
/// flushes inline on the enqueuing (scheduled) thread and the straggler
/// worker never wakes, so the whole flush runs under the scheduler.
fn make_deferred() -> Tree {
    Tree::with_deferred_config(
        GlobalLockRcu::new(),
        ReclaimMode::Leak,
        Some(CallRcuConfig {
            batch_threshold: 1,
            worker_interval: Duration::from_secs(3600),
            wake_on_first: false,
            eager_flush: true,
        }),
    )
}

fn validate(tree: &mut Tree) -> Result<(), String> {
    tree.validate_structure()
        .map(|_| ())
        .map_err(|v| format!("structure invariant violated: {v}"))
}

/// remove(20) takes the two-child path (children 10 and 30); its
/// successor is 25, which the concurrent reader looks up. 25 is never
/// removed, so any `get(25) → None` is a linearizability violation.
fn delete_window_scenario(name: &'static str) -> ScheduleScenario {
    ScheduleScenario::new(name)
        .prefill(&[(20, 200), (10, 100), (30, 300), (25, 250)])
        .thread(&[ScenarioOp::Remove(20)])
        .thread(&[ScenarioOp::Get(25)])
}

fn bounded(max_preemptions: usize) -> ExploreConfig {
    ExploreConfig {
        max_preemptions,
        ..ExploreConfig::default()
    }
}

#[test]
fn inline_delete_window_sweep_is_clean() {
    let _wd = stress_watchdog("inline_delete_window_sweep_is_clean");
    let scenario = delete_window_scenario("inline-two-child-delete");
    let report = explore_schedules_with(make_inline, &scenario, bounded(2), validate);
    report.assert_clean(scenario.name);
    // Coverage claims only hold for a full enumeration: a budget-limited
    // lane or a CITRUS_SCHEDULE single-run replay skips them.
    if !report.completed {
        return;
    }
    assert!(report.schedules > 1, "sweep must enumerate real schedules");
    // The sweep must actually drive through the delete window.
    for point in [
        "citrus/remove/before-synchronize",
        "citrus/remove/after-synchronize",
        "citrus/search/step",
        // The reader-wait block only fires in interleavings where the
        // grace period really overlaps the reader's critical section —
        // exactly the window the sweep exists to cover.
        "rcu-global-lock/synchronize/reader-wait",
    ] {
        assert!(
            report.points_hit.contains(point),
            "sweep never reached {point}; hit: {:?}",
            report.points_hit
        );
    }
}

#[test]
fn deferred_unlink_window_sweep_is_clean() {
    let _wd = stress_watchdog("deferred_unlink_window_sweep_is_clean");
    let scenario = delete_window_scenario("deferred-unlink-flush");
    let report = explore_schedules_with(make_deferred, &scenario, bounded(2), validate);
    report.assert_clean(scenario.name);
    if !report.completed {
        return;
    }
    for point in [
        "citrus/remove/defer-unlink",
        "reclaim/defer/enqueue",
        "reclaim/flush/before-synchronize",
        "reclaim/flush/after-synchronize",
        "citrus/deferred-unlink/run",
    ] {
        assert!(
            report.points_hit.contains(point),
            "sweep never reached {point}; hit: {:?}",
            report.points_hit
        );
    }
}

/// The acceptance gate for "exhaustive": for a fixed scenario and bound
/// the number of distinct schedules is a deterministic property of the
/// failpoint graph. A drift means yield points appeared or vanished —
/// deliberate (update the constant) or a silently lost window (a bug).
/// Budget-limited lanes (`CITRUS_EXPLORE_BUDGET_MS`) skip the pin: an
/// incomplete sweep has no stable count.
#[test]
fn explored_schedule_count_is_stable() {
    let _wd = stress_watchdog("explored_schedule_count_is_stable");
    let scenario = delete_window_scenario("inline-two-child-delete-count");
    let first = explore_schedules_with(make_inline, &scenario, bounded(1), validate);
    first.assert_clean(scenario.name);
    let second = explore_schedules_with(make_inline, &scenario, bounded(1), validate);
    assert_eq!(
        first.schedules, second.schedules,
        "same scenario and bound must enumerate the same schedule set"
    );
    if first.completed && second.completed {
        assert_eq!(
            first.schedules, 21,
            "bound-1 schedule count drifted — a yield point appeared or vanished \
             in the delete window; re-harvest if deliberate"
        );
    }
}

#[test]
fn inline_delete_skip_synchronize_mutant_is_caught() {
    let _wd = stress_watchdog("inline_delete_skip_synchronize_mutant_is_caught");
    let scenario = delete_window_scenario("inline-two-child-delete-mutant");
    let guard = enable_mutant("citrus/remove/skip-synchronize");
    let report = explore_schedules_with(make_inline, &scenario, bounded(2), validate);
    let failure = report
        .failure
        .expect("skipping the delete-path synchronize_rcu must be caught");
    eprintln!("[mutant] inline delete minimal schedule: {failure}");
    assert_eq!(
        failure.preemptions, 1,
        "iterative deepening must find a 1-preemption witness first"
    );
    assert!(
        failure.reason.contains("non-linearizable"),
        "the witness must be a linearizability violation, got: {}",
        failure.reason
    );
    // The reported schedule is a replayable witness...
    let rerun = replay_schedule_with(make_inline, &scenario, &failure.schedule, validate);
    assert!(
        rerun.verdict.is_err() || !rerun.outcome.clean(),
        "replaying the failing schedule must reproduce the failure"
    );
    // ...and the failure is the mutant's: the same schedule passes with
    // the real synchronize_rcu back in place.
    drop(guard);
    let fixed = replay_schedule_with(make_inline, &scenario, &failure.schedule, validate);
    assert!(
        fixed.outcome.clean() && fixed.verdict.is_ok(),
        "the minimal schedule must pass once the grace period is restored: {:?}",
        fixed.verdict
    );
}

#[test]
fn deferred_flush_skip_synchronize_mutant_is_caught() {
    let _wd = stress_watchdog("deferred_flush_skip_synchronize_mutant_is_caught");
    let scenario = delete_window_scenario("deferred-unlink-flush-mutant");
    let guard = enable_mutant("reclaim/flush/skip-synchronize");
    let report = explore_schedules_with(make_deferred, &scenario, bounded(2), validate);
    let failure = report
        .failure
        .expect("skipping the flush-path synchronize_rcu must be caught");
    eprintln!("[mutant] deferred flush minimal schedule: {failure}");
    assert_eq!(failure.preemptions, 1);
    let rerun = replay_schedule_with(make_deferred, &scenario, &failure.schedule, validate);
    assert!(rerun.verdict.is_err() || !rerun.outcome.clean());
    drop(guard);
    let fixed = replay_schedule_with(make_deferred, &scenario, &failure.schedule, validate);
    assert!(
        fixed.outcome.clean() && fixed.verdict.is_ok(),
        "the minimal schedule must pass once the flush grace period is restored: {:?}",
        fixed.verdict
    );
}

/// Satellite pinned regression: the minimal inline-delete schedule the
/// mutant sweep discovered, replayed forever against the real code. The
/// mutant leg keeps the pin honest — if instrumentation drift makes the
/// schedule stop exercising the window (stale decisions, or a pass even
/// with the grace period skipped), this fails and the constant must be
/// re-harvested from `inline_delete_skip_synchronize_mutant_is_caught`.
#[test]
fn pinned_inline_delete_schedule_regression() {
    let _wd = stress_watchdog("pinned_inline_delete_schedule_regression");
    let scenario = delete_window_scenario("inline-two-child-delete-pinned");
    let run = replay_schedule_with(
        make_inline,
        &scenario,
        PINNED_INLINE_DELETE_SCHEDULE,
        validate,
    );
    assert!(
        run.outcome.clean() && run.verdict.is_ok(),
        "pinned schedule regressed: {:?} / {:?}",
        run.outcome.failure_reason(),
        run.verdict
    );
    let guard = enable_mutant("citrus/remove/skip-synchronize");
    let mutant = replay_schedule_with(
        make_inline,
        &scenario,
        PINNED_INLINE_DELETE_SCHEDULE,
        validate,
    );
    drop(guard);
    assert!(
        mutant.verdict.is_err() || !mutant.outcome.clean(),
        "pinned schedule no longer exercises the delete window — re-harvest it"
    );
}

/// Satellite pinned regression for the deferred-unlink flush window; same
/// honesty protocol as the inline pin.
#[test]
fn pinned_deferred_flush_schedule_regression() {
    let _wd = stress_watchdog("pinned_deferred_flush_schedule_regression");
    let scenario = delete_window_scenario("deferred-unlink-flush-pinned");
    let run = replay_schedule_with(
        make_deferred,
        &scenario,
        PINNED_DEFERRED_FLUSH_SCHEDULE,
        validate,
    );
    assert!(
        run.outcome.clean() && run.verdict.is_ok(),
        "pinned schedule regressed: {:?} / {:?}",
        run.outcome.failure_reason(),
        run.verdict
    );
    let guard = enable_mutant("reclaim/flush/skip-synchronize");
    let mutant = replay_schedule_with(
        make_deferred,
        &scenario,
        PINNED_DEFERRED_FLUSH_SCHEDULE,
        validate,
    );
    drop(guard);
    assert!(
        mutant.verdict.is_err() || !mutant.outcome.clean(),
        "pinned schedule no longer exercises the flush window — re-harvest it"
    );
}

// ---- Ordered reads: validated traversal windows (DESIGN.md §6i) -------

/// remove(20) takes the two-child path while a full-range scan runs: the
/// weak-BST window where the spliced successor copy and the not-yet
/// unlinked original are both reachable with key 25. The scan must
/// either restart (validation catches the splice) or dedup the adjacent
/// duplicate — never return 20 and 25's states torn across the window.
fn scan_window_scenario(name: &'static str) -> ScheduleScenario {
    ScheduleScenario::new(name)
        .prefill(&[(20, 200), (10, 100), (30, 300), (25, 250)])
        .thread(&[ScenarioOp::Remove(20)])
        .thread(&[ScenarioOp::Scan(0, 100)])
}

#[test]
fn scan_vs_inline_two_child_delete_sweep_is_clean() {
    let _wd = stress_watchdog("scan_vs_inline_two_child_delete_sweep_is_clean");
    let scenario = scan_window_scenario("scan-vs-inline-two-child-delete");
    let report = explore_schedules_with(make_inline, &scenario, bounded(2), validate);
    report.assert_clean(scenario.name);
    if !report.completed {
        return;
    }
    assert!(report.schedules > 1, "sweep must enumerate real schedules");
    for point in [
        "citrus/scan/step",
        "citrus/scan/validate",
        "citrus/remove/before-synchronize",
    ] {
        assert!(
            report.points_hit.contains(point),
            "sweep never reached {point}; hit: {:?}",
            report.points_hit
        );
    }
}

#[test]
fn scan_vs_deferred_flush_sweep_is_clean() {
    let _wd = stress_watchdog("scan_vs_deferred_flush_sweep_is_clean");
    let scenario = scan_window_scenario("scan-vs-deferred-flush");
    let report = explore_schedules_with(make_deferred, &scenario, bounded(2), validate);
    report.assert_clean(scenario.name);
    if !report.completed {
        return;
    }
    for point in ["citrus/scan/step", "citrus/remove/defer-unlink"] {
        assert!(
            report.points_hit.contains(point),
            "sweep never reached {point}; hit: {:?}",
            report.points_hit
        );
    }
}

/// Torn-scan scenario with no grace periods anywhere (leaf remove plus a
/// fresh insert): an unvalidated traversal preempted between visiting 10
/// and descending into 30's subtree collects BOTH the removed 10 and the
/// later-inserted 25 — a set no instant ever held, since the writer
/// removes before inserting.
fn torn_scan_scenario(name: &'static str) -> ScheduleScenario {
    ScheduleScenario::new(name)
        .prefill(&[(20, 200), (10, 100), (30, 300)])
        .thread(&[ScenarioOp::Remove(10), ScenarioOp::Insert(25, 250)])
        .thread(&[ScenarioOp::Scan(0, 100)])
}

/// The scan harness has teeth: with per-edge validation skipped, the
/// explorer must find the torn traversal at a low preemption bound, the
/// reported schedule must replay to the same failure, and the identical
/// schedule must pass once validation is back on.
#[test]
fn scan_skip_validation_mutant_is_caught() {
    let _wd = stress_watchdog("scan_skip_validation_mutant_is_caught");
    let scenario = torn_scan_scenario("torn-scan-mutant");
    let guard = enable_mutant("citrus/scan/skip-validation");
    let report = explore_schedules_with(make_inline, &scenario, bounded(2), validate);
    let failure = report
        .failure
        .expect("skipping scan validation must be caught");
    eprintln!("[mutant] torn-scan minimal schedule: {failure}");
    assert!(
        failure.preemptions <= 2,
        "iterative deepening must find a low-bound witness, got {}",
        failure.preemptions
    );
    assert!(
        failure.reason.contains("non-linearizable"),
        "the witness must be a linearizability violation, got: {}",
        failure.reason
    );
    let rerun = replay_schedule_with(make_inline, &scenario, &failure.schedule, validate);
    assert!(
        rerun.verdict.is_err() || !rerun.outcome.clean(),
        "replaying the failing schedule must reproduce the failure"
    );
    drop(guard);
    let fixed = replay_schedule_with(make_inline, &scenario, &failure.schedule, validate);
    assert!(
        fixed.outcome.clean() && fixed.verdict.is_ok(),
        "the minimal schedule must pass once validation is restored: {:?}",
        fixed.verdict
    );
}

/// The same torn-scan scenario with validation on: every interleaving up
/// to the bound restarts instead of returning a torn result.
#[test]
fn torn_scan_sweep_is_clean_with_validation() {
    let _wd = stress_watchdog("torn_scan_sweep_is_clean_with_validation");
    let scenario = torn_scan_scenario("torn-scan-validated");
    let report = explore_schedules_with(make_inline, &scenario, bounded(2), validate);
    report.assert_clean(scenario.name);
}

// ---- Range-routed forest: partial fan-out windows (DESIGN.md §6j) -----

/// A 2-shard range forest with its splitter at 16: keys below 16 live in
/// shard 0, the rest in shard 1. Built explicitly (not via the
/// `CITRUS_ROUTER` env knob) so these windows are swept in every CI lane.
fn make_range_forest() -> Forest {
    Forest::with_range_router_options(vec![16], ReclaimMode::Leak, false)
}

fn validate_forest(forest: &mut Forest) -> Result<(), String> {
    forest
        .validate_structure()
        .map(|_| ())
        .map_err(|v| format!("forest invariant violated: {v:?}"))
}

/// remove(20) takes the two-child path inside shard 1 (children 18 and
/// 30, successor 25) while a cross-shard scan runs. The scan's partial
/// fan-out enters both shards — 10 lives in shard 0 — and must validate
/// the per-shard traversals jointly: either it restarts on the splice or
/// it returns a set some instant really held, never 20/25 torn across
/// the window.
fn range_forest_scan_scenario(name: &'static str) -> ScheduleScenario {
    ScheduleScenario::new(name)
        .prefill(&[(20, 200), (18, 180), (30, 300), (25, 250), (10, 100)])
        .thread(&[ScenarioOp::Remove(20)])
        .thread(&[ScenarioOp::Scan(0, 100)])
}

#[test]
fn range_forest_scan_window_sweep_is_clean() {
    let _wd = stress_watchdog("range_forest_scan_window_sweep_is_clean");
    let scenario = range_forest_scan_scenario("range-forest-scan-vs-two-child-delete");
    let report = explore_schedules_with(make_range_forest, &scenario, bounded(2), validate_forest);
    report.assert_clean(scenario.name);
    if !report.completed {
        return;
    }
    assert!(report.schedules > 1, "sweep must enumerate real schedules");
    for point in [
        "citrus/scan/step",
        "forest/scan/validate",
        "citrus/remove/before-synchronize",
    ] {
        assert!(
            report.points_hit.contains(point),
            "sweep never reached {point}; hit: {:?}",
            report.points_hit
        );
    }
}

/// Torn-scan scenario inside shard 1 of the range forest (leaf remove of
/// 18 plus a fresh insert of 25 under 30): an unvalidated traversal
/// preempted between the two can collect both — a set no instant held.
fn range_forest_torn_scan_scenario(name: &'static str) -> ScheduleScenario {
    ScheduleScenario::new(name)
        .prefill(&[(20, 200), (18, 180), (30, 300), (10, 100)])
        .thread(&[ScenarioOp::Remove(18), ScenarioOp::Insert(25, 250)])
        .thread(&[ScenarioOp::Scan(0, 100)])
}

/// The partial fan-out's joint validation has teeth too: with validation
/// skipped, the explorer must find the torn cross-shard traversal at a
/// low preemption bound, the reported schedule must replay to the same
/// failure, and the identical schedule must pass once validation is back.
#[test]
fn range_forest_scan_skip_validation_mutant_is_caught() {
    let _wd = stress_watchdog("range_forest_scan_skip_validation_mutant_is_caught");
    let scenario = range_forest_torn_scan_scenario("range-forest-torn-scan-mutant");
    let guard = enable_mutant("citrus/scan/skip-validation");
    let report = explore_schedules_with(make_range_forest, &scenario, bounded(2), validate_forest);
    let failure = report
        .failure
        .expect("skipping the partial fan-out's validation must be caught");
    eprintln!("[mutant] range-forest torn-scan minimal schedule: {failure}");
    assert!(
        failure.preemptions <= 2,
        "iterative deepening must find a low-bound witness, got {}",
        failure.preemptions
    );
    assert!(
        failure.reason.contains("non-linearizable"),
        "the witness must be a linearizability violation, got: {}",
        failure.reason
    );
    let rerun = replay_schedule_with(
        make_range_forest,
        &scenario,
        &failure.schedule,
        validate_forest,
    );
    assert!(
        rerun.verdict.is_err() || !rerun.outcome.clean(),
        "replaying the failing schedule must reproduce the failure"
    );
    drop(guard);
    let fixed = replay_schedule_with(
        make_range_forest,
        &scenario,
        &failure.schedule,
        validate_forest,
    );
    assert!(
        fixed.outcome.clean() && fixed.verdict.is_ok(),
        "the minimal schedule must pass once validation is restored: {:?}",
        fixed.verdict
    );
}

/// The same torn-scan scenario with validation on: every interleaving up
/// to the bound restarts instead of returning a torn result.
#[test]
fn range_forest_torn_scan_sweep_is_clean_with_validation() {
    let _wd = stress_watchdog("range_forest_torn_scan_sweep_is_clean_with_validation");
    let scenario = range_forest_torn_scan_scenario("range-forest-torn-scan-validated");
    let report = explore_schedules_with(make_range_forest, &scenario, bounded(2), validate_forest);
    report.assert_clean(scenario.name);
}

/// Finds one key per shard of a 2-shard forest by probing the shard trees
/// directly (routing is hash-based, so the constants are not obvious).
fn keys_in_distinct_shards() -> (u64, u64) {
    let forest = Forest::with_config(2, 0, ReclaimMode::Leak);
    let mut session = forest.session();
    let mut per_shard: [Option<u64>; 2] = [None, None];
    for k in 0..64 {
        session.insert(k, k);
        for (i, slot) in per_shard.iter_mut().enumerate() {
            if slot.is_none() && forest.shard(i).session().get(&k).is_some() {
                *slot = Some(k);
            }
        }
        if let [Some(a), Some(b)] = per_shard {
            return (a, b);
        }
    }
    panic!("no key pair split across 2 shards in 0..64");
}

/// Cross-shard independence: two threads updating keys routed to
/// different shards share no locks and no RCU domain, so every
/// interleaving must be clean — and the sweep proves it for all of them,
/// not just the ones a stress run happens to sample.
#[test]
fn forest_cross_shard_sweep_is_clean() {
    let _wd = stress_watchdog("forest_cross_shard_sweep_is_clean");
    let (a, b) = keys_in_distinct_shards();
    let scenario = ScheduleScenario::new("forest-cross-shard")
        .prefill(&[(a, 1)])
        .thread(&[ScenarioOp::Remove(a), ScenarioOp::Get(a)])
        .thread(&[ScenarioOp::Insert(b, 2), ScenarioOp::Get(b)]);
    let make = || Forest::with_config(2, 0, ReclaimMode::Leak);
    let report = explore_schedules_with(make, &scenario, bounded(1), |_| Ok(()));
    report.assert_clean(scenario.name);
    if !report.completed {
        return;
    }
    assert!(
        report.points_hit.contains("forest/route/before-shard"),
        "sweep never crossed the shard router; hit: {:?}",
        report.points_hit
    );
    assert_eq!(report.deadlocks, 0);
}

/// The explorer itself honors the wall-clock budget: an absurdly small
/// budget must cut the sweep short and say so, not hang or lie.
#[test]
fn explore_budget_marks_sweep_incomplete() {
    let _wd = stress_watchdog("explore_budget_marks_sweep_incomplete");
    let config = ExploreConfig {
        max_preemptions: 2,
        budget: Some(Duration::from_millis(0)),
        ..ExploreConfig::default()
    };
    let explorer = Explorer::new(config);
    let report = explorer.explore(|plan| citrus_api::testkit::ExploredRun {
        outcome: citrus_api::testkit::run_schedule(plan, vec![Box::new(|| {})]),
        verdict: Ok(()),
    });
    // A zero budget expires before the first run even starts.
    assert!(!report.completed, "zero budget cannot complete a sweep");
}
