//! Concurrency stress tests targeting the algorithm's delicate regions:
//! successor moves racing with searches (the paper's Figure 4 scenario),
//! inserts racing with deletes at the same node (Figure 5), and reader
//! storms during update-heavy churn.

use citrus::{CitrusTree, GlobalLockRcu, ReclaimMode, ScalableRcu};
use citrus_api::testkit::{self, stress_iters, SplitMix64};
use citrus_rcu::RcuFlavor;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// Figure 4 scenario: deletes constantly relocate successors while readers
/// search for exactly those successor keys. A reader must never miss a key
/// that is permanently present.
///
/// Each round builds a fresh five-key block `{base+10, base+5, base+30,
/// base+20, base+40}` (insertion order fixes the local shape: base+10 on
/// top with two children, successor base+20), then deletes `base+10` —
/// forcing a genuine successor relocation of the never-deleted `base+20`.
fn successor_move_vs_search<F: RcuFlavor>(mode: ReclaimMode) {
    let rounds = stress_iters(300);
    let tree: CitrusTree<u64, u64, F> = CitrusTree::with_reclaim(mode);
    let published = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let false_negatives = AtomicU64::new(0);
    let barrier = Barrier::new(3);

    std::thread::scope(|scope| {
        {
            let (tree, stop, barrier, published) = (&tree, &stop, &barrier, &published);
            scope.spawn(move || {
                let mut s = tree.session();
                barrier.wait();
                for r in 0..rounds {
                    let base = r * 100;
                    for k in [10, 5, 30, 20, 40] {
                        s.insert(base + k, base + k + 1);
                    }
                    published.store(r + 1, Ordering::Release);
                    // base+10 has two children; successor base+20 moves.
                    s.remove(&(base + 10));
                    if r % 16 == 0 {
                        std::thread::yield_now();
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        // Two readers hammer the permanent (base+20) keys of completed
        // rounds.
        for t in 0..2u64 {
            let (tree, stop, barrier, published, false_negatives) =
                (&tree, &stop, &barrier, &published, &false_negatives);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xBEAD + t);
                let mut s = tree.session();
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let rounds = published.load(Ordering::Acquire);
                    if rounds == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    let key = rng.below(rounds) * 100 + 20;
                    match s.get(&key) {
                        Some(v) => assert_eq!(v, key + 1, "wrong value for key {key}"),
                        None => {
                            // Permanent keys are never removed: this is the
                            // Figure 4 false negative the RCU barrier must
                            // prevent.
                            false_negatives.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        false_negatives.load(Ordering::Relaxed),
        0,
        "a search missed a permanently present key (Figure 4 false negative)"
    );
    if tree.deferred_free() {
        // Deferred mode amortizes: one shared grace period covers a whole
        // batch of unlinks, so count executed unlink records instead.
        tree.flush_deferred();
        let deferred = tree.deferred().expect("deferred domain present");
        assert!(
            deferred.executed() >= rounds,
            "every round must have deferred a two-child unlink (got {} executed)",
            deferred.executed()
        );
    } else {
        assert!(
            tree.rcu().grace_periods() >= rounds,
            "every round must have executed a two-child delete (got {} grace periods)",
            tree.rcu().grace_periods()
        );
    }
    let mut tree = tree;
    tree.validate_structure().expect("structure after churn");
}

#[test]
fn successor_move_vs_search_scalable_epoch() {
    let _watchdog = testkit::stress_watchdog("successor_move_vs_search_scalable_epoch");
    successor_move_vs_search::<ScalableRcu>(ReclaimMode::Epoch);
}

#[test]
fn successor_move_vs_search_scalable_leak() {
    let _watchdog = testkit::stress_watchdog("successor_move_vs_search_scalable_leak");
    successor_move_vs_search::<ScalableRcu>(ReclaimMode::Leak);
}

#[test]
fn successor_move_vs_search_global_lock() {
    let _watchdog = testkit::stress_watchdog("successor_move_vs_search_global_lock");
    successor_move_vs_search::<GlobalLockRcu>(ReclaimMode::Epoch);
}

/// Figure 5 scenario: inserts race with deletes of the would-be parent.
/// Each key is inserted by exactly one thread; the insert must be visible
/// afterwards even if the parent was concurrently deleted (the tag +
/// marked validation must force a retry rather than losing the insert).
fn insert_vs_parent_delete<F: RcuFlavor>(mode: ReclaimMode) {
    let rounds = stress_iters(300);
    let tree: CitrusTree<u64, u64, F> = CitrusTree::with_reclaim(mode);
    let barrier = Barrier::new(2);

    // Thread A repeatedly inserts/removes "parents" p; thread B inserts
    // children that would land under p, each exactly once, and verifies.
    std::thread::scope(|scope| {
        let (tree_a, barrier_a) = (&tree, &barrier);
        scope.spawn(move || {
            let mut s = tree_a.session();
            barrier_a.wait();
            for r in 0..rounds {
                let parent = r * 10 + 5;
                s.insert(parent, parent);
                // Give B a chance to pick the parent as `prev`, then
                // delete it out from under B's pending insert.
                s.remove(&parent);
            }
        });
        let (tree_b, barrier_b) = (&tree, &barrier);
        scope.spawn(move || {
            let mut s = tree_b.session();
            barrier_b.wait();
            for r in 0..rounds {
                let child = r * 10 + 6; // would hang under parent r*10+5
                assert!(s.insert(child, child), "insert({child}) lost");
                assert_eq!(s.get(&child), Some(child), "insert({child}) vanished");
            }
        });
    });

    let mut s = tree.session();
    for r in 0..rounds {
        let child = r * 10 + 6;
        assert_eq!(s.get(&child), Some(child), "key {child} missing at the end");
    }
    drop(s);
    let mut tree = tree;
    let stats = tree.validate_structure().unwrap();
    assert!(stats.len >= rounds as usize);
}

#[test]
fn insert_vs_parent_delete_scalable() {
    let _watchdog = testkit::stress_watchdog("insert_vs_parent_delete_scalable");
    insert_vs_parent_delete::<ScalableRcu>(ReclaimMode::Epoch);
}

#[test]
fn insert_vs_parent_delete_global_lock() {
    let _watchdog = testkit::stress_watchdog("insert_vs_parent_delete_global_lock");
    insert_vs_parent_delete::<GlobalLockRcu>(ReclaimMode::Leak);
}

/// Full-mix churn with periodic quiescent audits: workers run a random
/// 50/25/25 mix in waves; between waves (all workers parked at a barrier)
/// one thread audits structure via a fresh exclusive handle.
#[test]
fn waves_of_churn_with_structural_audits() {
    let _watchdog = testkit::stress_watchdog("waves_of_churn_with_structural_audits");
    const THREADS: usize = 8;
    const WAVES: usize = 5;
    const RANGE: u64 = 512;
    let ops_per_wave = stress_iters(2_000) as usize;

    let mut tree: CitrusTree<u64, u64> = CitrusTree::with_reclaim(ReclaimMode::Epoch);
    for wave in 0..WAVES {
        {
            let tree = &tree;
            let barrier = Barrier::new(THREADS);
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let mut rng = SplitMix64::new((wave as u64) << 32 | t as u64 | 0xA5A5_0000);
                        let mut s = tree.session();
                        barrier.wait();
                        for _ in 0..ops_per_wave {
                            let k = rng.below(RANGE);
                            match rng.below(4) {
                                0 => {
                                    s.insert(k, k * 7 + 1);
                                }
                                1 => {
                                    s.remove(&k);
                                }
                                _ => {
                                    if let Some(v) = s.get(&k) {
                                        assert_eq!(v, k * 7 + 1);
                                    }
                                }
                            }
                        }
                    });
                }
            });
        }
        // Quiescent: audit.
        let stats = tree.validate_structure().unwrap_or_else(|e| {
            panic!("wave {wave}: structural invariant violated: {e}");
        });
        assert!(stats.len <= RANGE as usize);
    }
}

/// Update-only storm (100% updates): maximal synchronize_rcu pressure with
/// two-child deletes; verifies no deadlock and final consistency.
#[test]
fn update_only_storm() {
    let _watchdog = testkit::stress_watchdog("update_only_storm");
    const THREADS: usize = 8;
    const RANGE: u64 = 128;
    let ops = stress_iters(3_000) as usize;

    let tree: CitrusTree<u64, u64> = CitrusTree::with_reclaim(ReclaimMode::Epoch);
    {
        let mut s = tree.session();
        for k in 0..RANGE {
            s.insert(k, k);
        }
    }
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let (tree, barrier) = (&tree, &barrier);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xD00D ^ t);
                let mut s = tree.session();
                barrier.wait();
                for _ in 0..ops {
                    let k = rng.below(RANGE);
                    if rng.below(2) == 0 {
                        s.insert(k, k);
                    } else {
                        s.remove(&k);
                    }
                }
            });
        }
    });
    let mut tree = tree;
    tree.validate_structure()
        .expect("structure after update storm");
}

/// Sessions created and destroyed concurrently with operations (slot reuse
/// under churn) must not corrupt RCU or reclamation state.
#[test]
fn session_churn_during_operations() {
    let _watchdog = testkit::stress_watchdog("session_churn_during_operations");
    const RANGE: u64 = 64;
    let batches = stress_iters(150);
    let tree: CitrusTree<u64, u64> = CitrusTree::new();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Steady worker.
        let (tree_w, stop_w) = (&tree, &stop);
        scope.spawn(move || {
            let mut rng = SplitMix64::new(1);
            let mut s = tree_w.session();
            while !stop_w.load(Ordering::Relaxed) {
                let k = rng.below(RANGE);
                s.insert(k, k);
                s.remove(&k);
            }
        });
        // Churning sessions: a fresh session per small batch.
        for t in 0..3u64 {
            let (tree_c, stop_c) = (&tree, &stop);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(100 + t);
                for _ in 0..batches {
                    let mut s = tree_c.session();
                    for _ in 0..50 {
                        let k = rng.below(RANGE);
                        match rng.below(3) {
                            0 => {
                                s.insert(k, k);
                            }
                            1 => {
                                s.remove(&k);
                            }
                            _ => {
                                let _ = s.get(&k);
                            }
                        }
                    }
                }
                if t == 0 {
                    stop_c.store(true, Ordering::Relaxed);
                }
            });
        }
    });
    let mut tree = tree;
    tree.validate_structure()
        .expect("structure after session churn");
}
