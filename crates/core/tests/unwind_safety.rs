//! Panic-safety of the Citrus tree: a panic from *user code* (a `Clone` or
//! `Ord` impl) inside a read-side critical section or while holding node
//! locks must not wedge later `synchronize_rcu` callers, leave node locks
//! held, or corrupt the structure. These tests run with default features —
//! unwind safety is an RAII property, not a chaos-mode one.

use citrus::CitrusTree;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A value whose `Clone` panics while armed. The two-child delete clones
/// the successor's value *while holding up to five node locks*.
#[derive(Debug)]
struct Bomb {
    id: u64,
    armed: Arc<AtomicBool>,
}

impl Bomb {
    fn new(id: u64, armed: &Arc<AtomicBool>) -> Self {
        Self {
            id,
            armed: Arc::clone(armed),
        }
    }
}

impl Clone for Bomb {
    fn clone(&self) -> Self {
        assert!(
            !self.armed.load(Ordering::Relaxed),
            "bomb clone panicked (id {})",
            self.id
        );
        Self {
            id: self.id,
            armed: Arc::clone(&self.armed),
        }
    }
}

/// A key whose `Ord` panics while armed: detonates inside the wait-free
/// search, i.e. inside the RCU read-side critical section.
#[derive(Debug, Clone)]
struct PanickyKey {
    id: u64,
    armed: Arc<AtomicBool>,
}

impl PartialEq for PanickyKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for PanickyKey {}

impl PanickyKey {
    fn new(id: u64, armed: &Arc<AtomicBool>) -> Self {
        Self {
            id,
            armed: Arc::clone(armed),
        }
    }
}

impl PartialOrd for PanickyKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PanickyKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        assert!(
            !self.armed.load(Ordering::Relaxed),
            "key comparison panicked (id {})",
            self.id
        );
        self.id.cmp(&other.id)
    }
}

/// A panic out of `Clone` during a two-child delete — while `prev`,
/// `curr`, `prev_succ`, and `succ` are all locked — must release every
/// lock: the *same* delete retried afterwards must succeed, not deadlock.
#[test]
fn panic_under_node_locks_releases_them() {
    let armed = Arc::new(AtomicBool::new(false));
    let mut tree: CitrusTree<u64, Bomb> = CitrusTree::new();
    {
        let mut s = tree.session();
        for key in [50u64, 25, 75, 60, 85] {
            assert!(s.insert(key, Bomb::new(key, &armed)));
        }

        // Key 50 has two children; its successor is 60, whose value the
        // delete clones under the full lock set.
        armed.store(true, Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| s.remove(&50)));
        let err = result.expect_err("the armed bomb must panic the remove");
        let msg = err
            .downcast_ref::<String>()
            .expect("assert! produces a String payload");
        assert!(
            msg.contains("bomb clone panicked"),
            "unexpected panic: {msg}"
        );
        armed.store(false, Ordering::Relaxed);

        // All five locks must have been released: the retried delete takes
        // them again (a held lock would spin forever, tripping the CI
        // timeout instead of passing silently).
        assert!(s.remove(&50), "retried two-child delete must succeed");
        assert!(s.contains(&60), "successor must have survived the panic");
        assert!(!s.contains(&50));

        // Another two-child delete exercises synchronize_rcu after the
        // recovery — the grace-period machinery must be intact too.
        assert!(s.insert(70, Bomb::new(70, &armed)));
        assert!(s.remove(&75), "delete of a two-child node must complete");
        // Two two-child deletes: inline mode synchronizes each, deferred
        // mode enqueues each (CITRUS_DEFERRED_FREE picks the mode).
        assert_eq!(
            s.stats().synchronize_calls() + s.stats().deferred_unlinks(),
            2
        );
    }
    let stats = tree
        .validate_structure()
        .expect("tree must satisfy all structural invariants after the panic");
    assert_eq!(stats.len, 4); // 25, 60, 70, 85
}

/// A panic inside the RCU read-side critical section (from a user `Ord`)
/// must exit the read section during unwinding: a later `synchronize_rcu`
/// — here via a two-child delete — must not wait on the dead section.
#[test]
fn panic_inside_read_section_does_not_block_synchronize() {
    let armed = Arc::new(AtomicBool::new(false));
    let mut tree: CitrusTree<PanickyKey, u64> = CitrusTree::new();
    {
        let mut s = tree.session();
        for id in [50u64, 25, 75, 60, 85] {
            assert!(s.insert(PanickyKey::new(id, &armed), id));
        }

        // Caught in-thread: the guard must unwind out of the section.
        armed.store(true, Ordering::Relaxed);
        let probe = PanickyKey::new(60, &armed);
        catch_unwind(AssertUnwindSafe(|| s.get(&probe)))
            .expect_err("the armed key must panic the search");
        armed.store(false, Ordering::Relaxed);

        // Synchronize runs on this same session's RCU handle; a leaked
        // read section on it would self-deadlock (debug) or wedge.
        assert!(s.remove(&PanickyKey::new(50, &armed)));
        assert_eq!(
            s.stats().synchronize_calls() + s.stats().deferred_unlinks(),
            1
        );
    }

    // Uncaught in a worker thread: the thread dies mid-read-section; its
    // unwound guard + session must leave the domain able to synchronize.
    {
        let armed = &armed;
        let tree_ref = &tree;
        std::thread::scope(|scope| {
            let worker = scope.spawn(move || {
                let mut s = tree_ref.session();
                armed.store(true, Ordering::Relaxed);
                let probe = PanickyKey::new(25, armed);
                s.get(&probe); // panics; nothing catches it in this thread
            });
            assert!(
                worker.join().is_err(),
                "the worker must have died from the key panic"
            );
            armed.store(false, Ordering::Relaxed);
            let mut s = tree_ref.session();
            // Any delete completing (and the read below) proves updaters
            // and readers both outlive the dead thread's read section.
            assert!(s.remove(&PanickyKey::new(60, armed)));
            assert!(s.contains(&PanickyKey::new(85, armed)));
        });
    }

    tree.validate_structure()
        .expect("tree must satisfy all structural invariants after both panics");
}
