//! Tests pinned to specific lines of the paper's pseudocode: tag
//! behavior (`incrementTag`, Lemma 3), validation-retry accounting, and
//! the exact retire/synchronize pattern of `delete`.

use citrus::{CitrusTree, RcuFlavor, ReclaimMode, ScalableRcu};
use citrus_api::testkit::SplitMix64;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

type Tree = CitrusTree<u64, u64, ScalableRcu>;

/// A tree pinned to the paper's **inline** `synchronize_rcu` (line 74),
/// regardless of the `CITRUS_DEFERRED_FREE` environment: the tests below
/// assert line-74 accounting, which deferred mode deliberately changes
/// (covered by `deferred_reclaim.rs` instead).
fn inline_tree() -> Tree {
    Tree::with_options(ScalableRcu::new(), ReclaimMode::Epoch, false)
}

/// One synchronize_rcu per two-child delete; none for leaf/one-child
/// deletes or inserts (paper: line 74 is the only synchronize call).
#[test]
fn synchronize_only_on_two_child_deletes() {
    let tree = inline_tree();
    let mut s = tree.session();

    for k in [50, 25, 75, 12, 37, 62, 87] {
        s.insert(k, k);
    }
    assert_eq!(
        s.stats().synchronize_calls(),
        0,
        "inserts never synchronize"
    );

    assert!(s.remove(&12)); // leaf
    assert_eq!(
        s.stats().synchronize_calls(),
        0,
        "leaf delete must not synchronize"
    );

    assert!(s.remove(&37)); // 25 still has child 37? no: removing 37 itself (leaf)
    assert_eq!(s.stats().synchronize_calls(), 0);

    assert!(s.remove(&25)); // one child left (both grandchildren gone)
    assert_eq!(
        s.stats().synchronize_calls(),
        0,
        "one-child delete must not synchronize"
    );

    assert!(s.remove(&75)); // two children (62, 87) → successor move
    assert_eq!(
        s.stats().synchronize_calls(),
        1,
        "two-child delete synchronizes once"
    );
}

/// Grace-period count on the tree's RCU domain equals the number of
/// successful two-child deletes across all sessions.
#[test]
fn grace_periods_track_successor_moves() {
    let tree = inline_tree();
    let mut moves = 0;
    {
        let mut s = tree.session();
        let mut rng = SplitMix64::new(0x6A7);
        let mut present = std::collections::BTreeSet::new();
        for k in 0..256u64 {
            s.insert(k, k);
            present.insert(k);
        }
        for _ in 0..600 {
            let k = rng.below(256);
            if present.remove(&k) {
                let before = s.stats().synchronize_calls();
                assert!(s.remove(&k));
                if s.stats().synchronize_calls() > before {
                    moves += 1;
                }
            } else {
                s.insert(k, k);
                present.insert(k);
            }
        }
    }
    assert!(moves > 0, "workload must hit two-child deletes");
    assert_eq!(tree.rcu().grace_periods(), moves);
}

/// Validation failures are observable through the retry counters when two
/// updaters fight over the same keys (the paper's restart path, lines 32
/// and 84).
#[test]
fn contention_produces_validation_retries() {
    let tree = Tree::with_reclaim(ReclaimMode::Epoch);
    let total_retries = AtomicU64::new(0);
    let barrier = Barrier::new(4);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let (tree, barrier, total_retries) = (&tree, &barrier, &total_retries);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(t);
                let mut s = tree.session();
                barrier.wait();
                // Tiny key range → constant same-node contention.
                for _ in 0..20_000 {
                    let k = rng.below(8);
                    if rng.below(2) == 0 {
                        s.insert(k, k);
                    } else {
                        s.remove(&k);
                    }
                }
                total_retries.fetch_add(
                    s.stats().insert_retries() + s.stats().remove_retries(),
                    Ordering::Relaxed,
                );
            });
        }
    });
    assert!(
        total_retries.load(Ordering::Relaxed) > 0,
        "4 threads × 20k updates on 8 keys must trip validation at least once"
    );
    let mut tree = tree;
    tree.validate_structure().unwrap();
}

/// The ABA scenario Lemma 3's tags exist for: between a search and its
/// validation, a child pointer goes null → non-null → null again. Without
/// tags the stale insert would be wrongly validated; with tags the insert
/// must retry (observable: no lost updates, structure intact).
#[test]
fn tag_aba_hammer() {
    let tree = Tree::new();
    {
        let mut s = tree.session();
        s.insert(100, 100); // anchor whose child slots flap
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Flapper: makes 100's right child slot cycle null→50?no, use 150.
        let (t1, stop1) = (&tree, &stop);
        scope.spawn(move || {
            let mut s = t1.session();
            for _ in 0..30_000 {
                s.insert(150, 150);
                s.remove(&150);
            }
            stop1.store(true, Ordering::Relaxed);
        });
        // Competitor: inserts/removes a key that lands in the same slot
        // region (between 100 and 150 both hang right of 100 depending on
        // shape), maximizing tag-validated inserts.
        let (t2, stop2) = (&tree, &stop);
        scope.spawn(move || {
            let mut s = t2.session();
            while !stop2.load(Ordering::Relaxed) {
                if s.insert(125, 125) {
                    assert_eq!(s.get(&125), Some(125));
                    assert!(s.remove(&125));
                }
            }
        });
    });
    let mut tree = tree;
    tree.validate_structure().unwrap();
    let mut s = tree.session();
    assert_eq!(s.get(&100), Some(100), "anchor must survive");
}

/// Degenerate shapes: ascending and descending insertion build chains
/// (the tree is unbalanced by design); operations stay correct at depth.
#[test]
fn degenerate_chains_work() {
    for descending in [false, true] {
        let tree = Tree::new();
        let mut s = tree.session();
        let keys: Vec<u64> = if descending {
            (0..2_000).rev().collect()
        } else {
            (0..2_000).collect()
        };
        for &k in &keys {
            assert!(s.insert(k, k));
        }
        assert_eq!(s.get(&0), Some(0));
        assert_eq!(s.get(&1_999), Some(1_999));
        // Delete from the middle of the chain (one-child bypasses).
        for k in 500..1_500u64 {
            assert!(s.remove(&k));
        }
        drop(s);
        let mut tree = tree;
        let stats = tree.validate_structure().unwrap();
        assert_eq!(stats.len, 1_000);
        assert!(stats.height >= 1_000, "chain shape expected");
    }
}

/// Session statistics are independent across sessions of the same tree.
#[test]
fn session_stats_are_per_session() {
    let tree = inline_tree();
    let mut a = tree.session();
    let mut b = tree.session();
    for k in [10, 5, 20, 15, 25] {
        a.insert(k, k);
    }
    a.remove(&10); // two children → one synchronize in a
    assert_eq!(a.stats().synchronize_calls(), 1);
    assert_eq!(b.stats().synchronize_calls(), 0);
    b.remove(&20);
    assert!(b.stats().synchronize_calls() <= 1);
}
