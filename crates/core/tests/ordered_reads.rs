//! Sequential contracts of the validated ordered reads (`range_scan`,
//! `successor`, `predecessor`) and the non-cloning `contains` fast path.
//!
//! Concurrent linearizability of the same operations is covered by the
//! top-level `linearizability.rs` scan battery and the explore-window
//! suite; this file pins the single-threaded semantics and accounting.

use citrus::{CitrusTree, GlobalLockRcu, ReclaimMode, ScalableRcu};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

type Tree = CitrusTree<u64, u64, GlobalLockRcu>;

fn populated() -> Tree {
    let tree = Tree::new();
    let mut s = tree.session();
    for k in [50u64, 25, 75, 12, 37, 62, 87] {
        s.insert(k, k * 10);
    }
    drop(s);
    tree
}

#[test]
fn range_scan_is_sorted_and_inclusive_on_both_ends() {
    let tree = populated();
    let mut s = tree.session();
    assert_eq!(
        s.range_scan(&25, &62),
        vec![(25, 250), (37, 370), (50, 500), (62, 620)]
    );
    // Bounds that fall between keys still clip correctly.
    assert_eq!(s.range_scan(&26, &61), vec![(37, 370), (50, 500)]);
    // Full range returns every pair in key order.
    let all = s.range_scan(&0, &u64::MAX);
    assert_eq!(all.len(), 7);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn degenerate_ranges_are_empty_not_errors() {
    let tree = populated();
    let mut s = tree.session();
    assert!(s.range_scan(&63, &74).is_empty(), "gap between keys");
    assert!(s.range_scan(&90, &10).is_empty(), "inverted bounds");
    assert_eq!(s.range_scan(&50, &50), vec![(50, 500)], "point range");

    let empty: Tree = Tree::new();
    let mut e = empty.session();
    assert!(e.range_scan(&0, &u64::MAX).is_empty(), "empty tree");
    assert_eq!(e.successor(&0), None);
    assert_eq!(e.predecessor(&u64::MAX), None);
}

#[test]
fn successor_and_predecessor_are_strict_and_sentinel_safe() {
    let tree = populated();
    let mut s = tree.session();
    // Strictly greater / strictly less: the probe key itself never counts.
    assert_eq!(s.successor(&50), Some((62, 620)));
    assert_eq!(s.predecessor(&50), Some((37, 370)));
    // Probes between keys.
    assert_eq!(s.successor(&40), Some((50, 500)));
    assert_eq!(s.predecessor(&40), Some((37, 370)));
    // Probes beyond the extremes walk into the sentinels and come back
    // empty rather than leaking the ±infinity keys.
    assert_eq!(s.successor(&87), None);
    assert_eq!(s.successor(&u64::MAX), None);
    assert_eq!(s.predecessor(&12), None);
    assert_eq!(s.predecessor(&0), None);
}

#[test]
fn sequential_scans_never_restart_and_are_counted() {
    let tree: CitrusTree<u64, u64, ScalableRcu> =
        CitrusTree::with_options(ScalableRcu::new(), ReclaimMode::Epoch, false);
    let mut s = tree.session();
    for k in 0..64u64 {
        s.insert(k, k);
    }
    for lo in (0..64).step_by(8) {
        assert_eq!(s.range_scan(&lo, &(lo + 7)).len(), 8);
    }
    s.successor(&10);
    s.predecessor(&10);
    assert_eq!(
        s.stats().scan_restarts(),
        0,
        "an uncontended scan must validate first try"
    );
    drop(s);
    #[cfg(feature = "stats")]
    {
        assert_eq!(
            tree.metrics().scan_ops(),
            10,
            "8 scans + successor + predecessor"
        );
        assert_eq!(tree.metrics().scan_restarts(), 0);
    }
}

/// A value whose clones are observable: `contains` must answer through
/// the non-cloning search path, while `get` pays exactly one clone.
#[derive(Debug)]
struct CloneCounter(Arc<AtomicUsize>);

impl Clone for CloneCounter {
    fn clone(&self) -> Self {
        self.0.fetch_add(1, Ordering::Relaxed);
        CloneCounter(Arc::clone(&self.0))
    }
}

#[test]
fn contains_never_clones_the_value() {
    let clones = Arc::new(AtomicUsize::new(0));
    let tree: CitrusTree<u64, CloneCounter, GlobalLockRcu> = CitrusTree::new();
    let mut s = tree.session();
    s.insert(7, CloneCounter(Arc::clone(&clones)));
    let baseline = clones.load(Ordering::Relaxed);

    assert!(s.contains(&7));
    assert!(!s.contains(&8));
    assert_eq!(
        clones.load(Ordering::Relaxed),
        baseline,
        "contains must not clone the value"
    );

    assert!(s.get(&7).is_some());
    assert_eq!(
        clones.load(Ordering::Relaxed),
        baseline + 1,
        "get clones the value exactly once"
    );
}
