//! Property-based tests: arbitrary operation sequences against a
//! `BTreeMap` model, for both RCU flavors and both reclamation modes.

use citrus::{CitrusTree, GlobalLockRcu, ReclaimMode, ScalableRcu};
use citrus_rcu::RcuFlavor;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One dictionary operation.
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u16),
    Remove(u8),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Remove),
        any::<u8>().prop_map(Op::Get),
    ]
}

/// Applies `ops` to a fresh tree and to a model, asserting every return
/// value matches, then audits the final state and structure.
fn run_against_model<F: RcuFlavor>(mode: ReclaimMode, ops: &[Op]) -> Result<(), TestCaseError> {
    let tree: CitrusTree<u8, u16, F> = CitrusTree::with_reclaim(mode);
    let mut model: BTreeMap<u8, u16> = BTreeMap::new();
    {
        let mut s = tree.session();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(k, v) => {
                    let expected = !model.contains_key(&k);
                    if expected {
                        model.insert(k, v);
                    }
                    prop_assert_eq!(s.insert(k, v), expected, "op {}: insert({})", i, k);
                }
                Op::Remove(k) => {
                    let expected = model.remove(&k).is_some();
                    prop_assert_eq!(s.remove(&k), expected, "op {}: remove({})", i, k);
                }
                Op::Get(k) => {
                    let expected = model.get(&k).copied();
                    prop_assert_eq!(s.get(&k), expected, "op {}: get({})", i, k);
                }
            }
        }
    }
    let mut tree = tree;
    let stats = tree.validate_structure().expect("structure invariants");
    prop_assert_eq!(stats.len, model.len());
    let contents = tree.to_vec_quiescent();
    let expected: Vec<(u8, u16)> = model.into_iter().collect();
    prop_assert_eq!(contents, expected);
    Ok(())
}

// Small key space (u8) maximizes collisions, duplicate inserts, and
// two-child deletions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_scalable_epoch(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model::<ScalableRcu>(ReclaimMode::Epoch, &ops)?;
    }

    #[test]
    fn model_scalable_leak(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model::<ScalableRcu>(ReclaimMode::Leak, &ops)?;
    }

    #[test]
    fn model_global_lock_epoch(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model::<GlobalLockRcu>(ReclaimMode::Epoch, &ops)?;
    }

    #[test]
    fn insert_all_then_remove_all(mut keys in prop::collection::btree_set(any::<u8>(), 1..=64)) {
        let tree: CitrusTree<u8, u16> = CitrusTree::new();
        let mut s = tree.session();
        for &k in &keys {
            prop_assert!(s.insert(k, u16::from(k)));
        }
        // Remove in a rotated order so interior nodes go first sometimes.
        let order: Vec<u8> = keys.iter().copied().collect();
        let pivot = order.len() / 2;
        for &k in order[pivot..].iter().chain(&order[..pivot]) {
            prop_assert!(s.remove(&k), "remove({k}) of present key failed");
            prop_assert!(!s.contains(&k));
            keys.remove(&k);
        }
        drop(s);
        let mut tree = tree;
        prop_assert!(tree.is_empty_quiescent());
        tree.validate_structure().unwrap();
    }

    #[test]
    fn values_never_cross_keys(ops in prop::collection::vec(op_strategy(), 1..300)) {
        // Value integrity: a get(k) may only ever return a value that was
        // inserted under k.
        let tree: CitrusTree<u8, u16> = CitrusTree::new();
        let mut inserted: BTreeMap<u8, Vec<u16>> = BTreeMap::new();
        let mut s = tree.session();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    if s.insert(k, v) {
                        inserted.entry(k).or_default().push(v);
                    }
                }
                Op::Remove(k) => {
                    s.remove(&k);
                }
                Op::Get(k) => {
                    if let Some(v) = s.get(&k) {
                        prop_assert!(
                            inserted.get(&k).is_some_and(|vs| vs.contains(&v)),
                            "get({k}) returned {v}, never inserted under that key"
                        );
                    }
                }
            }
        }
    }
}
