//! Chaos-mode tests for the Citrus tree (compiled only with the `chaos`
//! cargo feature): replay determinism, forced validation restarts, and
//! correctness under schedule perturbation.
#![cfg(feature = "chaos")]

use citrus::{CitrusTree, ReclaimMode};
use citrus_chaos::{self as chaos, ChaosPlan};

/// One deterministic single-threaded workload, traced.
fn traced_workload(seed: u64) -> Vec<chaos::TraceEntry> {
    let _plan = chaos::install(ChaosPlan::from_seed(seed).traced(true));
    // Pin the decision stream so the trace does not depend on what ran on
    // this thread earlier in the test binary.
    chaos::set_thread_stream(0);
    let tree: CitrusTree<u64, u64> = CitrusTree::new();
    let mut s = tree.session();
    for i in 0..200u64 {
        s.insert(i % 64, i);
        s.get(&(i % 32));
        s.remove(&(i % 48));
    }
    chaos::take_trace()
}

/// The acceptance criterion: the same schedule seed yields the identical
/// failpoint firing sequence (names and actions).
#[test]
fn same_seed_fires_identically() {
    let a = traced_workload(0xC17_0001);
    let b = traced_workload(0xC17_0001);
    assert!(!a.is_empty(), "the workload must cross failpoints");
    assert_eq!(a, b, "same seed must replay the same firing sequence");
    // Sanity: the trace reaches points in multiple components.
    assert!(a.iter().any(|e| e.point.starts_with("citrus/")));

    let c = traced_workload(0xC17_0002);
    assert_ne!(a, c, "a different seed must pick different actions");
}

/// Forced restarts at the validation failpoints must surface as retries in
/// session stats — proof the restart path actually runs — while leaving
/// results correct.
#[test]
fn forced_restarts_exercise_the_retry_path() {
    let _plan = chaos::install(ChaosPlan::from_seed(0xFA11).fails(400));
    let tree: CitrusTree<u64, u64> = CitrusTree::new();
    let mut s = tree.session();
    for i in 0..300u64 {
        assert!(s.insert(i, i * 2 + 1));
    }
    for i in 0..300u64 {
        assert_eq!(s.get(&i), Some(i * 2 + 1));
        assert!(s.remove(&i));
    }
    let stats = s.stats();
    assert!(
        stats.insert_retries() > 0,
        "a 40% forced-restart rate must produce insert retries"
    );
    assert!(
        stats.remove_retries() > 0,
        "a 40% forced-restart rate must produce remove retries"
    );
}

/// Concurrent workload under an aggressive plan: the tree must stay a
/// valid BST and pass its structural invariants afterwards.
#[test]
fn tree_survives_concurrent_chaos() {
    let _plan = chaos::install(
        ChaosPlan::from_seed(0x5EED_CAFE)
            .yields(300)
            .spins(300, 128)
            .fails(100),
    );
    for mode in [ReclaimMode::Leak, ReclaimMode::Epoch] {
        let tree: CitrusTree<u64, u64> = CitrusTree::with_reclaim(mode);
        citrus_api::testkit::check_lost_updates(&tree, 4, 64);
        let mut tree = tree;
        let stats = tree
            .validate_structure()
            .expect("tree must satisfy its invariants after chaos");
        assert_eq!(stats.len, 0, "check_lost_updates removes all its keys");
    }
}
