//! Deferred-free mode (`CITRUS_DEFERRED_FREE` / `with_options(.., true)`):
//! two-child deletes enqueue their unlink on the tree's `call_rcu` domain
//! instead of synchronizing inline. These tests pin the mode explicitly
//! (they never read the environment) and cover the correctness corners
//! the mode introduces: the pending-unlink window, shutdown with loaded
//! queues, per-shard independence in the forest, and chaos-perturbed
//! retire-while-synchronize interleavings.

use citrus::{CitrusForest, CitrusTree, ReclaimMode, ScalableRcu};
use citrus_api::testkit;
use citrus_rcu::{RcuFlavor, RcuHandle};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

type Tree = CitrusTree<u64, u64, ScalableRcu>;

fn deferred_tree(mode: ReclaimMode) -> Tree {
    Tree::with_options(ScalableRcu::new(), mode, true)
}

/// The mode switch itself: a two-child delete in deferred mode enqueues
/// one unlink record and pays no inline grace period; the tree answers
/// correctly both before and after the batch runs.
#[test]
fn two_child_delete_defers_instead_of_synchronizing() {
    let mut tree = deferred_tree(ReclaimMode::Epoch);
    {
        let mut s = tree.session();
        for k in [50u64, 25, 75, 60, 85] {
            s.insert(k, k);
        }
        assert!(s.remove(&50), "two-child delete of the root");
        assert_eq!(s.stats().deferred_unlinks(), 1);
        assert_eq!(
            s.stats().synchronize_calls(),
            0,
            "deferred mode must not synchronize inline"
        );
        // The unlink is still pending: the logical contents must already
        // be post-delete (the successor copy answers for 60).
        assert_eq!(s.get(&50), None);
        assert_eq!(s.get(&60), Some(60));
        assert_eq!(s.get(&85), Some(85));

        tree.flush_deferred();
        let deferred = tree.deferred().expect("deferred mode has a domain");
        assert_eq!(deferred.executed(), 1, "the unlink record ran");
        assert_eq!(s.get(&60), Some(60), "successor survives the unlink");
    }
    let stats = tree.validate_structure().expect("valid after the unlink");
    assert_eq!(stats.len, 4);
}

/// Quiescent operations must not observe the pending window: the retired
/// successor original is still reachable (marked, locked, a duplicate of
/// its copy) until the batch runs, and `len`/`to_vec`/`validate` flush
/// first.
#[test]
fn quiescent_ops_do_not_observe_pending_duplicates() {
    let mut tree = deferred_tree(ReclaimMode::Epoch);
    {
        let mut s = tree.session();
        for k in [50u64, 25, 75, 60, 85] {
            s.insert(k, k);
        }
        assert!(s.remove(&50));
        assert_eq!(s.stats().deferred_unlinks(), 1);
        // No flush here: the quiescent ops below must do it themselves.
    }
    assert_eq!(tree.len_quiescent(), 4);
    let contents = tree.to_vec_quiescent();
    assert_eq!(
        contents,
        vec![(25, 25), (60, 60), (75, 75), (85, 85)],
        "no duplicate successor, no lingering key 50"
    );
    tree.validate_structure().expect("valid while flushing");
}

/// A value that counts constructions (insert + the successor clone of a
/// two-child delete) and drops, so a leak (drops < created) and a double
/// free (drops > created) are both visible after the tree dies.
#[derive(Debug)]
struct Counted {
    created: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl Counted {
    fn new(created: &Arc<AtomicU64>, dropped: &Arc<AtomicU64>) -> Self {
        created.fetch_add(1, Ordering::SeqCst);
        Self {
            created: Arc::clone(created),
            dropped: Arc::clone(dropped),
        }
    }
}

impl Clone for Counted {
    fn clone(&self) -> Self {
        self.created.fetch_add(1, Ordering::SeqCst);
        Self {
            created: Arc::clone(&self.created),
            dropped: Arc::clone(&self.dropped),
        }
    }
}

impl Drop for Counted {
    fn drop(&mut self) {
        self.dropped.fetch_add(1, Ordering::SeqCst);
    }
}

/// Shutdown lifecycle: dropping a tree with *unflushed* unlink records
/// must run them (joining the worker, then draining) and free every
/// value exactly once — in both reclamation modes.
#[test]
fn drop_with_pending_unlinks_leaks_nothing() {
    for mode in [ReclaimMode::Epoch, ReclaimMode::Leak] {
        let created = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        {
            let tree: CitrusTree<u64, Counted, ScalableRcu> =
                CitrusTree::with_options(ScalableRcu::new(), mode, true);
            let mut s = tree.session();
            // A shape rich in two-child nodes: balanced insertion order.
            for k in [64u64, 32, 96, 16, 48, 80, 112, 8, 24, 40, 56] {
                s.insert(k, Counted::new(&created, &dropped));
            }
            // Two-child deletes whose unlinks stay queued: no flush runs
            // before the drop below (huge default threshold, and we beat
            // the worker interval by dropping immediately).
            for k in [32u64, 64, 16] {
                assert!(s.remove(&k));
            }
            assert!(s.stats().deferred_unlinks() >= 1, "mode {mode:?}");
        }
        assert_eq!(
            created.load(Ordering::SeqCst),
            dropped.load(Ordering::SeqCst),
            "mode {mode:?}: every constructed value must drop exactly once"
        );
    }
}

/// Forest independence: shard A's deferred unlinks complete while a
/// reader is parked *inside* shard B's read-side critical section. If the
/// shards shared a grace-period domain, the flush below would hang until
/// the watchdog kills the test.
#[test]
fn shard_retirements_do_not_wait_on_other_shards() {
    let _watchdog = testkit::stress_watchdog("shard_retirements_do_not_wait_on_other_shards");
    let forest: CitrusForest<u64, u64, ScalableRcu> =
        CitrusForest::with_options(4, 0, ReclaimMode::Epoch, true);
    assert!(forest.deferred_free());

    // Three keys a < b < c routed to the same shard; inserting b first
    // gives it two children, so remove(b) is a two-child delete there.
    let target = forest.shard_for(&0u64);
    let mut same_shard = Vec::new();
    for k in 0u64..10_000 {
        if forest.shard_for(&k) == target {
            same_shard.push(k);
            if same_shard.len() == 3 {
                break;
            }
        }
    }
    let [a, b, c]: [u64; 3] = same_shard.try_into().expect("three keys in the shard");
    let other = (target + 1) % forest.shard_count();

    let reader_in = AtomicBool::new(false);
    let release = AtomicBool::new(false);
    std::thread::scope(|scope| {
        {
            let (forest, reader_in, release) = (&forest, &reader_in, &release);
            scope.spawn(move || {
                // Park inside the *other* shard's read-side section.
                let handle = forest.shard(other).rcu().register();
                let guard = handle.read_lock();
                reader_in.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                drop(guard);
            });
        }
        while !reader_in.load(Ordering::Acquire) {
            std::thread::yield_now();
        }

        let mut s = forest.session();
        assert!(s.insert(b, b));
        assert!(s.insert(a, a));
        assert!(s.insert(c, c));
        assert!(s.remove(&b), "two-child delete in the target shard");
        drop(s);

        // Shard `target`'s drain waits only on its own grace periods —
        // the blocked reader lives in shard `other`'s domain.
        forest.shard(target).flush_deferred();
        let deferred = forest
            .shard(target)
            .deferred()
            .expect("deferred mode has per-shard domains");
        assert!(
            deferred.executed() >= 1,
            "the unlink must complete while the other shard's reader is inside"
        );
        release.store(true, Ordering::Release);
    });

    let mut forest = forest;
    let stats = forest.validate_structure().expect("forest valid");
    assert_eq!(stats.len, 2);
}

/// Retire-while-synchronize interleavings under pinned chaos seeds: the
/// Figure 4 workload (successor relocations racing searches of the moved
/// key) in deferred mode, with failpoints yielding, spinning, forcing
/// validation restarts, and starving the flush worker. Exactly-once
/// unlinking and reader correctness must survive every seed.
#[cfg(feature = "chaos")]
#[test]
fn chaos_seeds_perturb_retire_while_synchronize() {
    use citrus_chaos::{self as chaos, ChaosPlan};
    let _watchdog = testkit::stress_watchdog("chaos_seeds_perturb_retire_while_synchronize");
    for seed in [0x0DEF_0001u64, 0x0DEF_0002, 0x0DEF_0003] {
        let _plan = chaos::install(
            ChaosPlan::from_seed(seed)
                .yields(250)
                .spins(250, 64)
                .fails(300),
        );
        let rounds = 50u64;
        let tree = deferred_tree(ReclaimMode::Epoch);
        let published = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            {
                let (tree, published, stop) = (&tree, &published, &stop);
                scope.spawn(move || {
                    let mut s = tree.session();
                    for r in 0..rounds {
                        let base = r * 100;
                        for k in [10, 5, 30, 20, 40] {
                            s.insert(base + k, base + k);
                        }
                        published.store(r + 1, Ordering::Release);
                        // base+10 has two children: a deferred unlink.
                        s.remove(&(base + 10));
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            let (tree, published, stop) = (&tree, &published, &stop);
            scope.spawn(move || {
                let mut s = tree.session();
                let mut key = 20u64;
                while !stop.load(Ordering::Relaxed) {
                    let rounds = published.load(Ordering::Acquire);
                    if rounds == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    // Walk the permanent (base+20) keys round-robin.
                    key = if key / 100 + 1 >= rounds {
                        20
                    } else {
                        key + 100
                    };
                    assert_eq!(
                        tree_get(&mut s, key),
                        Some(key),
                        "seed {seed:#x}: reader missed a permanent key"
                    );
                }
            });
        });
        tree.flush_deferred();
        let deferred = tree.deferred().expect("deferred domain");
        assert!(
            deferred.executed() >= rounds,
            "seed {seed:#x}: every round defers one unlink (got {})",
            deferred.executed()
        );
        let mut tree = tree;
        tree.validate_structure()
            .unwrap_or_else(|e| panic!("seed {seed:#x}: invariant violated: {e}"));
    }
}

#[cfg(feature = "chaos")]
fn tree_get(s: &mut citrus::CitrusSession<'_, u64, u64, ScalableRcu>, key: u64) -> Option<u64> {
    s.get(&key)
}
