//! Cross-layer metric invariants, checked through the public
//! observability surface (`register_metrics` → `MetricsSnapshot` →
//! `citrus_api::testkit::check_counter_dominates`).
//!
//! With the `stats` feature off the snapshot is empty and every check
//! passes vacuously, so this file compiles and runs in both modes.

use citrus::{CitrusTree, GlobalLockRcu, RcuFlavor, ScalableRcu};
use citrus_api::testkit::{check_counter_dominates, SplitMix64};
use citrus_obs::MetricsRegistry;
use std::sync::Barrier;

/// Runs a randomized single-threaded workload and returns the tree's
/// metrics snapshot.
fn churn_and_snapshot<F: RcuFlavor>(seed: u64) -> citrus_obs::MetricsSnapshot {
    let tree: CitrusTree<u64, u64, F> = CitrusTree::new();
    let mut s = tree.session();
    let mut rng = SplitMix64::new(seed);
    for k in 0..512u64 {
        s.insert(k, k);
    }
    for _ in 0..2_000 {
        let k = rng.below(512);
        if rng.below(2) == 0 {
            s.remove(&k);
        } else {
            s.insert(k, k);
        }
    }
    drop(s);
    let registry = MetricsRegistry::new();
    tree.register_metrics(&registry);
    registry.snapshot()
}

/// The paper's delete performs exactly one `synchronize_rcu` per
/// two-child delete (line 74), and the RCU flavor may run grace periods
/// for other reasons too — so flavor grace periods must dominate the
/// tree's recorded synchronize calls.
#[test]
fn grace_periods_cover_two_child_deletes_scalable() {
    let snap = churn_and_snapshot::<ScalableRcu>(0xC17);
    check_counter_dominates(
        &snap,
        (ScalableRcu::NAME, "synchronize_calls"),
        ("citrus", "synchronize_calls"),
    );
    // The workload is churny enough that two-child deletes must occur —
    // counted inline (synchronize_calls) or deferred (deferred_unlinks),
    // depending on CITRUS_DEFERRED_FREE.
    if !snap.is_empty() {
        let two_child = snap.counter("citrus", "synchronize_calls").unwrap()
            + snap.counter("citrus", "deferred_unlinks").unwrap();
        assert!(two_child > 0, "workload produced no two-child deletes");
    }
}

/// Same invariant under the standard (global-lock) RCU flavor.
#[test]
fn grace_periods_cover_two_child_deletes_global_lock() {
    let snap = churn_and_snapshot::<GlobalLockRcu>(0x90B);
    check_counter_dominates(
        &snap,
        (GlobalLockRcu::NAME, "synchronize_calls"),
        ("citrus", "synchronize_calls"),
    );
}

/// Every insert/remove acquires at least one lock, so lock acquisitions
/// must dominate retries (a retry re-runs the locking step).
#[test]
fn lock_acquisitions_dominate_retries() {
    let snap = churn_and_snapshot::<ScalableRcu>(0x10C);
    check_counter_dominates(
        &snap,
        ("citrus", "lock_acquisitions"),
        ("citrus", "insert_retries"),
    );
    check_counter_dominates(
        &snap,
        ("citrus", "lock_acquisitions"),
        ("citrus", "remove_retries"),
    );
}

/// Under concurrency the invariant still holds: grace periods observed
/// after all sessions quiesce dominate the tree's synchronize count.
#[test]
fn invariant_holds_under_concurrency() {
    const THREADS: u64 = 4;
    let tree: CitrusTree<u64, u64, ScalableRcu> = CitrusTree::new();
    {
        let mut s = tree.session();
        for k in 0..1024u64 {
            s.insert(k, k);
        }
    }
    let barrier = Barrier::new(THREADS as usize);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (tree, barrier) = (&tree, &barrier);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xACE ^ t);
                let mut s = tree.session();
                barrier.wait();
                for _ in 0..1_500 {
                    let k = rng.below(1024);
                    match rng.below(3) {
                        0 => {
                            s.insert(k, k);
                        }
                        1 => {
                            s.remove(&k);
                        }
                        _ => {
                            s.get(&k);
                        }
                    }
                }
            });
        }
    });
    let registry = MetricsRegistry::new();
    tree.register_metrics(&registry);
    check_counter_dominates(
        &registry.snapshot(),
        (ScalableRcu::NAME, "synchronize_calls"),
        ("citrus", "synchronize_calls"),
    );
}
