//! A vendored, dependency-free subset of the `proptest` API.
//!
//! This workspace builds in fully offline environments, so it cannot pull
//! the real `proptest` from crates.io. This shim implements exactly the
//! surface our test suites use — [`Strategy`], [`any`], `prop_oneof!`,
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop::collection::{vec,
//! btree_set}`, and [`ProptestConfig`] — with deterministic SplitMix64
//! generation and **no shrinking** (a failing case reports its seed so it
//! can be replayed by rerunning the test).
//!
//! Semantics intentionally match real proptest closely enough that swapping
//! the workspace dependency back to the crates.io crate requires no test
//! changes.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Why a single generated test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion made with `prop_assert!`/`prop_assert_eq!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Per-`proptest!` block configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical uniform strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Generates one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical uniform strategy for `T` (e.g. `any::<u8>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Uniform choice among boxed alternatives; used by `prop_oneof!`.
pub fn one_of<T>(alternatives: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(
        !alternatives.is_empty(),
        "prop_oneof! needs at least one arm"
    );
    OneOf { alternatives }
}

/// Strategy produced by [`one_of`] / `prop_oneof!`.
pub struct OneOf<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[i].generate(rng)
    }
}

impl<T> fmt::Debug for OneOf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OneOf")
            .field("alternatives", &self.alternatives.len())
            .finish()
    }
}

/// A size specification for collection strategies (`1..400`, `1..=64`).
pub trait SizeRange {
    /// Lower bound (inclusive) and upper bound (inclusive).
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Collection strategies: `prop::collection::{vec, btree_set}`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s whose size is drawn from `size` (best effort:
    /// if the element domain is too small to reach the drawn size, the set
    /// may come out smaller, but never below one element for nonzero
    /// minimums with a nonempty domain).
    pub fn btree_set<S>(element: S, size: impl SizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            let mut set = BTreeSet::new();
            // Bounded attempts so tiny element domains cannot loop forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(64) + 256 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

#[doc(hidden)]
pub mod __runner {
    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};

    /// Base seed; override with `PROPTEST_SEED` for replay.
    fn base_seed(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.trim().parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the test name: stable across runs, distinct per test.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `f` on `config.cases` generated inputs, panicking on the first
    /// failure with enough context to replay it.
    pub fn run<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, f: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base = base_seed(test_name);
        for case in 0..config.cases {
            let seed = base.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9));
            let mut rng = TestRng::new(seed);
            let input = strategy.generate(&mut rng);
            if let Err(TestCaseError::Fail(msg)) = f(input) {
                panic!(
                    "proptest case {case}/{cases} failed (replay with \
                     PROPTEST_SEED={base}): {msg}",
                    cases = config.cases,
                );
            }
        }
    }
}

/// Everything the tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current test case with a formatted message unless `cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice among strategy arms (unweighted subset of proptest's
/// `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares `#[test]` functions over generated inputs (subset of
/// proptest's `proptest!`: one `pattern in strategy` binding per test, an
/// optional leading `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($binding:pat in $strategy:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = $strategy;
                $crate::__runner::run(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &strategy,
                    |$binding| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($binding:pat in $strategy:expr) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($binding in $strategy) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn any_and_map_generate() {
        let s = any::<u8>().prop_map(u64::from);
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) <= u64::from(u8::MAX));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![
            any::<u8>().prop_map(|_| 0u8),
            any::<u8>().prop_map(|_| 1u8),
            any::<u8>().prop_map(|_| 2u8),
        ];
        let mut rng = crate::TestRng::new(3);
        let seen: BTreeSet<u8> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(seen.len(), 3, "some arm never generated: {seen:?}");
    }

    #[test]
    fn vec_respects_size_bounds() {
        let s = prop::collection::vec(any::<u8>(), 2..10);
        let mut rng = crate::TestRng::new(5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v.len()), "len {} out of range", v.len());
        }
    }

    #[test]
    fn btree_set_respects_upper_bound() {
        let s = prop::collection::btree_set(any::<u8>(), 1..=64);
        let mut rng = crate::TestRng::new(9);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(ops in prop::collection::vec(any::<u8>(), 1..50)) {
            prop_assert!(!ops.is_empty());
            prop_assert_eq!(ops.len(), ops.iter().fold(0, |n, _| n + 1), "length {}", ops.len());
        }

        #[test]
        fn macro_supports_mut_bindings(mut keys in prop::collection::btree_set(any::<u8>(), 1..=16)) {
            let first = *keys.iter().next().expect("nonempty");
            keys.remove(&first);
            prop_assert!(keys.len() <= 15);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_seed() {
        crate::__runner::run(
            &ProptestConfig::with_cases(4),
            "shim::failing",
            &any::<u8>(),
            |_| Err(TestCaseError::fail("forced")),
        );
    }
}
