//! The grace-period stall watchdog (both flavors): a reader parked inside
//! its read-side critical section must be *named* — slot index, reader
//! word, wait time — while `synchronize_rcu` keeps waiting and still
//! completes once the reader leaves. The watchdog changes observability,
//! never grace-period semantics.

use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};
use std::sync::mpsc;
use std::time::Duration;

/// Parks a reader in a read section for ~200 ms while a 50 ms-timeout
/// synchronizer waits on it, then checks the stall was reported.
fn stalled_reader_is_reported<F: RcuFlavor>(rcu: &F) {
    rcu.set_stall_timeout(Some(Duration::from_millis(50)));
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();

    std::thread::scope(|s| {
        s.spawn(move || {
            let h = rcu.register();
            let guard = h.read_lock();
            entered_tx.send(()).unwrap();
            // Stay inside the section until released.
            release_rx.recv().unwrap();
            drop(guard);
        });
        entered_rx.recv().unwrap();
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            release_tx.send(()).unwrap();
        });
        let h = rcu.register();
        // Blocks on the parked reader well past the 50 ms timeout; must
        // still complete once the reader exits.
        h.synchronize();
    });

    assert!(
        rcu.stall_events() >= 1,
        "the watchdog must have recorded at least one stall"
    );
    let diag = rcu
        .take_stall_diagnostic()
        .expect("a stall diagnostic must be recorded");
    assert!(
        diag.contains("slot"),
        "diagnostic must name the blocking registry slot: {diag}"
    );
    assert!(
        diag.contains(F::NAME),
        "diagnostic must name the flavor: {diag}"
    );
    // The obs counter mirrors the unconditional event count (stats only).
    #[cfg(feature = "stats")]
    assert!(
        rcu.metrics().synchronize_stalls() >= 1,
        "the synchronize_stalls obs counter must have advanced"
    );
    // Taking the diagnostic clears it.
    assert!(rcu.take_stall_diagnostic().is_none());
}

#[test]
fn stalled_reader_is_reported_scalable() {
    stalled_reader_is_reported(&ScalableRcu::new());
}

#[test]
fn stalled_reader_is_reported_global_lock() {
    stalled_reader_is_reported(&GlobalLockRcu::new());
}

/// With the watchdog disabled, a slow reader produces no events.
fn disabled_watchdog_stays_silent<F: RcuFlavor>(rcu: &F) {
    rcu.set_stall_timeout(None);
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    std::thread::scope(|s| {
        s.spawn(move || {
            let h = rcu.register();
            let guard = h.read_lock();
            entered_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            drop(guard);
        });
        entered_rx.recv().unwrap();
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            release_tx.send(()).unwrap();
        });
        let h = rcu.register();
        h.synchronize();
    });
    assert_eq!(rcu.stall_events(), 0);
    assert!(rcu.take_stall_diagnostic().is_none());
}

#[test]
fn disabled_watchdog_stays_silent_scalable() {
    disabled_watchdog_stays_silent(&ScalableRcu::new());
}

#[test]
fn disabled_watchdog_stays_silent_global_lock() {
    disabled_watchdog_stays_silent(&GlobalLockRcu::new());
}

/// An uncontended synchronize never trips even a tiny timeout.
#[test]
fn idle_synchronize_records_nothing() {
    let rcu = ScalableRcu::new();
    rcu.set_stall_timeout(Some(Duration::from_millis(1)));
    let h = rcu.register();
    for _ in 0..10 {
        h.synchronize();
    }
    assert_eq!(rcu.stall_events(), 0);
}
