//! Direct tests of the RCU property (paper Figure 2) and the flavor
//! implementations' structural behavior, beyond the in-crate unit tests.

use citrus_api::testkit;
use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// `synchronize` must NOT wait for read-side sections that start after it
/// was invoked: with a thread continuously entering fresh sections, a
/// grace period must still complete quickly.
fn synchronize_does_not_wait_for_future_readers<F: RcuFlavor>(rcu: &F) {
    let stop = AtomicU64::new(0);
    std::thread::scope(|s| {
        s.spawn(|| {
            let h = rcu.register();
            while stop.load(Ordering::Relaxed) == 0 {
                let _g = h.read_lock();
                // Hold each section briefly so there is almost always a
                // *current* reader.
                std::hint::spin_loop();
            }
        });
        s.spawn(|| {
            let h = rcu.register();
            let start = Instant::now();
            for _ in 0..testkit::stress_iters(200) {
                h.synchronize();
            }
            let elapsed = start.elapsed();
            stop.store(1, Ordering::Relaxed);
            assert!(
                elapsed < Duration::from_secs(30),
                "grace periods starved by future readers ({elapsed:?})"
            );
        });
    });
}

#[test]
fn no_future_reader_wait_scalable() {
    let _watchdog = testkit::stress_watchdog("no_future_reader_wait_scalable");
    synchronize_does_not_wait_for_future_readers(&ScalableRcu::new());
}

#[test]
fn no_future_reader_wait_global_lock() {
    let _watchdog = testkit::stress_watchdog("no_future_reader_wait_global_lock");
    synchronize_does_not_wait_for_future_readers(&GlobalLockRcu::new());
}

/// The full ordering property, observed through data: a writer retires the
/// value it unpublished and records the set of "live" values; readers
/// record every value they observe inside a section. No reader may observe
/// a value that was retired before its section started.
fn ordering_property<F: RcuFlavor>(rcu: &F) {
    use std::sync::atomic::AtomicUsize;
    const SLOTS: usize = 4;
    let writes = testkit::stress_iters(1_000) as usize;
    // Value published at index i is i; `retired_before[v]` is the highest
    // grace-period index at which v was still published.
    let current = AtomicUsize::new(0);
    let gp_count = AtomicU64::new(0);
    let retire_log = Mutex::new(vec![u64::MAX; writes + SLOTS]);
    let barrier = Barrier::new(3);

    std::thread::scope(|s| {
        for _ in 0..2 {
            let (current, gp_count, retire_log, barrier) =
                (&current, &gp_count, &retire_log, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                barrier.wait();
                loop {
                    let g = h.read_lock();
                    let seen = current.load(Ordering::Acquire);
                    let gp_at_read = gp_count.load(Ordering::Acquire);
                    drop(g);
                    if seen >= writes {
                        break;
                    }
                    // The value we saw must not have been retired before
                    // our section could have started.
                    let retired_at = retire_log.lock().unwrap()[seen];
                    if retired_at != u64::MAX {
                        assert!(
                            retired_at + 1 >= gp_at_read,
                            "observed value {seen} retired at gp {retired_at}, read at gp {gp_at_read}"
                        );
                    }
                }
            });
        }
        {
            let (current, gp_count, retire_log, barrier) =
                (&current, &gp_count, &retire_log, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                barrier.wait();
                for i in 1..=writes {
                    let old = current.swap(i, Ordering::AcqRel);
                    h.synchronize();
                    let gp = gp_count.fetch_add(1, Ordering::AcqRel);
                    retire_log.lock().unwrap()[old] = gp;
                }
            });
        }
    });
}

#[test]
fn ordering_property_scalable() {
    let _watchdog = testkit::stress_watchdog("ordering_property_scalable");
    ordering_property(&ScalableRcu::new());
}

#[test]
fn ordering_property_global_lock() {
    let _watchdog = testkit::stress_watchdog("ordering_property_global_lock");
    ordering_property(&GlobalLockRcu::new());
}

/// Handles from many short-lived threads reuse registry slots rather than
/// growing without bound, and grace periods keep completing throughout.
fn slot_reuse_under_thread_churn<F: RcuFlavor>(rcu: &F) {
    for batch in 0..20 {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let h = rcu.register();
                    for _ in 0..50 {
                        let _g = h.read_lock();
                    }
                    h.synchronize();
                });
            }
        });
        let h = rcu.register();
        h.synchronize();
        drop(h);
        let _ = batch;
    }
    assert!(rcu.grace_periods() >= 20);
}

#[test]
fn slot_reuse_scalable() {
    let _watchdog = testkit::stress_watchdog("slot_reuse_scalable");
    slot_reuse_under_thread_churn(&ScalableRcu::new());
}

#[test]
fn slot_reuse_global_lock() {
    let _watchdog = testkit::stress_watchdog("slot_reuse_global_lock");
    slot_reuse_under_thread_churn(&GlobalLockRcu::new());
}

/// Two independent domains never synchronize with each other: a reader
/// parked inside domain A must not block grace periods of domain B.
#[test]
fn domains_are_independent() {
    let a = ScalableRcu::new();
    let b = ScalableRcu::new();
    let ha = a.register();
    let hb = b.register();
    let _ga = ha.read_lock();
    // B's grace period completes although A has an active reader.
    hb.synchronize();
    assert_eq!(b.grace_periods(), 1);
    assert_eq!(a.grace_periods(), 0);
}

/// Guards are plain RAII: dropping out of order with other locals is fine,
/// and nested guards from the same handle unwind correctly.
#[test]
fn guard_nesting_unwinds() {
    let rcu = ScalableRcu::new();
    let h = rcu.register();
    let g1 = h.read_lock();
    let g2 = h.read_lock();
    let g3 = h.read_lock();
    drop(g2);
    assert!(h.in_read_section());
    drop(g1);
    assert!(h.in_read_section());
    drop(g3);
    assert!(!h.in_read_section());
}
