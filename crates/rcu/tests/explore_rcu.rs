//! Exhaustive schedule exploration of the RCU grace-period protocol
//! itself: a reader that exits and immediately re-enters a read-side
//! critical section racing a writer's `synchronize_rcu`.
//!
//! This is the window where a buggy flavor returns early — the reader's
//! exit makes it look quiescent, but its re-entry happened before the
//! writer's scan observed the exit, and a broken implementation credits
//! the *new* critical section as the old one having ended. The scenario
//! publishes a value, synchronizes, then marks the old value freed; the
//! reader asserts (on entry and before exit) that whatever it observed
//! was never freed. Assertion failures surface as scenario panics, which
//! the explorer reports with a replayable schedule.
//!
//! Both flavors sweep every interleaving of their instrumented yield
//! points at preemption bound 2 — the deterministic counterpart of the
//! statistical `check_grace_period_property` stress test.

#![cfg(feature = "chaos")]

use citrus_chaos::{run_schedule, ExploreReport, ExploredRun, Explorer};
use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One deterministic run: reader exits and re-enters; writer unpublishes
/// value 0, waits a grace period, then frees it.
fn grace_period_run<F: RcuFlavor>(rcu: &F) -> Vec<Box<dyn FnOnce() + Send + '_>> {
    // Leaked per-run state keeps the closures 'static-free but simple;
    // each run allocates a few words, reclaimed when the Vec drops.
    let published = Box::leak(Box::new(AtomicUsize::new(0)));
    let freed: &'static [AtomicBool; 2] =
        Box::leak(Box::new([AtomicBool::new(false), AtomicBool::new(false)]));
    let reader = {
        let published = &*published;
        move || {
            let h = rcu.register();
            for pass in 0..2 {
                let g = h.read_lock();
                let v = published.load(Ordering::Acquire);
                assert!(
                    !freed[v].load(Ordering::SeqCst),
                    "pass {pass}: value {v} was freed while still published"
                );
                // Named dwell point: gives the scheduler somewhere to run
                // the writer *inside* the reader's critical section — the
                // only place a premature grace period is observable.
                citrus_chaos::point!("rcu-test/reader/dwell");
                assert!(
                    !freed[v].load(Ordering::SeqCst),
                    "pass {pass}: grace period ended while the reader that \
                     observed value {v} was still inside its critical section"
                );
                drop(g);
            }
        }
    };
    let writer = {
        let published = &*published;
        move || {
            let h = rcu.register();
            published.store(1, Ordering::Release);
            h.synchronize();
            freed[0].store(true, Ordering::SeqCst);
        }
    };
    vec![Box::new(reader), Box::new(writer)]
}

fn sweep<F: RcuFlavor, M: Fn() -> F>(make: M) -> ExploreReport {
    Explorer::with_bound(2).explore(|plan| {
        let rcu = make();
        let outcome = run_schedule(plan, grace_period_run(&rcu));
        ExploredRun {
            outcome,
            verdict: Ok(()),
        }
    })
}

#[test]
fn scalable_reader_reenter_vs_synchronize_is_clean() {
    let report = sweep(|| ScalableRcu::with_sharing(true));
    if let Some(f) = &report.failure {
        panic!(
            "scalable grace-period violation: {f}\n  replay: CITRUS_SCHEDULE={}",
            f.schedule
        );
    }
    assert_eq!(report.deadlocks, 0, "no schedule may wedge the protocol");
    for point in [
        "rcu-scalable/read-lock/between-store-and-fence",
        "rcu-scalable/synchronize/scan-step",
        "rcu-scalable/synchronize/reader-wait",
    ] {
        assert!(
            report.points_hit.contains(point),
            "sweep never reached {point}; hit: {:?}",
            report.points_hit
        );
    }
}

#[test]
fn scalable_no_sharing_reader_reenter_vs_synchronize_is_clean() {
    let report = sweep(|| ScalableRcu::with_sharing(false));
    if let Some(f) = &report.failure {
        panic!(
            "scalable (no sharing) grace-period violation: {f}\n  replay: CITRUS_SCHEDULE={}",
            f.schedule
        );
    }
    assert_eq!(report.deadlocks, 0);
}

#[test]
fn global_lock_reader_reenter_vs_synchronize_is_clean() {
    let report = sweep(GlobalLockRcu::new);
    if let Some(f) = &report.failure {
        panic!(
            "global-lock grace-period violation: {f}\n  replay: CITRUS_SCHEDULE={}",
            f.schedule
        );
    }
    assert_eq!(report.deadlocks, 0);
    for point in [
        "rcu-global-lock/read-lock/between-store-and-fence",
        "rcu-global-lock/synchronize/phase-flip",
        "rcu-global-lock/synchronize/reader-wait",
    ] {
        assert!(
            report.points_hit.contains(point),
            "sweep never reached {point}; hit: {:?}",
            report.points_hit
        );
    }
}

/// The sweep's coverage is deterministic: same flavor, same bound, same
/// schedule count. Pins the bound-1 count for the cheapest flavor so a
/// silently vanished yield point fails loudly (budget-limited lanes
/// skip the pin — an incomplete sweep has no stable count).
#[test]
fn global_lock_schedule_count_is_stable() {
    let count = |_: ()| {
        Explorer::with_bound(1).explore(|plan| {
            let rcu = GlobalLockRcu::new();
            let outcome = run_schedule(plan, grace_period_run(&rcu));
            ExploredRun {
                outcome,
                verdict: Ok(()),
            }
        })
    };
    let first = count(());
    let second = count(());
    assert!(first.failure.is_none(), "bound-1 sweep must be clean");
    assert_eq!(first.schedules, second.schedules);
    if first.completed && second.completed {
        assert_eq!(
            first.schedules, 11,
            "bound-1 schedule count drifted — a grace-period yield point \
             appeared or vanished; re-harvest if deliberate"
        );
    }
}
