//! Grace-period sharing (DESIGN.md §6d): the piggyback property under a
//! chaos-seed sweep in both RCU flavors, plus liveness/occurrence checks.
//!
//! The sweep width follows `CITRUS_CHAOS_SEEDS` (default 3):
//!
//! ```text
//! CITRUS_CHAOS_SEEDS=5 cargo test -p citrus-rcu --features chaos --test gp_sharing
//! ```

use citrus_api::testkit;
use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};
use std::sync::atomic::Ordering;

fn chaos_seed_count() -> u64 {
    match std::env::var("CITRUS_CHAOS_SEEDS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_CHAOS_SEEDS={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => 3,
        Err(e) => panic!("invalid CITRUS_CHAOS_SEEDS: {e}"),
    }
}

/// The grace-period property with sharing on and off, swept over chaos
/// schedule seeds that perturb the piggyback decision window
/// (`rcu-*/synchronize/piggyback-check` among every other failpoint).
fn piggyback_property_chaos_sweep<F, M>(name: &str, make: M)
where
    F: RcuFlavor,
    M: Fn(bool) -> F,
{
    let _watchdog = testkit::stress_watchdog(name);
    for i in 0..chaos_seed_count() {
        let seed = 0x6B5E_A000u64.wrapping_add(i);
        let _chaos = testkit::install_chaos(testkit::ChaosPlan::from_seed(seed));
        // Sharing on, several concurrent synchronizers: piggybacked
        // returns must still honor in-flight readers.
        testkit::check_grace_period_property(&make(true), 4, 40);
        // Sharing off: the plain per-caller scan, same oracle.
        testkit::check_grace_period_property(&make(false), 2, 20);
    }
}

#[test]
fn piggyback_property_chaos_sweep_scalable() {
    piggyback_property_chaos_sweep("piggyback_property_chaos_sweep_scalable", |sharing| {
        ScalableRcu::with_sharing(sharing)
    });
}

#[test]
fn piggyback_property_chaos_sweep_global_lock() {
    piggyback_property_chaos_sweep("piggyback_property_chaos_sweep_global_lock", |sharing| {
        GlobalLockRcu::with_sharing(sharing)
    });
}

/// With sharing enabled and a reader population keeping scans busy,
/// concurrent synchronizers do actually piggyback (bounded retry loop:
/// each round adds more opportunities; scheduling decides how soon).
fn piggyback_occurs<F: RcuFlavor>(rcu: &F) {
    let _watchdog = testkit::stress_watchdog("piggyback_occurs");
    for _round in 0..50 {
        let done = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (rcu, done) = (rcu, &done);
            s.spawn(move || {
                let h = rcu.register();
                // Keep scans busy until every synchronizer has finished.
                while done.load(Ordering::Acquire) < 4 {
                    let _g = h.read_lock();
                    for _ in 0..32 {
                        std::hint::spin_loop();
                    }
                }
            });
            for _ in 0..4 {
                s.spawn(move || {
                    let h = rcu.register();
                    for _ in 0..25 {
                        h.synchronize();
                    }
                    done.fetch_add(1, Ordering::Release);
                });
            }
        });
        if rcu.synchronize_piggybacks() > 0 {
            return;
        }
    }
    panic!(
        "no synchronize call piggybacked in 50 rounds of 4 concurrent \
         synchronizers ({} grace periods ran)",
        rcu.grace_periods()
    );
}

#[test]
fn piggyback_occurs_scalable() {
    piggyback_occurs(&ScalableRcu::with_sharing(true));
}

#[test]
fn piggyback_occurs_global_lock() {
    piggyback_occurs(&GlobalLockRcu::with_sharing(true));
}

/// `with_sharing(false)` really turns the optimization off.
#[test]
fn unshared_domains_never_piggyback() {
    let _watchdog = testkit::stress_watchdog("unshared_domains_never_piggyback");
    let scalable = ScalableRcu::with_sharing(false);
    let global = GlobalLockRcu::with_sharing(false);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let h = scalable.register();
                let g = global.register();
                for _ in 0..50 {
                    h.synchronize();
                    g.synchronize();
                }
            });
        }
    });
    assert_eq!(scalable.synchronize_piggybacks(), 0);
    assert_eq!(global.synchronize_piggybacks(), 0);
    assert_eq!(scalable.grace_periods(), 200);
    assert_eq!(global.grace_periods(), 200);
}
