//! The paper's scalable user-space RCU (§5, "New RCU").
//!
//! Each registered thread owns one cache-padded word that packs:
//!
//! * bit 0 — the *flag*: `1` while the thread is inside a read-side
//!   critical section;
//! * bits 1.. — the *counter*: the number of read-side critical sections
//!   the thread has started.
//!
//! `rcu_read_lock` increments the counter and sets the flag with a single
//! store; `rcu_read_unlock` clears the flag. `synchronize_rcu` snapshots
//! every other thread's word and waits, for each thread observed inside a
//! critical section, until *either the counter has changed or the flag is
//! clear* — both of which mean the pre-existing section has ended.
//!
//! The decisive property (quoting the paper): "multiple threads executing
//! `synchronize_rcu` need not coordinate among themselves, and they do not
//! acquire any locks."

use crate::flavor::{RcuFlavor, RcuHandle};
use crate::metrics::RcuMetrics;
use crate::stall::StallWatchdog;
use citrus_chaos as chaos;
use citrus_obs::Stopwatch;
use citrus_sync::{Backoff, CachePadded, Registry, SlotHandle};
use core::cell::Cell;
use core::fmt;
use core::sync::atomic::{fence, AtomicU64, Ordering};
use core::time::Duration;
use std::time::Instant;

/// Flag bit: thread is inside a read-side critical section.
const FLAG: u64 = 1;
/// Counter increment (counter occupies bits 1..).
const COUNT_ONE: u64 = 2;

/// One registered thread's reader state.
struct ReaderSlot {
    /// `(sections_started << 1) | in_section`.
    word: CachePadded<AtomicU64>,
}

impl ReaderSlot {
    fn new() -> Self {
        Self {
            word: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

/// The paper's scalable RCU domain. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_rcu::{RcuFlavor, RcuHandle, ScalableRcu};
///
/// let rcu = ScalableRcu::new();
/// let h = rcu.register();
/// {
///     let _g = h.read_lock();
///     // ... traverse an RCU-protected structure ...
/// }
/// h.synchronize(); // waits for pre-existing readers on all threads
/// ```
pub struct ScalableRcu {
    registry: Registry<ReaderSlot>,
    grace_periods: AtomicU64,
    metrics: RcuMetrics,
    watchdog: StallWatchdog,
}

impl ScalableRcu {
    /// Creates a new domain with no registered threads.
    pub fn new() -> Self {
        Self {
            registry: Registry::new(),
            grace_periods: AtomicU64::new(0),
            metrics: RcuMetrics::new(),
            watchdog: StallWatchdog::new(),
        }
    }
}

impl Default for ScalableRcu {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ScalableRcu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScalableRcu")
            .field("threads", &self.registry.slot_count())
            .field("grace_periods", &self.grace_periods())
            .finish()
    }
}

impl RcuFlavor for ScalableRcu {
    type Handle<'a> = ScalableRcuHandle<'a>;

    const NAME: &'static str = "rcu-scalable";

    fn register(&self) -> ScalableRcuHandle<'_> {
        // Reuse needs no reset: a released slot always has its flag clear
        // (handles assert they are outside any read section on drop), and
        // the counter may continue from its old value — synchronize only
        // ever compares words for *change*.
        let slot = self.registry.register(ReaderSlot::new, |_| {});
        ScalableRcuHandle {
            domain: self,
            slot,
            nesting: Cell::new(0),
            stripe: self.metrics.assign_stripe(),
        }
    }

    fn grace_periods(&self) -> u64 {
        self.grace_periods.load(Ordering::Relaxed)
    }

    fn metrics(&self) -> &RcuMetrics {
        &self.metrics
    }

    fn set_stall_timeout(&self, timeout: Option<Duration>) {
        self.watchdog.set_timeout(timeout);
    }

    fn stall_events(&self) -> u64 {
        self.watchdog.events()
    }

    fn take_stall_diagnostic(&self) -> Option<String> {
        self.watchdog.take_diagnostic()
    }
}

/// Per-thread handle for [`ScalableRcu`].
pub struct ScalableRcuHandle<'d> {
    domain: &'d ScalableRcu,
    slot: SlotHandle<'d, ReaderSlot>,
    /// Read-side nesting depth; only the outermost level touches `word`.
    nesting: Cell<u32>,
    /// This handle's metric-counter stripe.
    stripe: usize,
}

impl RcuHandle for ScalableRcuHandle<'_> {
    #[inline]
    fn raw_read_lock(&self) {
        let n = self.nesting.get();
        self.nesting.set(n + 1);
        if n == 0 {
            let word = &self.slot.word;
            // Only this thread stores to its own word, so the update need
            // not be an RMW.
            let w = word.load(Ordering::Relaxed);
            word.store(w.wrapping_add(COUNT_ONE) | FLAG, Ordering::Relaxed);
            // The store/fence window: a reader preempted here has
            // published its flag but not yet ordered its loads.
            chaos::point("rcu-scalable/read-lock/between-store-and-fence");
            // Order the flag store before the critical section's loads
            // (paired with the fence at the start of `synchronize`): either
            // the synchronizer sees our flag, or we see every store it made
            // before synchronizing.
            fence(Ordering::SeqCst);
            self.domain.metrics.record_read_section(self.stripe);
        }
    }

    #[inline]
    fn raw_read_unlock(&self) {
        let n = self.nesting.get();
        debug_assert!(n > 0, "read_unlock without matching read_lock");
        self.nesting.set(n - 1);
        if n == 1 {
            let word = &self.slot.word;
            // Order the critical section's loads before the flag clear, so
            // a synchronizer that observes the cleared flag knows our reads
            // of the protected data have completed.
            fence(Ordering::Release);
            let w = word.load(Ordering::Relaxed);
            word.store(w & !FLAG, Ordering::Release);
        }
    }

    fn synchronize(&self) {
        debug_assert!(
            !self.in_read_section(),
            "synchronize_rcu inside a read-side critical section would self-deadlock"
        );
        let stopwatch = Stopwatch::start();
        // Order the caller's prior stores (e.g. unlinking a node) before the
        // reader-state scan: any reader that starts after this fence will
        // observe those stores, so only readers whose flag we see can hold
        // pre-unlink references.
        fence(Ordering::SeqCst);
        let own = core::ptr::from_ref::<ReaderSlot>(&self.slot).cast::<u8>();
        let stall_limit = self.domain.watchdog.timeout();
        for (index, slot) in self.domain.registry.iter().enumerate() {
            // A synchronizer paused between slot scans lets later slots'
            // readers turn over many times before being snapshotted.
            chaos::point("rcu-scalable/synchronize/scan-step");
            // Skip our own slot (we are outside any read section).
            if core::ptr::from_ref::<ReaderSlot>(slot.value()).cast::<u8>() == own {
                continue;
            }
            let word = &slot.value().word;
            let snapshot = word.load(Ordering::Acquire);
            if snapshot & FLAG == 0 {
                // Not inside a read-side critical section: nothing to wait
                // for. This also covers released (unclaimed) slots.
                continue;
            }
            // Wait until the thread either increments its counter (started
            // a *new* section — the pre-existing one is over) or clears its
            // flag. Any change of the word implies one of the two.
            let backoff = Backoff::new();
            let mut waited_since: Option<Instant> = None;
            let mut reported = false;
            while word.load(Ordering::Acquire) == snapshot {
                backoff.snooze();
                if let Some(limit) = stall_limit {
                    let since = *waited_since.get_or_insert_with(Instant::now);
                    if !reported && since.elapsed() >= limit {
                        reported = true;
                        self.domain.watchdog.note(
                            ScalableRcu::NAME,
                            index,
                            snapshot,
                            since.elapsed(),
                        );
                        self.domain.metrics.record_synchronize_stall(self.stripe);
                    }
                }
            }
        }
        // Pair with readers' release fences: everything their critical
        // sections read happens-before our return.
        fence(Ordering::SeqCst);
        self.domain.grace_periods.fetch_add(1, Ordering::Relaxed);
        self.domain
            .metrics
            .record_synchronize(self.stripe, stopwatch.elapsed_ns());
    }

    #[inline]
    fn in_read_section(&self) -> bool {
        self.nesting.get() > 0
    }
}

impl Drop for ScalableRcuHandle<'_> {
    fn drop(&mut self) {
        // A handle dropped mid-critical-section would leave its flag set
        // forever, wedging every future grace period.
        assert!(
            !self.in_read_section(),
            "RCU handle dropped inside a read-side critical section"
        );
    }
}

impl fmt::Debug for ScalableRcuHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScalableRcuHandle")
            .field("nesting", &self.nesting.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{RcuFlavor, RcuHandle};

    #[test]
    fn word_encoding_counts_sections() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        let word = &h.slot.word;
        assert_eq!(word.load(Ordering::Relaxed), 0);
        h.raw_read_lock();
        assert_eq!(word.load(Ordering::Relaxed), COUNT_ONE | FLAG);
        h.raw_read_unlock();
        assert_eq!(word.load(Ordering::Relaxed), COUNT_ONE);
        h.raw_read_lock();
        assert_eq!(word.load(Ordering::Relaxed), (2 * COUNT_ONE) | FLAG);
        h.raw_read_unlock();
    }

    #[test]
    fn nesting_only_outermost_touches_word() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        h.raw_read_lock();
        let after_outer = h.slot.word.load(Ordering::Relaxed);
        h.raw_read_lock();
        assert_eq!(h.slot.word.load(Ordering::Relaxed), after_outer);
        h.raw_read_unlock();
        assert!(h.in_read_section());
        assert_eq!(h.slot.word.load(Ordering::Relaxed), after_outer);
        h.raw_read_unlock();
        assert!(!h.in_read_section());
    }

    #[test]
    fn synchronize_skips_own_released_and_idle_slots() {
        let rcu = ScalableRcu::new();
        // A released slot from a past thread.
        drop(rcu.register());
        let h = rcu.register();
        // An idle (registered, not reading) slot.
        let _idle = rcu.register();
        h.synchronize(); // must not block
        assert_eq!(rcu.grace_periods(), 1);
    }

    #[test]
    #[should_panic(expected = "dropped inside a read-side critical section")]
    fn dropping_handle_in_cs_panics() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        h.raw_read_lock();
        drop(h);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "read_unlock without matching read_lock")]
    fn unbalanced_unlock_panics_in_debug() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        h.raw_read_unlock();
    }

    #[test]
    fn debug_is_nonempty() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        assert!(format!("{rcu:?}").contains("ScalableRcu"));
        assert!(format!("{h:?}").contains("ScalableRcuHandle"));
    }
}
