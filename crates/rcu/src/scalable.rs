//! The paper's scalable user-space RCU (§5, "New RCU").
//!
//! Each registered thread owns one cache-padded word that packs:
//!
//! * bit 0 — the *flag*: `1` while the thread is inside a read-side
//!   critical section;
//! * bits 1.. — the *counter*: the number of read-side critical sections
//!   the thread has started.
//!
//! `rcu_read_lock` increments the counter and sets the flag with a single
//! store; `rcu_read_unlock` clears the flag. `synchronize_rcu` snapshots
//! every other thread's word and waits, for each thread observed inside a
//! critical section, until *either the counter has changed or the flag is
//! clear* — both of which mean the pre-existing section has ended.
//!
//! The decisive property (quoting the paper): "multiple threads executing
//! `synchronize_rcu` need not coordinate among themselves, and they do not
//! acquire any locks."
//!
//! On top of the paper's design this implementation *shares* grace periods
//! (DESIGN.md §6d): a global even/odd sequence [`gp_seq`] records scan
//! announcements (odd) and completions (even). A synchronizer snapshots
//! the sequence at entry and, while scanning, piggybacks — returns without
//! finishing its own scan — as soon as a full grace period that started
//! after its snapshot has completed. Piggybacking is opportunistic: no
//! synchronizer ever *waits* on a peer, so the no-locks property above is
//! preserved.
//!
//! [`gp_seq`]: ScalableRcu::with_sharing

use crate::flavor::{RcuFlavor, RcuHandle};
use crate::metrics::RcuMetrics;
use crate::stall::StallWatchdog;
use citrus_chaos as chaos;
use citrus_obs::Stopwatch;
use citrus_sync::{Backoff, CachePadded, Registry, SlotHandle};
use core::cell::Cell;
use core::fmt;
use core::sync::atomic::{fence, AtomicU64, Ordering};
use core::time::Duration;
use std::time::Instant;

/// Flag bit: thread is inside a read-side critical section.
const FLAG: u64 = 1;
/// Counter increment (counter occupies bits 1..).
const COUNT_ONE: u64 = 2;

/// One registered thread's reader state.
struct ReaderSlot {
    /// `(sections_started << 1) | in_section`.
    word: CachePadded<AtomicU64>,
}

impl ReaderSlot {
    fn new() -> Self {
        Self {
            word: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

/// The paper's scalable RCU domain. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_rcu::{RcuFlavor, RcuHandle, ScalableRcu};
///
/// let rcu = ScalableRcu::new();
/// let h = rcu.register();
/// {
///     let _g = h.read_lock();
///     // ... traverse an RCU-protected structure ...
/// }
/// h.synchronize(); // waits for pre-existing readers on all threads
/// ```
pub struct ScalableRcu {
    registry: Registry<ReaderSlot>,
    /// Grace-period sequence for sharing (DESIGN.md §6d): even = no scan
    /// announced, odd = a scan announced at this value is in progress.
    /// Announcing a scan bumps even → odd; completing it bumps odd → even.
    gp_seq: AtomicU64,
    /// Grace-period sharing enabled for this domain (see
    /// [`Self::with_sharing`]).
    sharing: bool,
    grace_periods: AtomicU64,
    /// Piggybacked `synchronize` returns, counted unconditionally (the
    /// `stats`-gated counterpart lives in [`RcuMetrics`]).
    piggybacks: AtomicU64,
    metrics: RcuMetrics,
    watchdog: StallWatchdog,
}

impl ScalableRcu {
    /// Creates a new domain with no registered threads. Grace-period
    /// sharing follows the environment
    /// ([`gp_sharing_from_env`](crate::gp_sharing_from_env)).
    pub fn new() -> Self {
        Self::with_sharing(crate::gp_sharing_from_env())
    }

    /// Creates a new domain with grace-period sharing forced on or off,
    /// ignoring `CITRUS_RCU_NO_SHARING`. Sharing affects synchronize
    /// throughput only, never grace-period semantics.
    pub fn with_sharing(sharing: bool) -> Self {
        Self {
            registry: Registry::new(),
            gp_seq: AtomicU64::new(0),
            sharing,
            grace_periods: AtomicU64::new(0),
            piggybacks: AtomicU64::new(0),
            metrics: RcuMetrics::new(),
            watchdog: StallWatchdog::new(),
        }
    }

    /// `true` when this domain shares grace periods between concurrent
    /// synchronizers.
    #[must_use]
    pub fn sharing(&self) -> bool {
        self.sharing
    }
}

impl Default for ScalableRcu {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ScalableRcu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScalableRcu")
            .field("threads", &self.registry.slot_count())
            .field("grace_periods", &self.grace_periods())
            .field("sharing", &self.sharing)
            .field("piggybacks", &self.synchronize_piggybacks())
            .finish()
    }
}

impl RcuFlavor for ScalableRcu {
    type Handle<'a> = ScalableRcuHandle<'a>;

    const NAME: &'static str = "rcu-scalable";

    fn register(&self) -> ScalableRcuHandle<'_> {
        // Reuse needs no reset: a released slot always has its flag clear
        // (handles assert they are outside any read section on drop), and
        // the counter may continue from its old value — synchronize only
        // ever compares words for *change*.
        let slot = self.registry.register(ReaderSlot::new, |_| {});
        ScalableRcuHandle {
            domain: self,
            slot,
            nesting: Cell::new(0),
            stripe: self.metrics.assign_stripe(),
        }
    }

    fn grace_periods(&self) -> u64 {
        self.grace_periods.load(Ordering::Relaxed)
    }

    fn metrics(&self) -> &RcuMetrics {
        &self.metrics
    }

    fn set_stall_timeout(&self, timeout: Option<Duration>) {
        self.watchdog.set_timeout(timeout);
    }

    fn stall_events(&self) -> u64 {
        self.watchdog.events()
    }

    fn synchronize_piggybacks(&self) -> u64 {
        self.piggybacks.load(Ordering::Relaxed)
    }

    fn take_stall_diagnostic(&self) -> Option<String> {
        self.watchdog.take_diagnostic()
    }
}

/// Per-thread handle for [`ScalableRcu`].
pub struct ScalableRcuHandle<'d> {
    domain: &'d ScalableRcu,
    slot: SlotHandle<'d, ReaderSlot>,
    /// Read-side nesting depth; only the outermost level touches `word`.
    nesting: Cell<u32>,
    /// This handle's metric-counter stripe.
    stripe: usize,
}

impl RcuHandle for ScalableRcuHandle<'_> {
    #[inline]
    fn raw_read_lock(&self) {
        let n = self.nesting.get();
        self.nesting.set(n + 1);
        if n == 0 {
            let word = &self.slot.word;
            // Only this thread stores to its own word, so the update need
            // not be an RMW. The store must be Release: a synchronizer's
            // wait loop also exits when the word merely *changes*, i.e.
            // when it reads this store after we exited a section and
            // re-entered. In that case the previous unlock's release store
            // is never read (and post-C++20 its release sequence does not
            // extend through this plain store), so this store is the only
            // thing that can order the previous critical section's loads
            // before the synchronizer's return.
            let w = word.load(Ordering::Relaxed);
            word.store(w.wrapping_add(COUNT_ONE) | FLAG, Ordering::Release);
            // A synchronizer blocked on this word exits when it changes.
            chaos::wake_hint();
            // The store/fence window: a reader preempted here has
            // published its flag but not yet ordered its loads.
            chaos::point!("rcu-scalable/read-lock/between-store-and-fence");
            // Order the flag store before the critical section's loads
            // (paired with the fence at the start of `synchronize`): either
            // the synchronizer sees our flag, or we see every store it made
            // before synchronizing.
            fence(Ordering::SeqCst);
            self.domain.metrics.record_read_section(self.stripe);
        }
    }

    #[inline]
    fn raw_read_unlock(&self) {
        let n = self.nesting.get();
        // In a release build an unbalanced unlock would wrap the nesting
        // count to u32::MAX, leaving in_read_section() stuck true and
        // wedging every later grace period far from the bug — fail loudly
        // at the unbalanced call instead, in every build.
        let Some(rest) = n.checked_sub(1) else {
            panic!("read_unlock without matching read_lock");
        };
        self.nesting.set(rest);
        if rest == 0 {
            let word = &self.slot.word;
            let w = word.load(Ordering::Relaxed);
            // Single Release store, no separate release fence: this store
            // pairs with the synchronizer's Acquire load for the
            // "flag observed clear" exit of its wait loop. The other exit
            // — "counter changed" after we re-enter — is covered by
            // `raw_read_lock`'s Release store on the re-entry word, so
            // between the two stores every quiescence observation carries
            // this critical section's loads.
            word.store(w & !FLAG, Ordering::Release);
            // A synchronizer blocked on this word can now proceed.
            chaos::wake_hint();
        }
    }

    fn synchronize(&self) {
        debug_assert!(
            !self.in_read_section(),
            "synchronize_rcu inside a read-side critical section would self-deadlock"
        );
        let stopwatch = Stopwatch::start();
        let domain = self.domain;
        // Order the caller's prior stores (e.g. unlinking a node) before the
        // reader-state scan: any reader that starts after this fence will
        // observe those stores, so only readers whose flag we see can hold
        // pre-unlink references.
        fence(Ordering::SeqCst);
        // Grace-period sharing (DESIGN.md §6d). Snapshot the sequence and
        // compute how far it must advance before a grace period that
        // *started after the fence above* has fully completed: from an even
        // snapshot the next announcement is snap+1 and completes at snap+2;
        // from an odd snapshot the in-progress scan may predate our fence,
        // so only the following cycle (snap+3) is guaranteed to cover us.
        let share = domain.sharing.then(|| {
            let snap = domain.gp_seq.load(Ordering::SeqCst);
            (snap, if snap & 1 == 0 { 2 } else { 3 })
        });
        let caught_up = |(snap, needed): (u64, u64)| {
            // The piggyback decision window: a synchronizer paused here may
            // miss (or catch) a peer's completion.
            chaos::point!("rcu-scalable/synchronize/piggyback-check");
            domain.gp_seq.load(Ordering::SeqCst).wrapping_sub(snap) >= needed
        };
        // Announce our scan: turn an even sequence odd, or adopt the odd
        // value a peer already announced. Pure CAS loop — no waiting.
        let mut announced = None;
        if let Some(target) = share {
            loop {
                if caught_up(target) {
                    return self.finish_piggybacked(&stopwatch, 0);
                }
                let cur = domain.gp_seq.load(Ordering::SeqCst);
                if cur & 1 == 1 {
                    announced = Some(cur);
                    break;
                }
                if domain
                    .gp_seq
                    .compare_exchange(cur, cur.wrapping_add(1), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // gp_seq advanced: peers polling caught_up should look.
                    chaos::wake_hint();
                    announced = Some(cur.wrapping_add(1));
                    break;
                }
            }
        }
        if announced.is_some() {
            // Order our announcement before the slot scans in the SeqCst
            // total order. A peer that piggybacks on us snapshotted gp_seq
            // *before* our announcement, so any reader whose read-lock
            // fence precedes that snapshot also precedes this fence — the
            // fence-to-fence rule then guarantees our scan observes that
            // reader's current word, even though our own entry fence may
            // predate the reader. Without this, piggybacked coverage would
            // rest only on the announcement RMW's ordering.
            fence(Ordering::SeqCst);
        }
        let own = core::ptr::from_ref::<ReaderSlot>(&self.slot).cast::<u8>();
        let stall_limit = domain.watchdog.timeout();
        let mut scanned = 0u64;
        for (index, slot) in domain.registry.iter().enumerate() {
            // A synchronizer paused between slot scans lets later slots'
            // readers turn over many times before being snapshotted.
            chaos::point!("rcu-scalable/synchronize/scan-step");
            if let Some(target) = share {
                if caught_up(target) {
                    return self.finish_piggybacked(&stopwatch, scanned);
                }
            }
            // Skip our own slot (we are outside any read section).
            if core::ptr::from_ref::<ReaderSlot>(slot.value()).cast::<u8>() == own {
                continue;
            }
            scanned += 1;
            let word = &slot.value().word;
            let snapshot = word.load(Ordering::Acquire);
            if snapshot & FLAG == 0 {
                // Not inside a read-side critical section: nothing to wait
                // for. This also covers released (unclaimed) slots.
                continue;
            }
            // Wait until the thread either increments its counter (started
            // a *new* section — the pre-existing one is over) or clears its
            // flag. Any change of the word implies one of the two.
            let backoff = Backoff::new();
            let mut waited_since: Option<Instant> = None;
            let mut reported = false;
            while word.load(Ordering::Acquire) == snapshot {
                // While blocked on a reader is where piggybacking pays off:
                // a peer that started its scan after us can finish first.
                if let Some(target) = share {
                    if caught_up(target) {
                        return self.finish_piggybacked(&stopwatch, scanned);
                    }
                }
                // `caught_up` is a yield point: under a deterministic
                // schedule the reader may exit (and fire its wake) inside
                // that window, after the loop condition was sampled. Re-read
                // the word before parking or that wake is lost for good.
                if word.load(Ordering::Acquire) != snapshot {
                    break;
                }
                // Progress needs the reader's word to change (or a peer's
                // gp_seq completion): park under a deterministic schedule.
                chaos::blocked!("rcu-scalable/synchronize/reader-wait");
                backoff.snooze();
                if let Some(limit) = stall_limit {
                    let since = *waited_since.get_or_insert_with(Instant::now);
                    if !reported && since.elapsed() >= limit {
                        reported = true;
                        domain
                            .watchdog
                            .note(ScalableRcu::NAME, index, snapshot, since.elapsed());
                        domain.metrics.record_synchronize_stall(self.stripe);
                    }
                }
            }
        }
        // Pair with readers' release stores: everything their critical
        // sections read happens-before our return.
        fence(Ordering::SeqCst);
        if let Some(announced) = announced {
            // Publish completion of the announcement we scanned under.
            // Single attempt, never a wait: if it fails, a peer already
            // completed this very announcement. We must not complete a
            // *later* announcement — our scan did not start after it.
            let _ = domain.gp_seq.compare_exchange(
                announced,
                announced.wrapping_add(1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            // Completion published: blocked piggyback candidates re-check.
            chaos::wake_hint();
        }
        domain.grace_periods.fetch_add(1, Ordering::Relaxed);
        domain
            .metrics
            .record_synchronize(self.stripe, stopwatch.elapsed_ns());
        domain.metrics.record_scan_slots(scanned);
    }

    #[inline]
    fn in_read_section(&self) -> bool {
        self.nesting.get() > 0
    }
}

impl ScalableRcuHandle<'_> {
    /// Books a `synchronize` satisfied by a peer's grace period. The SeqCst
    /// load that observed the advanced sequence read (a successor of) the
    /// completer's release RMW — every write to `gp_seq` is an RMW, so the
    /// release sequence is unbroken — which makes all reader exits the
    /// completer acquired happen-before our return. `grace_periods` is not
    /// bumped: no new grace period ran.
    #[cold]
    fn finish_piggybacked(&self, stopwatch: &Stopwatch, scanned: u64) {
        let domain = self.domain;
        domain.piggybacks.fetch_add(1, Ordering::Relaxed);
        domain.metrics.record_synchronize_piggyback(self.stripe);
        domain
            .metrics
            .record_synchronize(self.stripe, stopwatch.elapsed_ns());
        domain.metrics.record_scan_slots(scanned);
    }
}

impl Drop for ScalableRcuHandle<'_> {
    fn drop(&mut self) {
        // A handle dropped mid-critical-section would leave its flag set
        // forever, wedging every future grace period.
        assert!(
            !self.in_read_section(),
            "RCU handle dropped inside a read-side critical section"
        );
    }
}

impl fmt::Debug for ScalableRcuHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScalableRcuHandle")
            .field("nesting", &self.nesting.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{RcuFlavor, RcuHandle};

    #[test]
    fn word_encoding_counts_sections() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        let word = &h.slot.word;
        assert_eq!(word.load(Ordering::Relaxed), 0);
        h.raw_read_lock();
        assert_eq!(word.load(Ordering::Relaxed), COUNT_ONE | FLAG);
        h.raw_read_unlock();
        assert_eq!(word.load(Ordering::Relaxed), COUNT_ONE);
        h.raw_read_lock();
        assert_eq!(word.load(Ordering::Relaxed), (2 * COUNT_ONE) | FLAG);
        h.raw_read_unlock();
    }

    #[test]
    fn nesting_only_outermost_touches_word() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        h.raw_read_lock();
        let after_outer = h.slot.word.load(Ordering::Relaxed);
        h.raw_read_lock();
        assert_eq!(h.slot.word.load(Ordering::Relaxed), after_outer);
        h.raw_read_unlock();
        assert!(h.in_read_section());
        assert_eq!(h.slot.word.load(Ordering::Relaxed), after_outer);
        h.raw_read_unlock();
        assert!(!h.in_read_section());
    }

    #[test]
    fn synchronize_skips_own_released_and_idle_slots() {
        let rcu = ScalableRcu::new();
        // A released slot from a past thread.
        drop(rcu.register());
        let h = rcu.register();
        // An idle (registered, not reading) slot.
        let _idle = rcu.register();
        h.synchronize(); // must not block
        assert_eq!(rcu.grace_periods(), 1);
    }

    #[test]
    #[should_panic(expected = "dropped inside a read-side critical section")]
    fn dropping_handle_in_cs_panics() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        h.raw_read_lock();
        drop(h);
    }

    // In every build profile, not just debug: a wrapped nesting counter
    // would wedge all later grace periods (the release-mode underflow bug).
    #[test]
    #[should_panic(expected = "read_unlock without matching read_lock")]
    fn unbalanced_unlock_panics() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        h.raw_read_unlock();
    }

    #[test]
    #[should_panic(expected = "read_unlock without matching read_lock")]
    fn unbalanced_unlock_after_balanced_section_panics() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        h.raw_read_lock();
        h.raw_read_unlock();
        h.raw_read_unlock();
    }

    #[test]
    fn debug_is_nonempty() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        assert!(format!("{rcu:?}").contains("ScalableRcu"));
        assert!(format!("{h:?}").contains("ScalableRcuHandle"));
    }

    #[test]
    fn gp_seq_announce_complete_cycle() {
        let rcu = ScalableRcu::with_sharing(true);
        assert!(rcu.sharing());
        let h = rcu.register();
        assert_eq!(rcu.gp_seq.load(Ordering::Relaxed), 0);
        h.synchronize();
        // Solo: announce 0→1, complete 1→2.
        assert_eq!(rcu.gp_seq.load(Ordering::Relaxed), 2);
        h.synchronize();
        assert_eq!(rcu.gp_seq.load(Ordering::Relaxed), 4);
        assert_eq!(rcu.grace_periods(), 2);
        assert_eq!(
            rcu.synchronize_piggybacks(),
            0,
            "solo callers never piggyback"
        );
    }

    #[test]
    fn unshared_domain_leaves_gp_seq_untouched() {
        let rcu = ScalableRcu::with_sharing(false);
        assert!(!rcu.sharing());
        let h = rcu.register();
        h.synchronize();
        assert_eq!(rcu.gp_seq.load(Ordering::Relaxed), 0);
        assert_eq!(rcu.grace_periods(), 1);
        assert_eq!(rcu.synchronize_piggybacks(), 0);
    }

    /// The piggyback mechanism, deterministically: a synchronizer blocked
    /// on a parked reader returns as soon as a (simulated) peer completes a
    /// grace period that started after the synchronizer's snapshot —
    /// without waiting for the reader and without bumping `grace_periods`.
    #[test]
    fn blocked_synchronize_piggybacks_on_peer_completion() {
        use std::sync::atomic::AtomicBool;
        let rcu = ScalableRcu::with_sharing(true);
        let reader_in = AtomicBool::new(false);
        let release_reader = AtomicBool::new(false);
        let sync_done = AtomicBool::new(false);

        std::thread::scope(|s| {
            s.spawn(|| {
                let h = rcu.register();
                let g = h.read_lock();
                reader_in.store(true, Ordering::SeqCst);
                while !release_reader.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                drop(g);
            });
            s.spawn(|| {
                while !reader_in.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                let h = rcu.register();
                h.synchronize(); // blocks on the parked reader
                sync_done.store(true, Ordering::SeqCst);
            });
            // Wait until the synchronizer announced its scan (0 → 1)...
            while rcu.gp_seq.load(Ordering::SeqCst) != 1 {
                std::hint::spin_loop();
            }
            assert!(!sync_done.load(Ordering::SeqCst));
            // ...then play the peer that adopted announcement 1, scanned,
            // and completed it (1 → 2): a full grace period that started
            // after the blocked synchronizer's snapshot of 0.
            rcu.gp_seq
                .compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst)
                .unwrap();
            while !sync_done.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            // It returned while the reader was still parked in-section.
            assert!(reader_in.load(Ordering::SeqCst));
            assert_eq!(rcu.synchronize_piggybacks(), 1);
            assert_eq!(
                rcu.grace_periods(),
                0,
                "a piggyback is not a new grace period"
            );
            release_reader.store(true, Ordering::SeqCst);
        });
    }

    /// The "counter changed" quiescence exit: a synchronizer blocked on a
    /// reader must return when the reader exits and *re-enters* (word
    /// changes but the flag never settles clear), not only when it
    /// observes the flag clear. `raw_read_lock`'s Release store is what
    /// makes that exit carry the first section's ordering — the re-entry
    /// store, not the unlock store, may be the value the synchronizer
    /// reads. (A loom/Miri model of this path would be stronger, but the
    /// workspace has no loom dependency and the wait loops spin.)
    #[test]
    fn synchronize_returns_when_blocking_reader_reenters() {
        use std::sync::atomic::AtomicBool;
        let rcu = ScalableRcu::with_sharing(false);
        // The watchdog is the "synchronizer is blocked on us" signal.
        rcu.set_stall_timeout(Some(Duration::from_millis(1)));
        let h = rcu.register();
        h.raw_read_lock();
        let sync_done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let hs = rcu.register();
                hs.synchronize();
                sync_done.store(true, Ordering::SeqCst);
            });
            // A stall event proves the synchronizer snapshotted our first
            // section and is waiting for the word to change.
            let backoff = Backoff::new();
            while rcu.stall_events() == 0 {
                backoff.snooze();
            }
            assert!(!sync_done.load(Ordering::SeqCst));
            // Exit and immediately re-enter: the counter bumps, so the
            // synchronizer may exit on either the transient clear flag or
            // the changed counter — both must release it.
            h.raw_read_unlock();
            h.raw_read_lock();
            while !sync_done.load(Ordering::SeqCst) {
                backoff.snooze();
            }
            assert!(h.in_read_section());
            h.raw_read_unlock();
        });
        assert_eq!(rcu.grace_periods(), 1);
    }

    /// An *odd* snapshot must not piggyback on the in-progress scan it
    /// observed (that scan may predate the caller): from snapshot 1 the
    /// completion 1→2 alone is insufficient; only the next full cycle is.
    #[test]
    fn odd_snapshot_needs_a_full_extra_cycle() {
        use std::sync::atomic::AtomicBool;
        let rcu = ScalableRcu::with_sharing(true);
        // Simulate a peer's scan already announced before we enter.
        rcu.gp_seq.store(1, Ordering::SeqCst);
        let reader_in = AtomicBool::new(false);
        let release_reader = AtomicBool::new(false);
        let sync_done = AtomicBool::new(false);

        std::thread::scope(|s| {
            s.spawn(|| {
                let h = rcu.register();
                let g = h.read_lock();
                reader_in.store(true, Ordering::SeqCst);
                while !release_reader.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                drop(g);
            });
            s.spawn(|| {
                while !reader_in.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                let h = rcu.register();
                h.synchronize(); // adopts announcement 1, blocks on reader
                sync_done.store(true, Ordering::SeqCst);
            });
            while !reader_in.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            // "Complete" the pre-existing announcement: 1 → 2. From the
            // odd snapshot 1 this must NOT satisfy the blocked caller
            // (needed = 3), so it keeps waiting on the reader.
            std::thread::sleep(Duration::from_millis(50));
            rcu.gp_seq
                .compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst)
                .unwrap();
            std::thread::sleep(Duration::from_millis(100));
            assert!(
                !sync_done.load(Ordering::SeqCst),
                "odd snapshot piggybacked on a scan that may predate it"
            );
            release_reader.store(true, Ordering::SeqCst);
        });
        assert!(sync_done.load(Ordering::SeqCst));
    }
}
