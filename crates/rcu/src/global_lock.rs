//! Classic user-space RCU with a globally locked `synchronize_rcu`
//! (the "standard RCU implementation" of the paper's Figure 8).
//!
//! This models liburcu's memory-barrier flavor (Desnoyers, McKenney, Stern,
//! Dagenais, Walpole, *User-level implementations of Read-Copy Update*,
//! IEEE TPDS 2012):
//!
//! * A global *grace-period phase* counter.
//! * On `rcu_read_lock` a thread copies the current phase into its own
//!   reader word and sets an active bit.
//! * `synchronize_rcu` **acquires a global lock**, then runs two phase
//!   flips; after each flip it waits until every reader is either inactive
//!   or has observed the new phase.
//!
//! The two flips mirror liburcu: a reader may have fetched the old phase
//! but not yet published its reader word when the first flip happens;
//! waiting out two phases ensures no reader from before the grace period
//! survives into it.
//!
//! The global lock is the scaling bottleneck the paper identifies: with
//! many concurrent updaters each executing `synchronize_rcu`, updates
//! serialize behind this one lock *and* each then waits a full grace
//! period, so throughput collapses as update concurrency grows (Fig. 8,
//! left). [`ScalableRcu`](crate::ScalableRcu) removes exactly this
//! coordination.

use crate::flavor::{RcuFlavor, RcuHandle};
use crate::metrics::RcuMetrics;
use crate::stall::StallWatchdog;
use citrus_chaos as chaos;
use citrus_obs::Stopwatch;
use citrus_sync::{Backoff, CachePadded, Registry, SlotHandle, SpinMutex};
use core::cell::Cell;
use core::fmt;
use core::sync::atomic::{fence, AtomicU64, Ordering};
use core::time::Duration;
use std::time::Instant;

/// Active bit: the thread is inside a read-side critical section.
const ACTIVE: u64 = 1;
/// Phase counter step (phase occupies bits 1..).
const PHASE_ONE: u64 = 2;

/// One registered thread's reader state: `0` when quiescent, otherwise
/// `(observed_phase) | ACTIVE` where `observed_phase` is the global phase
/// value (already shifted, bits 1..) at `rcu_read_lock` time.
struct ReaderSlot {
    word: CachePadded<AtomicU64>,
}

impl ReaderSlot {
    fn new() -> Self {
        Self {
            word: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

/// Classic global-lock user-space RCU domain. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle};
///
/// let rcu = GlobalLockRcu::new();
/// let h = rcu.register();
/// {
///     let _g = h.read_lock();
/// }
/// h.synchronize();
/// ```
pub struct GlobalLockRcu {
    /// Serializes all `synchronize_rcu` callers — the Fig. 8 bottleneck.
    gp_lock: SpinMutex<()>,
    /// Global grace-period phase, in steps of [`PHASE_ONE`].
    gp_phase: AtomicU64,
    registry: Registry<ReaderSlot>,
    grace_periods: AtomicU64,
    metrics: RcuMetrics,
    watchdog: StallWatchdog,
}

impl GlobalLockRcu {
    /// Creates a new domain with no registered threads.
    pub fn new() -> Self {
        Self {
            gp_lock: SpinMutex::new(()),
            gp_phase: AtomicU64::new(PHASE_ONE),
            registry: Registry::new(),
            grace_periods: AtomicU64::new(0),
            metrics: RcuMetrics::new(),
            watchdog: StallWatchdog::new(),
        }
    }
}

impl Default for GlobalLockRcu {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for GlobalLockRcu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalLockRcu")
            .field("threads", &self.registry.slot_count())
            .field("grace_periods", &self.grace_periods())
            .finish()
    }
}

impl RcuFlavor for GlobalLockRcu {
    type Handle<'a> = GlobalLockRcuHandle<'a>;

    const NAME: &'static str = "rcu-global-lock";

    fn register(&self) -> GlobalLockRcuHandle<'_> {
        // Released slots always read 0 (quiescent); no reset needed.
        let slot = self.registry.register(ReaderSlot::new, |_| {});
        GlobalLockRcuHandle {
            domain: self,
            slot,
            nesting: Cell::new(0),
            stripe: self.metrics.assign_stripe(),
        }
    }

    fn grace_periods(&self) -> u64 {
        self.grace_periods.load(Ordering::Relaxed)
    }

    fn metrics(&self) -> &RcuMetrics {
        &self.metrics
    }

    fn set_stall_timeout(&self, timeout: Option<Duration>) {
        self.watchdog.set_timeout(timeout);
    }

    fn stall_events(&self) -> u64 {
        self.watchdog.events()
    }

    fn take_stall_diagnostic(&self) -> Option<String> {
        self.watchdog.take_diagnostic()
    }
}

/// Per-thread handle for [`GlobalLockRcu`].
pub struct GlobalLockRcuHandle<'d> {
    domain: &'d GlobalLockRcu,
    slot: SlotHandle<'d, ReaderSlot>,
    nesting: Cell<u32>,
    /// This handle's metric-counter stripe.
    stripe: usize,
}

impl RcuHandle for GlobalLockRcuHandle<'_> {
    #[inline]
    fn raw_read_lock(&self) {
        let n = self.nesting.get();
        self.nesting.set(n + 1);
        if n == 0 {
            let phase = self.domain.gp_phase.load(Ordering::Relaxed);
            self.slot.word.store(phase | ACTIVE, Ordering::Relaxed);
            // A reader preempted here has published a (possibly stale)
            // phase but not yet ordered its loads — the window the two
            // phase flips exist to cover.
            chaos::point("rcu-global-lock/read-lock/between-store-and-fence");
            // Pair with the synchronizer's fence: it either sees us active,
            // or we see all its pre-grace-period stores.
            fence(Ordering::SeqCst);
            self.domain.metrics.record_read_section(self.stripe);
        }
    }

    #[inline]
    fn raw_read_unlock(&self) {
        let n = self.nesting.get();
        debug_assert!(n > 0, "read_unlock without matching read_lock");
        self.nesting.set(n - 1);
        if n == 1 {
            // Order the section's loads before the quiescence signal.
            fence(Ordering::Release);
            self.slot.word.store(0, Ordering::Release);
        }
    }

    fn synchronize(&self) {
        debug_assert!(
            !self.in_read_section(),
            "synchronize_rcu inside a read-side critical section would self-deadlock"
        );
        let domain = self.domain;
        // Time from before lock acquisition: queueing behind other
        // synchronizers is precisely the latency Fig. 8 is about.
        let stopwatch = Stopwatch::start();
        // === The global lock: all synchronizers serialize here. ===
        let _gp = domain.gp_lock.lock();
        fence(Ordering::SeqCst);
        let own = core::ptr::from_ref::<ReaderSlot>(&self.slot).cast::<u8>();
        // Two phase flips, as in liburcu: a reader may fetch the phase and
        // publish its word a moment later, so one flip can miss it; it
        // cannot survive two.
        let stall_limit = domain.watchdog.timeout();
        for _ in 0..2 {
            // A synchronizer paused between flips holds the global lock
            // while readers keep entering under the first new phase.
            chaos::point("rcu-global-lock/synchronize/phase-flip");
            let new_phase = domain.gp_phase.fetch_add(PHASE_ONE, Ordering::SeqCst) + PHASE_ONE;
            for (index, slot) in domain.registry.iter().enumerate() {
                chaos::point("rcu-global-lock/synchronize/scan-step");
                if core::ptr::from_ref::<ReaderSlot>(slot.value()).cast::<u8>() == own {
                    continue;
                }
                let word = &slot.value().word;
                let backoff = Backoff::new();
                let mut waited_since: Option<Instant> = None;
                let mut reported = false;
                loop {
                    let w = word.load(Ordering::Acquire);
                    // Quiescent, or entered at (or after) the new phase:
                    // not a pre-existing reader.
                    if w & ACTIVE == 0 || (w & !ACTIVE) >= new_phase {
                        break;
                    }
                    backoff.snooze();
                    if let Some(limit) = stall_limit {
                        let since = *waited_since.get_or_insert_with(Instant::now);
                        if !reported && since.elapsed() >= limit {
                            reported = true;
                            domain
                                .watchdog
                                .note(GlobalLockRcu::NAME, index, w, since.elapsed());
                            domain.metrics.record_synchronize_stall(self.stripe);
                        }
                    }
                }
            }
        }
        fence(Ordering::SeqCst);
        domain.grace_periods.fetch_add(1, Ordering::Relaxed);
        domain
            .metrics
            .record_synchronize(self.stripe, stopwatch.elapsed_ns());
    }

    #[inline]
    fn in_read_section(&self) -> bool {
        self.nesting.get() > 0
    }
}

impl Drop for GlobalLockRcuHandle<'_> {
    fn drop(&mut self) {
        assert!(
            !self.in_read_section(),
            "RCU handle dropped inside a read-side critical section"
        );
    }
}

impl fmt::Debug for GlobalLockRcuHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalLockRcuHandle")
            .field("nesting", &self.nesting.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn reader_word_carries_phase() {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        h.raw_read_lock();
        let w = h.slot.word.load(Ordering::Relaxed);
        assert_eq!(w & ACTIVE, ACTIVE);
        assert_eq!(w & !ACTIVE, rcu.gp_phase.load(Ordering::Relaxed));
        h.raw_read_unlock();
        assert_eq!(h.slot.word.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn synchronize_advances_phase_twice() {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        let before = rcu.gp_phase.load(Ordering::Relaxed);
        h.synchronize();
        assert_eq!(
            rcu.gp_phase.load(Ordering::Relaxed),
            before + 2 * PHASE_ONE,
            "liburcu-style grace periods flip the phase twice"
        );
    }

    #[test]
    fn synchronizers_serialize_on_the_global_lock() {
        // Demonstrates (not just asserts) the Fig. 8 mechanism: while one
        // synchronizer waits on a reader, a second synchronizer cannot even
        // start its grace period.
        let rcu = GlobalLockRcu::new();
        let reader_in = AtomicBool::new(false);
        let release_reader = AtomicBool::new(false);
        let second_done = AtomicBool::new(false);

        std::thread::scope(|s| {
            s.spawn(|| {
                let h = rcu.register();
                let g = h.read_lock();
                reader_in.store(true, Ordering::SeqCst);
                let backoff = Backoff::new();
                while !release_reader.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                drop(g);
            });
            s.spawn(|| {
                let h = rcu.register();
                let backoff = Backoff::new();
                while !reader_in.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                h.synchronize(); // blocks on the reader
            });
            s.spawn(|| {
                let h = rcu.register();
                let backoff = Backoff::new();
                while !reader_in.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                // Give the first synchronizer time to take the lock.
                std::thread::sleep(Duration::from_millis(50));
                h.synchronize(); // must wait behind the first one
                second_done.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(150));
            assert!(
                !second_done.load(Ordering::SeqCst),
                "second synchronizer finished while the first was blocked — no serialization?"
            );
            release_reader.store(true, Ordering::SeqCst);
        });
        assert!(second_done.load(Ordering::SeqCst));
    }

    #[test]
    fn debug_is_nonempty() {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        assert!(format!("{rcu:?}").contains("GlobalLockRcu"));
        assert!(format!("{h:?}").contains("GlobalLockRcuHandle"));
    }
}
