//! Classic user-space RCU with a globally locked `synchronize_rcu`
//! (the "standard RCU implementation" of the paper's Figure 8).
//!
//! This models liburcu's memory-barrier flavor (Desnoyers, McKenney, Stern,
//! Dagenais, Walpole, *User-level implementations of Read-Copy Update*,
//! IEEE TPDS 2012):
//!
//! * A global *grace-period phase* counter.
//! * On `rcu_read_lock` a thread copies the current phase into its own
//!   reader word and sets an active bit.
//! * `synchronize_rcu` **acquires a global lock**, then runs two phase
//!   flips; after each flip it waits until every reader is either inactive
//!   or has observed the new phase.
//!
//! The two flips mirror liburcu: a reader may have fetched the old phase
//! but not yet published its reader word when the first flip happens;
//! waiting out two phases ensures no reader from before the grace period
//! survives into it.
//!
//! The global lock is the scaling bottleneck the paper identifies: with
//! many concurrent updaters each executing `synchronize_rcu`, updates
//! serialize behind this one lock *and* each then waits a full grace
//! period, so throughput collapses as update concurrency grows (Fig. 8,
//! left). [`ScalableRcu`](crate::ScalableRcu) removes exactly this
//! coordination.

use crate::flavor::{RcuFlavor, RcuHandle};
use crate::metrics::RcuMetrics;
use crate::stall::StallWatchdog;
use citrus_chaos as chaos;
use citrus_obs::Stopwatch;
use citrus_sync::{Backoff, CachePadded, Registry, SlotHandle, SpinMutex};
use core::cell::Cell;
use core::fmt;
use core::sync::atomic::{fence, AtomicU64, Ordering};
use core::time::Duration;
use std::time::Instant;

/// Active bit: the thread is inside a read-side critical section.
const ACTIVE: u64 = 1;
/// Phase counter step (phase occupies bits 1..).
const PHASE_ONE: u64 = 2;

/// One registered thread's reader state: `0` when quiescent, otherwise
/// `(observed_phase) | ACTIVE` where `observed_phase` is the global phase
/// value (already shifted, bits 1..) at `rcu_read_lock` time.
struct ReaderSlot {
    word: CachePadded<AtomicU64>,
}

impl ReaderSlot {
    fn new() -> Self {
        Self {
            word: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

/// Classic global-lock user-space RCU domain. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle};
///
/// let rcu = GlobalLockRcu::new();
/// let h = rcu.register();
/// {
///     let _g = h.read_lock();
/// }
/// h.synchronize();
/// ```
pub struct GlobalLockRcu {
    /// Serializes all `synchronize_rcu` callers — the Fig. 8 bottleneck.
    gp_lock: SpinMutex<()>,
    /// Global grace-period phase, in steps of [`PHASE_ONE`].
    gp_phase: AtomicU64,
    /// Queued-waiter grace-period sharing enabled (urcu-style; see
    /// [`Self::with_sharing`]).
    sharing: bool,
    registry: Registry<ReaderSlot>,
    grace_periods: AtomicU64,
    /// Piggybacked `synchronize` returns, counted unconditionally.
    piggybacks: AtomicU64,
    metrics: RcuMetrics,
    watchdog: StallWatchdog,
}

impl GlobalLockRcu {
    /// Creates a new domain with no registered threads. Grace-period
    /// sharing follows the environment
    /// ([`gp_sharing_from_env`](crate::gp_sharing_from_env)).
    pub fn new() -> Self {
        Self::with_sharing(crate::gp_sharing_from_env())
    }

    /// Creates a new domain with grace-period sharing forced on or off,
    /// ignoring `CITRUS_RCU_NO_SHARING`. With sharing on, a caller that
    /// queued behind `gp_lock` while two full phase flips elapsed returns
    /// on acquiry without flipping again (liburcu's batching idea);
    /// semantics are unchanged either way.
    pub fn with_sharing(sharing: bool) -> Self {
        Self {
            gp_lock: SpinMutex::new(()),
            gp_phase: AtomicU64::new(PHASE_ONE),
            sharing,
            registry: Registry::new(),
            grace_periods: AtomicU64::new(0),
            piggybacks: AtomicU64::new(0),
            metrics: RcuMetrics::new(),
            watchdog: StallWatchdog::new(),
        }
    }

    /// `true` when this domain shares grace periods between queued
    /// synchronizers.
    #[must_use]
    pub fn sharing(&self) -> bool {
        self.sharing
    }
}

impl Default for GlobalLockRcu {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for GlobalLockRcu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalLockRcu")
            .field("threads", &self.registry.slot_count())
            .field("grace_periods", &self.grace_periods())
            .field("sharing", &self.sharing)
            .field("piggybacks", &self.synchronize_piggybacks())
            .finish()
    }
}

impl RcuFlavor for GlobalLockRcu {
    type Handle<'a> = GlobalLockRcuHandle<'a>;

    const NAME: &'static str = "rcu-global-lock";

    fn register(&self) -> GlobalLockRcuHandle<'_> {
        // Released slots always read 0 (quiescent); no reset needed.
        let slot = self.registry.register(ReaderSlot::new, |_| {});
        GlobalLockRcuHandle {
            domain: self,
            slot,
            nesting: Cell::new(0),
            stripe: self.metrics.assign_stripe(),
        }
    }

    fn grace_periods(&self) -> u64 {
        self.grace_periods.load(Ordering::Relaxed)
    }

    fn metrics(&self) -> &RcuMetrics {
        &self.metrics
    }

    fn set_stall_timeout(&self, timeout: Option<Duration>) {
        self.watchdog.set_timeout(timeout);
    }

    fn stall_events(&self) -> u64 {
        self.watchdog.events()
    }

    fn synchronize_piggybacks(&self) -> u64 {
        self.piggybacks.load(Ordering::Relaxed)
    }

    fn take_stall_diagnostic(&self) -> Option<String> {
        self.watchdog.take_diagnostic()
    }
}

/// Per-thread handle for [`GlobalLockRcu`].
pub struct GlobalLockRcuHandle<'d> {
    domain: &'d GlobalLockRcu,
    slot: SlotHandle<'d, ReaderSlot>,
    nesting: Cell<u32>,
    /// This handle's metric-counter stripe.
    stripe: usize,
}

impl RcuHandle for GlobalLockRcuHandle<'_> {
    #[inline]
    fn raw_read_lock(&self) {
        let n = self.nesting.get();
        self.nesting.set(n + 1);
        if n == 0 {
            let phase = self.domain.gp_phase.load(Ordering::Relaxed);
            // Release, not Relaxed: the synchronizer's flip wait-loop also
            // exits when it observes us re-entered *at the new phase* —
            // i.e. when its Acquire load reads this store after an
            // exit-and-re-enter. The previous unlock's release store is
            // never read on that path (and post-C++20 its release sequence
            // does not extend through this plain store), so this store
            // must itself carry the previous critical section's loads.
            self.slot.word.store(phase | ACTIVE, Ordering::Release);
            // A synchronizer blocked on this word exits once it observes
            // a re-entry at the new phase.
            chaos::wake_hint();
            // A reader preempted here has published a (possibly stale)
            // phase but not yet ordered its loads — the window the two
            // phase flips exist to cover.
            chaos::point!("rcu-global-lock/read-lock/between-store-and-fence");
            // Pair with the synchronizer's fence: it either sees us active,
            // or we see all its pre-grace-period stores.
            fence(Ordering::SeqCst);
            self.domain.metrics.record_read_section(self.stripe);
        }
    }

    #[inline]
    fn raw_read_unlock(&self) {
        let n = self.nesting.get();
        // Same underflow hazard as the scalable flavor: wrapping to
        // u32::MAX in release builds would pin in_read_section() true and
        // wedge later grace periods — fail loudly in every build.
        let Some(rest) = n.checked_sub(1) else {
            panic!("read_unlock without matching read_lock");
        };
        self.nesting.set(rest);
        if rest == 0 {
            // Single Release store, no separate release fence: it pairs
            // with the synchronizer's Acquire load for the "quiescent
            // (word 0)" exit of the flip wait-loop. The other exit —
            // "re-entered at the new phase" — is covered by
            // `raw_read_lock`'s Release store on the re-entry word.
            self.slot.word.store(0, Ordering::Release);
            // A synchronizer blocked on this word can now proceed.
            chaos::wake_hint();
        }
    }

    fn synchronize(&self) {
        debug_assert!(
            !self.in_read_section(),
            "synchronize_rcu inside a read-side critical section would self-deadlock"
        );
        let domain = self.domain;
        // Time from before lock acquisition: queueing behind other
        // synchronizers is precisely the latency Fig. 8 is about.
        let stopwatch = Stopwatch::start();
        // Order the caller's prior stores before the phase snapshot below
        // (and before the flips, for the non-shared path).
        fence(Ordering::SeqCst);
        // Grace-period sharing (DESIGN.md §6d), urcu-style: snapshot the
        // phase *before* queueing on the lock.
        let snap = domain
            .sharing
            .then(|| domain.gp_phase.load(Ordering::SeqCst));
        // === The global lock: all synchronizers serialize here. ===
        let _gp = domain.gp_lock.lock();
        if let Some(snap) = snap {
            // The piggyback decision window for the queued waiter.
            chaos::point!("rcu-global-lock/synchronize/piggyback-check");
            if domain.gp_phase.load(Ordering::SeqCst).wrapping_sub(snap) >= 2 * PHASE_ONE {
                // Two full flips elapsed while we queued. Both started
                // after our snapshot (their fetch_adds are SeqCst-after our
                // phase load), and their reader waits completed before the
                // prior holders released the lock — which happens-before
                // our acquiry. Every reader in-section at our fence has
                // exited; return without flipping.
                drop(_gp);
                domain.piggybacks.fetch_add(1, Ordering::Relaxed);
                domain.metrics.record_synchronize_piggyback(self.stripe);
                domain
                    .metrics
                    .record_synchronize(self.stripe, stopwatch.elapsed_ns());
                domain.metrics.record_scan_slots(0);
                return;
            }
        }
        let own = core::ptr::from_ref::<ReaderSlot>(&self.slot).cast::<u8>();
        // Two phase flips, as in liburcu: a reader may fetch the phase and
        // publish its word a moment later, so one flip can miss it; it
        // cannot survive two.
        let stall_limit = domain.watchdog.timeout();
        let mut scanned = 0u64;
        for _ in 0..2 {
            // A synchronizer paused between flips holds the global lock
            // while readers keep entering under the first new phase.
            chaos::point!("rcu-global-lock/synchronize/phase-flip");
            let new_phase = domain.gp_phase.fetch_add(PHASE_ONE, Ordering::SeqCst) + PHASE_ONE;
            // Order the flip before the reader scan in the SeqCst total
            // order: a queued waiter that piggybacks on this flip pair
            // snapshotted the phase before this fetch_add, so readers whose
            // read-lock fences precede that snapshot also precede this
            // fence and are therefore observed below with current words.
            fence(Ordering::SeqCst);
            for (index, slot) in domain.registry.iter().enumerate() {
                chaos::point!("rcu-global-lock/synchronize/scan-step");
                if core::ptr::from_ref::<ReaderSlot>(slot.value()).cast::<u8>() == own {
                    continue;
                }
                scanned += 1;
                let word = &slot.value().word;
                let backoff = Backoff::new();
                let mut waited_since: Option<Instant> = None;
                let mut reported = false;
                loop {
                    let w = word.load(Ordering::Acquire);
                    // Quiescent, or entered at (or after) the new phase:
                    // not a pre-existing reader.
                    if w & ACTIVE == 0 || (w & !ACTIVE) >= new_phase {
                        break;
                    }
                    // Progress needs this reader to exit or re-enter:
                    // park under a deterministic schedule.
                    chaos::blocked!("rcu-global-lock/synchronize/reader-wait");
                    backoff.snooze();
                    if let Some(limit) = stall_limit {
                        let since = *waited_since.get_or_insert_with(Instant::now);
                        if !reported && since.elapsed() >= limit {
                            reported = true;
                            domain
                                .watchdog
                                .note(GlobalLockRcu::NAME, index, w, since.elapsed());
                            domain.metrics.record_synchronize_stall(self.stripe);
                        }
                    }
                }
            }
        }
        fence(Ordering::SeqCst);
        domain.grace_periods.fetch_add(1, Ordering::Relaxed);
        domain
            .metrics
            .record_synchronize(self.stripe, stopwatch.elapsed_ns());
        domain.metrics.record_scan_slots(scanned);
    }

    #[inline]
    fn in_read_section(&self) -> bool {
        self.nesting.get() > 0
    }
}

impl Drop for GlobalLockRcuHandle<'_> {
    fn drop(&mut self) {
        assert!(
            !self.in_read_section(),
            "RCU handle dropped inside a read-side critical section"
        );
    }
}

impl fmt::Debug for GlobalLockRcuHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalLockRcuHandle")
            .field("nesting", &self.nesting.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn reader_word_carries_phase() {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        h.raw_read_lock();
        let w = h.slot.word.load(Ordering::Relaxed);
        assert_eq!(w & ACTIVE, ACTIVE);
        assert_eq!(w & !ACTIVE, rcu.gp_phase.load(Ordering::Relaxed));
        h.raw_read_unlock();
        assert_eq!(h.slot.word.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn synchronize_advances_phase_twice() {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        let before = rcu.gp_phase.load(Ordering::Relaxed);
        h.synchronize();
        assert_eq!(
            rcu.gp_phase.load(Ordering::Relaxed),
            before + 2 * PHASE_ONE,
            "liburcu-style grace periods flip the phase twice"
        );
    }

    #[test]
    fn synchronizers_serialize_on_the_global_lock() {
        // Demonstrates (not just asserts) the Fig. 8 mechanism: while one
        // synchronizer waits on a reader, a second synchronizer cannot even
        // start its grace period.
        let rcu = GlobalLockRcu::new();
        let reader_in = AtomicBool::new(false);
        let release_reader = AtomicBool::new(false);
        let second_done = AtomicBool::new(false);

        std::thread::scope(|s| {
            s.spawn(|| {
                let h = rcu.register();
                let g = h.read_lock();
                reader_in.store(true, Ordering::SeqCst);
                let backoff = Backoff::new();
                while !release_reader.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                drop(g);
            });
            s.spawn(|| {
                let h = rcu.register();
                let backoff = Backoff::new();
                while !reader_in.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                h.synchronize(); // blocks on the reader
            });
            s.spawn(|| {
                let h = rcu.register();
                let backoff = Backoff::new();
                while !reader_in.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                // Give the first synchronizer time to take the lock.
                std::thread::sleep(Duration::from_millis(50));
                h.synchronize(); // must wait behind the first one
                second_done.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(150));
            assert!(
                !second_done.load(Ordering::SeqCst),
                "second synchronizer finished while the first was blocked — no serialization?"
            );
            release_reader.store(true, Ordering::SeqCst);
        });
        assert!(second_done.load(Ordering::SeqCst));
    }

    #[test]
    fn debug_is_nonempty() {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        assert!(format!("{rcu:?}").contains("GlobalLockRcu"));
        assert!(format!("{h:?}").contains("GlobalLockRcuHandle"));
    }

    // In every build profile, not just debug (the release-mode nesting
    // underflow would wedge all later grace periods).
    #[test]
    #[should_panic(expected = "read_unlock without matching read_lock")]
    fn unbalanced_unlock_panics() {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        h.raw_read_unlock();
    }

    /// The "re-entered at the new phase" quiescence exit: a synchronizer
    /// blocked on a reader must also be released when the reader exits and
    /// re-enters with the freshly flipped phase, not only when it observes
    /// the word quiescent (0). `raw_read_lock`'s Release store is what
    /// makes that exit carry the first section's ordering. The flavor runs
    /// two flips, so the reader may need to turn over once per flip.
    #[test]
    fn synchronize_returns_when_blocking_reader_reenters() {
        let rcu = GlobalLockRcu::with_sharing(false);
        // The watchdog is the "synchronizer is blocked on us" signal.
        rcu.set_stall_timeout(Some(Duration::from_millis(1)));
        let h = rcu.register();
        h.raw_read_lock();
        let sync_done = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let hs = rcu.register();
                hs.synchronize();
                sync_done.store(true, Ordering::SeqCst);
            });
            // One stall event per flip the synchronizer blocks in; after
            // each, turn the section over so the word picks up the current
            // phase. The second flip can race our first re-entry (if the
            // re-entry already read the post-flip-2 phase there is no
            // second stall), hence the `sync_done` escape.
            let backoff = Backoff::new();
            for events in 1..=2u64 {
                while rcu.stall_events() < events && !sync_done.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                if sync_done.load(Ordering::SeqCst) {
                    break;
                }
                h.raw_read_unlock();
                h.raw_read_lock();
            }
            while !sync_done.load(Ordering::SeqCst) {
                backoff.snooze();
            }
            assert!(h.in_read_section());
            h.raw_read_unlock();
        });
        assert_eq!(rcu.grace_periods(), 1);
    }

    /// Queued-waiter sharing: while synchronizer A is blocked mid-grace-
    /// period on a parked reader, B and C queue behind the lock (snapshots
    /// taken after A's first flip). Once the reader leaves, whichever of
    /// B/C acquires the lock second sees both the tail of A's grace period
    /// and the first acquirer's full one — two flip pairs after its
    /// snapshot — and piggybacks.
    #[test]
    fn queued_synchronizers_piggyback() {
        // The scenario's key ordering — B and C snapshot the phase before
        // A's grace period completes — is enforced only by the sleep after
        // `queued` reaches 2 (the increment precedes the snapshot inside
        // `synchronize`, which is not observable from outside). Under
        // pathological scheduling both snapshots can land after A's grace
        // period, so no one piggybacks; retry a few times before calling
        // that a failure.
        for attempt in 0.. {
            let piggybacks = queued_piggyback_scenario();
            if piggybacks >= 1 {
                return;
            }
            assert!(
                attempt < 5,
                "no queued waiter piggybacked in any of 5 attempts"
            );
        }
    }

    /// One run of the three-synchronizer scenario above, on a fresh
    /// domain; returns the piggyback count.
    fn queued_piggyback_scenario() -> u64 {
        let rcu = GlobalLockRcu::with_sharing(true);
        assert!(rcu.sharing());
        let reader_in = AtomicBool::new(false);
        let release_reader = AtomicBool::new(false);
        let first_flipped = AtomicBool::new(false);
        let queued = AtomicU64::new(0);

        std::thread::scope(|s| {
            s.spawn(|| {
                let h = rcu.register();
                let g = h.read_lock();
                reader_in.store(true, Ordering::SeqCst);
                let backoff = Backoff::new();
                while !release_reader.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                drop(g);
            });
            let phase_at_start = rcu.gp_phase.load(Ordering::SeqCst);
            s.spawn(|| {
                let h = rcu.register();
                let backoff = Backoff::new();
                while !reader_in.load(Ordering::SeqCst) {
                    backoff.snooze();
                }
                h.synchronize(); // A: blocks on the reader mid-GP
            });
            // Wait for A's first flip so B and C snapshot after it.
            let backoff = Backoff::new();
            while rcu.gp_phase.load(Ordering::SeqCst) == phase_at_start {
                backoff.snooze();
            }
            first_flipped.store(true, Ordering::SeqCst);
            for _ in 0..2 {
                s.spawn(|| {
                    let h = rcu.register();
                    let backoff = Backoff::new();
                    while !first_flipped.load(Ordering::SeqCst) {
                        backoff.snooze();
                    }
                    queued.fetch_add(1, Ordering::SeqCst);
                    h.synchronize(); // B / C: queue behind A
                });
            }
            // Let B and C take their snapshots and queue behind the lock.
            let backoff = Backoff::new();
            while queued.load(Ordering::SeqCst) != 2 {
                backoff.snooze();
            }
            std::thread::sleep(Duration::from_millis(100));
            release_reader.store(true, Ordering::SeqCst);
        });
        // All three callers were satisfied, each either by its own grace
        // period or by riding a peer's.
        assert_eq!(rcu.grace_periods() + rcu.synchronize_piggybacks(), 3);
        rcu.synchronize_piggybacks()
    }

    /// With sharing off, queued waiters always flip for themselves.
    #[test]
    fn unshared_queued_synchronizers_never_piggyback() {
        let rcu = GlobalLockRcu::with_sharing(false);
        assert!(!rcu.sharing());
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let h = rcu.register();
                    for _ in 0..20 {
                        h.synchronize();
                    }
                });
            }
        });
        assert_eq!(rcu.synchronize_piggybacks(), 0);
        assert_eq!(rcu.grace_periods(), 60);
    }
}
