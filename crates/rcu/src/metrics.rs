//! Per-domain RCU metrics: read-section volume and `synchronize_rcu`
//! count + latency, feeding a [`citrus_obs::MetricsRegistry`].
//!
//! All instruments come from `citrus-obs` and are no-ops unless this crate
//! is built with the `stats` feature; the only unconditional state is a
//! cold-path stripe allocator touched once per [`register`]
//! (`RcuFlavor::register`).
//!
//! [`register`]: crate::RcuFlavor::register

use citrus_obs::{Counter, Log2Histogram, MetricsRegistry};
use core::sync::atomic::{AtomicUsize, Ordering};

/// Stripe count for the per-domain event counters. Handles beyond this
/// many share stripes (harmless: striping is contention-avoidance only).
const STRIPES: usize = 32;

/// Metrics every RCU domain keeps (see [`RcuFlavor::metrics`]).
///
/// [`RcuFlavor::metrics`]: crate::RcuFlavor::metrics
///
/// # Example
///
/// ```
/// use citrus_obs::MetricsRegistry;
/// use citrus_rcu::{RcuFlavor, RcuHandle, ScalableRcu};
///
/// let rcu = ScalableRcu::new();
/// let registry = MetricsRegistry::new();
/// rcu.metrics().register_into(&registry, "rcu/scalable");
///
/// let h = rcu.register();
/// {
///     let _g = h.read_lock();
/// }
/// h.synchronize();
///
/// let snap = registry.snapshot();
/// #[cfg(feature = "stats")]
/// {
///     assert_eq!(snap.counter("rcu/scalable", "read_sections"), Some(1));
///     assert_eq!(snap.counter("rcu/scalable", "synchronize_calls"), Some(1));
///     assert_eq!(
///         snap.histogram("rcu/scalable", "synchronize_ns").unwrap().count,
///         1
///     );
/// }
/// #[cfg(not(feature = "stats"))]
/// assert!(snap.is_empty());
/// ```
#[derive(Debug)]
pub struct RcuMetrics {
    read_sections: Counter,
    synchronize_calls: Counter,
    synchronize_ns: Log2Histogram,
    synchronize_stalls: Counter,
    synchronize_piggyback: Counter,
    synchronize_scan_slots: Log2Histogram,
    /// Round-robin stripe allocator for handles (cold path: one
    /// `fetch_add` per `register`, never on read/synchronize).
    next_stripe: AtomicUsize,
}

impl RcuMetrics {
    pub(crate) fn new() -> Self {
        Self {
            read_sections: Counter::new(STRIPES),
            synchronize_calls: Counter::new(STRIPES),
            synchronize_ns: Log2Histogram::new(),
            synchronize_stalls: Counter::new(STRIPES),
            synchronize_piggyback: Counter::new(STRIPES),
            synchronize_scan_slots: Log2Histogram::new(),
            next_stripe: AtomicUsize::new(0),
        }
    }

    /// Assigns the next handle its counter stripe.
    pub(crate) fn assign_stripe(&self) -> usize {
        self.next_stripe.fetch_add(1, Ordering::Relaxed) % STRIPES
    }

    /// Records one outermost read-side critical-section entry.
    #[inline]
    pub(crate) fn record_read_section(&self, stripe: usize) {
        self.read_sections.incr(stripe);
    }

    /// Records one completed `synchronize_rcu` and its latency.
    #[inline]
    pub(crate) fn record_synchronize(&self, stripe: usize, elapsed_ns: u64) {
        self.synchronize_calls.incr(stripe);
        self.synchronize_ns.record(elapsed_ns);
    }

    /// Records one grace-period stall reported by the watchdog.
    #[inline]
    pub(crate) fn record_synchronize_stall(&self, stripe: usize) {
        self.synchronize_stalls.incr(stripe);
    }

    /// Records one `synchronize_rcu` that returned by piggybacking on a
    /// concurrent caller's completed grace period (DESIGN.md §6d).
    #[inline]
    pub(crate) fn record_synchronize_piggyback(&self, stripe: usize) {
        self.synchronize_piggyback.incr(stripe);
    }

    /// Records how many reader slots one `synchronize_rcu` examined before
    /// returning (full scan or cut short by a piggyback).
    #[inline]
    pub(crate) fn record_scan_slots(&self, slots: u64) {
        self.synchronize_scan_slots.record(slots);
    }

    /// Total outermost read-side critical sections entered
    /// (`0` with stats off).
    #[must_use]
    pub fn read_sections(&self) -> u64 {
        self.read_sections.get()
    }

    /// Total `synchronize_rcu` calls completed (`0` with stats off).
    #[must_use]
    pub fn synchronize_calls(&self) -> u64 {
        self.synchronize_calls.get()
    }

    /// Total grace-period stalls reported by the watchdog (`0` with stats
    /// off; the flavor's `stall_events()` counts unconditionally).
    #[must_use]
    pub fn synchronize_stalls(&self) -> u64 {
        self.synchronize_stalls.get()
    }

    /// Total `synchronize_rcu` calls satisfied by a concurrent caller's
    /// grace period instead of a full own scan (`0` with stats off; the
    /// flavor's `synchronize_piggybacks()` counts unconditionally).
    #[must_use]
    pub fn synchronize_piggyback(&self) -> u64 {
        self.synchronize_piggyback.get()
    }

    /// Snapshot of the `synchronize_rcu` latency distribution, in
    /// nanoseconds (empty with stats off).
    #[must_use]
    pub fn synchronize_latency(&self) -> citrus_obs::HistogramSnapshot {
        self.synchronize_ns.snapshot()
    }

    /// Snapshot of the scan-length distribution: reader slots examined per
    /// `synchronize_rcu` (empty with stats off).
    #[must_use]
    pub fn scan_length(&self) -> citrus_obs::HistogramSnapshot {
        self.synchronize_scan_slots.snapshot()
    }

    /// Registers this domain's instruments under `component` (shared
    /// handles: later events show up in registry snapshots).
    pub fn register_into(&self, registry: &MetricsRegistry, component: &str) {
        registry.register_counter(component, "read_sections", &self.read_sections);
        registry.register_counter(component, "synchronize_calls", &self.synchronize_calls);
        registry.register_histogram(component, "synchronize_ns", &self.synchronize_ns);
        registry.register_counter(component, "synchronize_stalls", &self.synchronize_stalls);
        registry.register_counter(
            component,
            "synchronize_piggyback",
            &self.synchronize_piggyback,
        );
        registry.register_histogram(
            component,
            "synchronize_scan_slots",
            &self.synchronize_scan_slots,
        );
    }
}
