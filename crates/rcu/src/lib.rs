//! User-space read-copy-update (RCU) for the Citrus reproduction.
//!
//! RCU is a synchronization mechanism that favors readers: a read-side
//! critical section is delimited by `rcu_read_lock` / `rcu_read_unlock`
//! (both wait-free, nearly free), while a writer may call `synchronize_rcu`
//! as a barrier that blocks until **all pre-existing read-side critical
//! sections have completed** (the *RCU property*, Fig. 2 of the paper).
//!
//! This crate provides two complete user-space implementations behind the
//! [`RcuFlavor`] trait:
//!
//! * [`ScalableRcu`] — the implementation introduced in §5 of the paper.
//!   Each thread owns one cache-padded word packing a critical-section
//!   counter and an "inside critical section" flag. `synchronize_rcu` scans
//!   all threads and waits, per thread, until the counter changes or the
//!   flag clears. Crucially, **concurrent synchronizers do not coordinate
//!   with each other at all** — no locks — which is what lets Citrus scale
//!   under update-heavy workloads (Fig. 8, right).
//! * [`GlobalLockRcu`] — a faithful model of the classic user-space RCU
//!   (liburcu-style, Desnoyers et al.): grace periods are driven through a
//!   global grace-period phase counter and **`synchronize_rcu` callers
//!   serialize on a global lock**. This is the "standard RCU" whose
//!   collapse under concurrent updates the paper demonstrates (Fig. 8,
//!   left).
//!
//! Data structures in this repository are generic over [`RcuFlavor`], so
//! swapping implementations — the whole point of Figure 8 — is a type
//! parameter.
//!
//! Beyond the paper, both flavors *share* grace periods between concurrent
//! `synchronize_rcu` callers (Linux-`gp_seq`-style piggybacking; see
//! DESIGN.md §6d): a caller that observes a full grace period started
//! after its own entry completed by someone else returns without finishing
//! its own scan. Sharing changes throughput, never semantics; disable it
//! with `CITRUS_RCU_NO_SHARING=1` ([`gp_sharing_from_env`]) or per domain
//! with `with_sharing(false)`.
//!
//! # Thread model
//!
//! Threads participate by registering with a flavor instance
//! ([`RcuFlavor::register`]), obtaining a per-thread [`RcuHandle`]. The
//! handle is cheap, not `Send`, and releases its slot on drop. Read-side
//! critical sections nest.
//!
//! # Example
//!
//! ```
//! use citrus_rcu::{RcuFlavor, RcuHandle, ScalableRcu};
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let rcu = ScalableRcu::new();
//! let cell = AtomicPtr::new(Box::into_raw(Box::new(1u64)));
//!
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let reader = rcu.register();
//!         let _guard = reader.read_lock();
//!         let v = unsafe { *cell.load(Ordering::Acquire) };
//!         assert!(v == 1 || v == 2);
//!     });
//!     s.spawn(|| {
//!         let writer = rcu.register();
//!         let old = cell.swap(Box::into_raw(Box::new(2u64)), Ordering::AcqRel);
//!         writer.synchronize(); // wait for pre-existing readers
//!         drop(unsafe { Box::from_raw(old) }); // now safe to free
//!     });
//! });
//! # drop(unsafe { Box::from_raw(cell.load(Ordering::Relaxed)) });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod flavor;
mod global_lock;
mod metrics;
mod scalable;
mod stall;

pub use flavor::{RcuFlavor, RcuHandle, RcuReadGuard};
pub use global_lock::{GlobalLockRcu, GlobalLockRcuHandle};
pub use metrics::RcuMetrics;
pub use scalable::{ScalableRcu, ScalableRcuHandle};

/// Grace-period sharing default for new domains: enabled unless the
/// `CITRUS_RCU_NO_SHARING` environment variable is set to `1`, `true`, or
/// `yes` (the ablation kill switch — see DESIGN.md §6d).
///
/// Consulted once per domain construction (`ScalableRcu::new` /
/// `GlobalLockRcu::new`), never on the synchronize path; use
/// [`ScalableRcu::with_sharing`] / [`GlobalLockRcu::with_sharing`] to pick
/// a mode explicitly regardless of the environment.
#[must_use]
pub fn gp_sharing_from_env() -> bool {
    match std::env::var("CITRUS_RCU_NO_SHARING") {
        Ok(raw) => match raw.trim() {
            "1" | "true" | "yes" => false,
            "" | "0" | "false" | "no" => true,
            other => {
                panic!("invalid CITRUS_RCU_NO_SHARING={other:?}: expected 1/true/yes or 0/false/no")
            }
        },
        Err(std::env::VarError::NotPresent) => true,
        Err(e) => panic!("invalid CITRUS_RCU_NO_SHARING: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    fn exercise_basic<F: RcuFlavor>(rcu: &F) {
        let h = rcu.register();
        // Empty grace period completes immediately.
        h.synchronize();
        // Nested read sections.
        {
            let _outer = h.read_lock();
            let _inner = h.read_lock();
        }
        h.synchronize();
    }

    #[test]
    fn basic_scalable() {
        exercise_basic(&ScalableRcu::new());
    }

    #[test]
    fn basic_global_lock() {
        exercise_basic(&GlobalLockRcu::new());
    }

    /// The RCU property: a reader inside a critical section when
    /// `synchronize` is invoked blocks the synchronizer until it exits.
    fn grace_period_waits<F: RcuFlavor>(rcu: &F) {
        let in_cs = AtomicBool::new(false);
        let sync_done = AtomicBool::new(false);
        let (enter_tx, enter_rx) = mpsc::channel::<()>();
        let (exit_tx, exit_rx) = mpsc::channel::<()>();

        let (in_cs_ref, sync_done_ref) = (&in_cs, &sync_done);
        std::thread::scope(|s| {
            s.spawn(move || {
                let h = rcu.register();
                let guard = h.read_lock();
                in_cs_ref.store(true, Ordering::SeqCst);
                enter_tx.send(()).unwrap();
                // Stay in the critical section until told to leave.
                exit_rx.recv().unwrap();
                in_cs_ref.store(false, Ordering::SeqCst);
                drop(guard);
            });
            s.spawn(move || {
                enter_rx.recv().unwrap();
                let h = rcu.register();
                h.synchronize();
                // The reader must have left its critical section by now.
                assert!(
                    !in_cs_ref.load(Ordering::SeqCst),
                    "synchronize returned while a pre-existing reader was in its critical section"
                );
                sync_done_ref.store(true, Ordering::SeqCst);
            });
            // Give the synchronizer time to (incorrectly) race past the
            // reader, then let the reader go.
            std::thread::sleep(Duration::from_millis(100));
            assert!(
                !sync_done.load(Ordering::SeqCst),
                "synchronize returned before the reader exited"
            );
            exit_tx.send(()).unwrap();
        });
        assert!(sync_done.load(Ordering::SeqCst));
    }

    #[test]
    fn grace_period_waits_scalable() {
        grace_period_waits(&ScalableRcu::new());
    }

    #[test]
    fn grace_period_waits_global_lock() {
        grace_period_waits(&GlobalLockRcu::new());
    }

    /// Readers that enter *after* synchronize starts must not block it
    /// forever: a continuous stream of new read sections on another thread
    /// must not starve the synchronizer.
    fn no_starvation_by_new_readers<F: RcuFlavor>(rcu: &F) {
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let h = rcu.register();
                while !stop.load(Ordering::Relaxed) {
                    let _g = h.read_lock();
                    std::hint::spin_loop();
                }
            });
            s.spawn(|| {
                let h = rcu.register();
                for _ in 0..50 {
                    h.synchronize();
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
    }

    #[test]
    fn no_starvation_scalable() {
        no_starvation_by_new_readers(&ScalableRcu::new());
    }

    #[test]
    fn no_starvation_global_lock() {
        no_starvation_by_new_readers(&GlobalLockRcu::new());
    }

    /// Classic RCU publish/retire stress: a writer swaps a boxed value,
    /// synchronizes, poisons and frees the old one. Readers must never
    /// observe the poison through the shared pointer.
    fn publish_retire_stress<F: RcuFlavor>(rcu: &F) {
        const POISON: u64 = u64::MAX;
        const WRITES: usize = 2_000;
        const READERS: usize = 3;
        let cell = AtomicPtr::new(Box::into_raw(Box::new(0u64)));
        let stop = AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..READERS {
                s.spawn(|| {
                    let h = rcu.register();
                    while !stop.load(Ordering::Relaxed) {
                        let g = h.read_lock();
                        let p = cell.load(Ordering::Acquire);
                        // SAFETY: `p` was published and cannot be freed
                        // before our read section ends.
                        let v = unsafe { *p };
                        assert_ne!(v, POISON, "reader observed a freed value");
                        drop(g);
                    }
                });
            }
            s.spawn(|| {
                let h = rcu.register();
                for i in 1..=WRITES as u64 {
                    let fresh = Box::into_raw(Box::new(i));
                    let old = cell.swap(fresh, Ordering::AcqRel);
                    h.synchronize();
                    // SAFETY: a grace period elapsed; no reader holds `old`.
                    unsafe {
                        *old = POISON;
                        drop(Box::from_raw(old));
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        // SAFETY: all threads joined.
        unsafe { drop(Box::from_raw(cell.load(Ordering::Relaxed))) };
    }

    #[test]
    fn publish_retire_stress_scalable() {
        publish_retire_stress(&ScalableRcu::new());
    }

    #[test]
    fn publish_retire_stress_global_lock() {
        publish_retire_stress(&GlobalLockRcu::new());
    }

    /// Concurrent synchronizers must all make progress (the scalable flavor
    /// is lock-free among synchronizers; the global-lock flavor serializes
    /// but must not deadlock).
    fn concurrent_synchronizers<F: RcuFlavor>(rcu: &F) {
        const SYNCERS: usize = 4;
        const EACH: usize = 100;
        let done = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..SYNCERS {
                s.spawn(|| {
                    let h = rcu.register();
                    for _ in 0..EACH {
                        {
                            let _g = h.read_lock();
                        }
                        h.synchronize();
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), SYNCERS as u64);
    }

    #[test]
    fn concurrent_synchronizers_scalable() {
        concurrent_synchronizers(&ScalableRcu::new());
    }

    #[test]
    fn concurrent_synchronizers_global_lock() {
        concurrent_synchronizers(&GlobalLockRcu::new());
    }

    #[test]
    fn flavor_names_differ() {
        assert_ne!(ScalableRcu::NAME, GlobalLockRcu::NAME);
    }

    #[test]
    fn grace_period_counters_advance() {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        let before = rcu.grace_periods();
        h.synchronize();
        h.synchronize();
        assert_eq!(rcu.grace_periods(), before + 2);

        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        let before = rcu.grace_periods();
        h.synchronize();
        assert_eq!(rcu.grace_periods(), before + 1);
    }
}
