//! Grace-period stall watchdog, shared by both RCU flavors.
//!
//! `synchronize_rcu` blocks until every pre-existing read-side critical
//! section ends. A reader that is descheduled — or, worse, wedged — inside
//! a section therefore stalls every synchronizer with no indication of
//! *which* thread is at fault. The watchdog gives each wait loop a
//! deadline: once a single reader slot has been waited on for longer than
//! the stall timeout, the domain records a stall event, bumps the
//! `synchronize_stalls` obs counter, and emits one diagnostic naming the
//! offending registry slot. `synchronize` itself keeps waiting —
//! correctness still requires the grace period — so the watchdog changes
//! observability, never semantics.

use citrus_sync::SpinMutex;
use core::sync::atomic::{AtomicU64, Ordering};
use core::time::Duration;
use std::sync::OnceLock;

/// Default wait on one reader slot before reporting a stall.
const DEFAULT_STALL_MS: u64 = 2_000;

/// Sentinel timeout value: watchdog disabled.
const DISABLED: u64 = u64::MAX;

/// Process-wide default timeout, resolved once from the environment.
fn env_default_ms() -> u64 {
    static DEFAULT: OnceLock<u64> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("CITRUS_RCU_STALL_MS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => DISABLED,
            Ok(ms) => ms,
            Err(e) => {
                panic!("invalid CITRUS_RCU_STALL_MS={v:?}: {e} (expected milliseconds; 0 disables)")
            }
        },
        Err(std::env::VarError::NotPresent) => DEFAULT_STALL_MS,
        Err(e) => panic!("invalid CITRUS_RCU_STALL_MS: {e}"),
    })
}

/// Per-domain stall-watchdog state (see the module docs).
pub(crate) struct StallWatchdog {
    /// Timeout in milliseconds; [`DISABLED`] turns the watchdog off.
    timeout_ms: AtomicU64,
    /// Stall events recorded, independent of the `stats` feature.
    events: AtomicU64,
    /// Most recent diagnostic, for tests and postmortems.
    last_diagnostic: SpinMutex<Option<String>>,
}

impl StallWatchdog {
    pub(crate) fn new() -> Self {
        Self {
            timeout_ms: AtomicU64::new(env_default_ms()),
            events: AtomicU64::new(0),
            last_diagnostic: SpinMutex::new(None),
        }
    }

    /// The active timeout, or `None` when disabled.
    pub(crate) fn timeout(&self) -> Option<Duration> {
        match self.timeout_ms.load(Ordering::Relaxed) {
            DISABLED => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    pub(crate) fn set_timeout(&self, timeout: Option<Duration>) {
        let ms = match timeout {
            None => DISABLED,
            Some(t) => u64::try_from(t.as_millis())
                .unwrap_or(DISABLED - 1)
                .min(DISABLED - 1),
        };
        self.timeout_ms.store(ms, Ordering::Relaxed);
    }

    pub(crate) fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    pub(crate) fn take_diagnostic(&self) -> Option<String> {
        self.last_diagnostic.lock().take()
    }

    /// Records one stall: `slot` is the blocking reader's registry slot
    /// index, `word` its reader word as last observed.
    pub(crate) fn note(&self, flavor: &str, slot: usize, word: u64, waited: Duration) {
        self.events.fetch_add(1, Ordering::Relaxed);
        let msg = format!(
            "{flavor}: synchronize_rcu stalled for {waited:?} on reader registry slot {slot} \
             (reader word {word:#x}); that thread has been inside one read-side critical \
             section for the whole wait"
        );
        eprintln!("[citrus-rcu] {msg}");
        *self.last_diagnostic.lock() = Some(msg);
    }
}

impl core::fmt::Debug for StallWatchdog {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StallWatchdog")
            .field("timeout", &self.timeout())
            .field("events", &self.events())
            .finish()
    }
}
