//! The [`RcuFlavor`] abstraction: the three-function RCU API used by Citrus
//! (`rcu_read_lock`, `rcu_read_unlock`, `synchronize_rcu`), expressed as a
//! per-thread handle so implementations can keep per-thread reader state.

use crate::metrics::RcuMetrics;
use core::fmt;
use core::time::Duration;

/// An RCU implementation ("flavor", in liburcu terminology).
///
/// A flavor instance is a *domain*: grace periods computed by
/// [`RcuHandle::synchronize`] cover exactly the read-side critical sections
/// of handles registered with the same instance. Independent data structures
/// may use independent domains.
///
/// # Example
///
/// ```
/// use citrus_rcu::{RcuFlavor, RcuHandle, ScalableRcu};
///
/// fn quiesce<F: RcuFlavor>(rcu: &F) {
///     let h = rcu.register();
///     h.synchronize(); // all pre-existing read sections have finished
/// }
/// quiesce(&ScalableRcu::new());
/// ```
pub trait RcuFlavor: Send + Sync + Default + 'static {
    /// The per-thread participant handle.
    type Handle<'a>: RcuHandle
    where
        Self: 'a;

    /// Short human-readable name used in benchmark reports
    /// (e.g. `"rcu-scalable"`).
    const NAME: &'static str;

    /// Creates a new, empty domain.
    fn new() -> Self {
        Self::default()
    }

    /// Registers the calling thread, returning its handle.
    ///
    /// The handle must be dropped before the domain; it is not `Send`.
    /// Registering the same thread twice is allowed (two independent
    /// participant slots).
    fn register(&self) -> Self::Handle<'_>;

    /// Total number of grace periods completed in this domain
    /// (diagnostics; approximate under concurrency).
    fn grace_periods(&self) -> u64;

    /// This domain's metric instruments (no-ops unless the crate is built
    /// with the `stats` feature). Register them into a
    /// [`citrus_obs::MetricsRegistry`] with
    /// [`RcuMetrics::register_into`].
    fn metrics(&self) -> &RcuMetrics;

    /// Reconfigures the grace-period stall watchdog: after waiting this
    /// long on one reader, `synchronize` records a stall event and emits a
    /// diagnostic naming the blocking registry slot (then keeps waiting —
    /// the watchdog never changes grace-period semantics). `None` disables
    /// it. The process default is 2 s, overridable with
    /// `CITRUS_RCU_STALL_MS` (`0` disables).
    ///
    /// The default implementation ignores the setting (for flavors without
    /// a watchdog).
    fn set_stall_timeout(&self, timeout: Option<Duration>) {
        let _ = timeout;
    }

    /// Number of grace-period stalls recorded by the watchdog. Counted
    /// unconditionally (not gated on the `stats` feature).
    fn stall_events(&self) -> u64 {
        0
    }

    /// Number of `synchronize` calls that returned by piggybacking on a
    /// concurrent caller's completed grace period instead of finishing
    /// their own reader scan (grace-period sharing, DESIGN.md §6d).
    /// Counted unconditionally (not gated on the `stats` feature).
    fn synchronize_piggybacks(&self) -> u64 {
        0
    }

    /// Takes the most recent stall diagnostic, if any.
    fn take_stall_diagnostic(&self) -> Option<String> {
        None
    }
}

/// Per-thread RCU participant: read-side critical sections and grace-period
/// waits.
///
/// Read-side sections are reentrant: nested [`read_lock`](Self::read_lock)
/// calls are counted and only the outermost entry/exit touches shared state.
pub trait RcuHandle {
    /// Enters a read-side critical section.
    ///
    /// Wait-free (a handful of instructions). Prefer the RAII wrapper
    /// [`read_lock`](Self::read_lock).
    fn raw_read_lock(&self);

    /// Exits a read-side critical section.
    ///
    /// Wait-free.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the thread is not inside a read-side section.
    fn raw_read_unlock(&self);

    /// Waits until all read-side critical sections that existed when this
    /// call started have completed (the RCU property).
    ///
    /// Blocking; must **not** be called from inside a read-side critical
    /// section (self-deadlock).
    ///
    /// # Panics
    ///
    /// Debug builds panic if called inside a read-side section.
    fn synchronize(&self);

    /// Returns `true` while the calling thread is inside a read-side
    /// critical section of this handle.
    fn in_read_section(&self) -> bool;

    /// Enters a read-side critical section, returning an RAII guard that
    /// exits it on drop.
    fn read_lock(&self) -> RcuReadGuard<'_, Self>
    where
        Self: Sized,
    {
        self.raw_read_lock();
        RcuReadGuard { handle: self }
    }
}

/// RAII guard for a read-side critical section; see [`RcuHandle::read_lock`].
pub struct RcuReadGuard<'h, H: RcuHandle> {
    handle: &'h H,
}

impl<H: RcuHandle> Drop for RcuReadGuard<'_, H> {
    fn drop(&mut self) {
        self.handle.raw_read_unlock();
    }
}

impl<H: RcuHandle> fmt::Debug for RcuReadGuard<'_, H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RcuReadGuard").finish_non_exhaustive()
    }
}
