//! Reclamation metrics: retirement volume, limbo-bag depth, and how many
//! objects each collection pass actually frees.
//!
//! Instruments come from `citrus-obs` and are no-ops unless this crate is
//! built with the `stats` feature; the only unconditional state is a
//! cold-path stripe allocator touched once per
//! [`register`](crate::EbrDomain::register).

use citrus_obs::{Counter, HighWaterMark, Log2Histogram, MetricsRegistry};
use core::sync::atomic::{AtomicUsize, Ordering};

/// Stripe count for the per-domain retirement counter.
pub(crate) const STRIPES: usize = 32;

/// Metrics kept by every [`EbrDomain`](crate::EbrDomain).
///
/// # Example
///
/// ```
/// use citrus_obs::MetricsRegistry;
/// use citrus_reclaim::EbrDomain;
///
/// let domain = EbrDomain::new();
/// let registry = MetricsRegistry::new();
/// domain.metrics().register_into(&registry, "reclaim");
///
/// let h = domain.register();
/// let p = Box::into_raw(Box::new(7u64));
/// {
///     let _g = h.pin();
///     // SAFETY: `p` is unlinked and exclusively owned.
///     unsafe { h.retire(p) };
/// }
/// # drop(h);
///
/// let snap = registry.snapshot();
/// #[cfg(feature = "stats")]
/// {
///     assert_eq!(snap.counter("reclaim", "retired"), Some(1));
///     assert_eq!(snap.maximum("reclaim", "limbo_depth_hwm"), Some(1));
/// }
/// #[cfg(not(feature = "stats"))]
/// assert!(snap.is_empty());
/// ```
#[derive(Debug)]
pub struct ReclaimMetrics {
    retired: Counter,
    freed_per_advance: Log2Histogram,
    limbo_depth_hwm: HighWaterMark,
    /// Round-robin stripe allocator for handles (cold path: one
    /// `fetch_add` per `register`).
    next_stripe: AtomicUsize,
}

impl ReclaimMetrics {
    pub(crate) fn new() -> Self {
        Self {
            retired: Counter::new(STRIPES),
            freed_per_advance: Log2Histogram::new(),
            limbo_depth_hwm: HighWaterMark::new(),
            next_stripe: AtomicUsize::new(0),
        }
    }

    /// Assigns the next handle its counter stripe.
    pub(crate) fn assign_stripe(&self) -> usize {
        self.next_stripe.fetch_add(1, Ordering::Relaxed) % STRIPES
    }

    /// Records one retirement and the retiring handle's limbo-bag depth.
    #[inline]
    pub(crate) fn record_retire(&self, stripe: usize, limbo_depth: usize) {
        self.retired.incr(stripe);
        self.limbo_depth_hwm.observe(limbo_depth as u64);
    }

    /// Records how many objects one collection pass freed (zero counts:
    /// passes blocked by a pinned straggler land in bucket 0).
    #[inline]
    pub(crate) fn record_collect(&self, freed: usize) {
        self.freed_per_advance.record(freed as u64);
    }

    /// Total objects retired into limbo bags (`0` with stats off).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired.get()
    }

    /// Deepest limbo bag ever observed at retirement time
    /// (`0` with stats off).
    #[must_use]
    pub fn limbo_depth_high_water(&self) -> u64 {
        self.limbo_depth_hwm.get()
    }

    /// Distribution of objects freed per collection pass
    /// (empty with stats off).
    #[must_use]
    pub fn freed_per_advance(&self) -> citrus_obs::HistogramSnapshot {
        self.freed_per_advance.snapshot()
    }

    /// Registers this domain's instruments under `component`.
    pub fn register_into(&self, registry: &MetricsRegistry, component: &str) {
        registry.register_counter(component, "retired", &self.retired);
        registry.register_histogram(component, "freed_per_advance", &self.freed_per_advance);
        registry.register_hwm(component, "limbo_depth_hwm", &self.limbo_depth_hwm);
    }
}
