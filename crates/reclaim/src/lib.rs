//! Epoch-based memory reclamation (EBR) for the Citrus reproduction.
//!
//! The Citrus paper runs its timed experiments **without** reclaiming
//! memory and names "efficient memory reclamation" as the main direction
//! for future work (§7) — RCU's primary use inside the Linux kernel.
//! This crate supplies that missing piece: a small, self-contained
//! epoch-based reclamation domain in the style of Fraser's EBR (the same
//! family of schemes as the paper's own scalable RCU implementation, which
//! the authors describe as "similar to epoch-based reclamation \[11\]").
//!
//! # How it works
//!
//! * A domain keeps a **global epoch** counter.
//! * Each participating thread *pins* the domain while it may hold
//!   references to shared nodes, recording the global epoch in its own
//!   cache-padded slot.
//! * Removed nodes are *retired*, stamped with the current global epoch.
//! * The global epoch can advance from `e` to `e+1` only when every pinned
//!   thread has observed `e`. Therefore, once the global epoch reaches
//!   `e + 2`, no thread can still hold a reference obtained before a node
//!   retired at epoch `e` was unlinked — freeing it is safe.
//!
//! # Why whole-operation pinning (and not just read-side sections)
//!
//! Citrus updaters deliberately acquire node locks **outside** the RCU
//! read-side critical section (to avoid RCU deadlock), so they carry node
//! pointers around with no read-side protection. Reclamation must therefore
//! wait out *entire operations*, not just read-side critical sections. The
//! Citrus tree pins an [`EbrGuard`] for the full duration of every
//! operation when running in `Epoch` reclamation mode.
//!
//! # Example
//!
//! ```
//! use citrus_reclaim::EbrDomain;
//!
//! let domain = EbrDomain::new();
//! let handle = domain.register();
//!
//! let node = Box::into_raw(Box::new(42u64));
//! {
//!     let _guard = handle.pin();
//!     // ... unlink `node` from a shared structure ...
//!     // SAFETY: `node` is unlinked; no new references can be created.
//!     unsafe { handle.retire(node) };
//! }
//! // The node is freed automatically once a grace period has elapsed
//! // (or at domain drop, whichever comes first).
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod deferred;
mod metrics;

pub use deferred::{CallRcu, CallRcuConfig, DeferredMetrics};
pub use metrics::ReclaimMetrics;

/// Deferred-free default for new trees: the inline `synchronize_rcu` in
/// the two-child delete is replaced by `call_rcu`-style deferral when the
/// `CITRUS_DEFERRED_FREE` environment variable is set to `1`, `true`, or
/// `yes` (see DESIGN.md §6g). Inline mode — the paper's algorithm — stays
/// the default so the two can be A/B-tested.
///
/// Consulted once per tree construction, never on the operation path; use
/// the explicit constructor options to pick a mode regardless of the
/// environment.
#[must_use]
pub fn deferred_free_from_env() -> bool {
    match std::env::var("CITRUS_DEFERRED_FREE") {
        Ok(raw) => match raw.trim() {
            "1" | "true" | "yes" => true,
            "" | "0" | "false" | "no" => false,
            other => {
                panic!("invalid CITRUS_DEFERRED_FREE={other:?}: expected 1/true/yes or 0/false/no")
            }
        },
        Err(std::env::VarError::NotPresent) => false,
        Err(e) => panic!("invalid CITRUS_DEFERRED_FREE: {e}"),
    }
}

use citrus_chaos as chaos;
use citrus_sync::{CachePadded, Registry, SlotHandle, SpinMutex};
use core::cell::{Cell, RefCell};
use core::fmt;
use core::sync::atomic::{fence, AtomicU64, Ordering};

/// Pinned bit of a thread slot (bit 0); bits 1.. hold the observed epoch.
const PINNED: u64 = 1;

/// Number of epochs that must pass before a retired object is freed.
const GRACE_EPOCHS: u64 = 2;

/// Local retirements between automatic collection attempts.
const COLLECT_EVERY: usize = 64;

/// A type-erased retired allocation awaiting a grace period.
struct Retired {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
    epoch: u64,
}

// SAFETY: retired pointers are owned (unlinked) allocations in transit to
// the thread that frees them.
unsafe impl Send for Retired {}

impl Retired {
    /// # Safety
    ///
    /// `ptr` must be a valid `Box<T>`-allocated pointer, exclusively owned
    /// by the reclamation machinery from this point on.
    unsafe fn new<T>(ptr: *mut T, epoch: u64) -> Self {
        unsafe fn drop_box<T>(p: *mut u8) {
            // SAFETY: `p` was created from `Box::into_raw` of a `T`.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Self {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
            epoch,
        }
    }

    /// # Safety
    ///
    /// A grace period must have elapsed since retirement (or all threads
    /// must have quiesced).
    unsafe fn free(self) {
        // SAFETY: forwarded to the caller's contract.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

struct EpochSlot {
    /// `(observed_epoch << 1) | pinned`.
    state: CachePadded<AtomicU64>,
}

impl EpochSlot {
    fn new() -> Self {
        Self {
            state: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

/// An epoch-based reclamation domain.
///
/// Threads [`register`](Self::register) to obtain an [`EbrHandle`]; nodes
/// retired through a handle are freed after a grace period. All retired
/// objects are freed at the latest when the domain is dropped.
pub struct EbrDomain {
    global_epoch: AtomicU64,
    registry: Registry<EpochSlot>,
    /// Bags abandoned by deregistered threads, drained by later collectors
    /// and at domain drop.
    orphans: SpinMutex<Vec<Retired>>,
    /// Diagnostics: total objects freed after a grace period.
    freed: AtomicU64,
    metrics: ReclaimMetrics,
}

impl EbrDomain {
    /// Creates a new domain at epoch 1 with no registered threads.
    pub fn new() -> Self {
        Self {
            // Start at 1 so "epoch 0" can never alias a fresh slot value.
            global_epoch: AtomicU64::new(1),
            registry: Registry::new(),
            orphans: SpinMutex::new(Vec::new()),
            freed: AtomicU64::new(0),
            metrics: ReclaimMetrics::new(),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> EbrHandle<'_> {
        // A released slot is always unpinned; no reset required.
        let slot = self.registry.register(EpochSlot::new, |_| {});
        EbrHandle {
            domain: self,
            slot,
            pin_depth: Cell::new(0),
            garbage: RefCell::new(Vec::new()),
            since_collect: Cell::new(0),
            stripe: self.metrics.assign_stripe(),
        }
    }

    /// Retires an unlinked allocation from any thread, without an
    /// [`EbrHandle`]: the object goes straight to the domain's shared
    /// orphan list, stamped with the current epoch, and is freed by a
    /// later collection pass (or at domain drop).
    ///
    /// Used by the deferred-free machinery ([`CallRcu`] flush callbacks
    /// run on whichever thread flushes, which holds no handle). Slower
    /// than [`EbrHandle::retire`] — one shared lock per call — so not for
    /// per-operation hot paths.
    ///
    /// # Safety
    ///
    /// Same contract as [`EbrHandle::retire`].
    pub unsafe fn retire_shared<T>(&self, ptr: *mut T) {
        let epoch = self.global_epoch.load(Ordering::Relaxed);
        // SAFETY: ownership transferred per this function's contract.
        let retired = unsafe { Retired::new(ptr, epoch) };
        let depth = {
            let mut orphans = self.orphans.lock();
            orphans.push(retired);
            orphans.len()
        };
        self.metrics.record_retire(0, depth);
    }

    /// This domain's metric instruments (no-ops unless the crate is built
    /// with the `stats` feature).
    pub fn metrics(&self) -> &ReclaimMetrics {
        &self.metrics
    }

    /// The current global epoch (diagnostics).
    pub fn epoch(&self) -> u64 {
        self.global_epoch.load(Ordering::Relaxed)
    }

    /// Total number of objects freed after a grace period (diagnostics).
    pub fn freed_count(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }

    /// Attempts to advance the global epoch by one.
    ///
    /// Succeeds only if every currently pinned thread has observed the
    /// current epoch; returns the (possibly unchanged) global epoch.
    fn try_advance(&self) -> u64 {
        let global = self.global_epoch.load(Ordering::SeqCst);
        for slot in self.registry.iter() {
            let s = slot.value().state.load(Ordering::SeqCst);
            if s & PINNED == PINNED && (s >> 1) != global {
                // A straggler is still in the previous epoch.
                return global;
            }
        }
        // Multiple threads may race; all failures are benign.
        match self.global_epoch.compare_exchange(
            global,
            global + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => global + 1,
            Err(now) => now,
        }
    }

    /// Frees every element of `bag` whose grace period has elapsed at
    /// `global`, keeping the rest.
    ///
    /// Frees expired elements, returning how many it freed.
    ///
    /// # Safety
    ///
    /// `bag` elements must have been retired per [`EbrHandle::retire`]'s
    /// contract.
    unsafe fn free_expired(&self, bag: &mut Vec<Retired>, global: u64) -> usize {
        let mut freed = 0;
        let mut i = 0;
        while i < bag.len() {
            if bag[i].epoch + GRACE_EPOCHS <= global {
                let r = bag.swap_remove(i);
                // SAFETY: two epochs have passed since retirement; by the
                // EBR argument no thread still holds a reference.
                unsafe { r.free() };
                freed += 1;
            } else {
                i += 1;
            }
        }
        self.freed.fetch_add(freed as u64, Ordering::Relaxed);
        freed
    }
}

impl Default for EbrDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for EbrDomain {
    fn drop(&mut self) {
        // `&mut self`: no handles exist (they borrow the domain), so every
        // remaining retired object is unreachable by any thread.
        let orphans = std::mem::take(&mut *self.orphans.lock());
        for r in orphans {
            // SAFETY: all threads have quiesced.
            unsafe { r.free() };
        }
    }
}

impl fmt::Debug for EbrDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EbrDomain")
            .field("epoch", &self.epoch())
            .field("threads", &self.registry.slot_count())
            .field("freed", &self.freed_count())
            .finish()
    }
}

/// Per-thread participant in an [`EbrDomain`].
///
/// Not `Send`; drop it before the domain. Dropping the handle hands any
/// not-yet-freed retired objects to the domain's orphan list.
pub struct EbrHandle<'d> {
    domain: &'d EbrDomain,
    slot: SlotHandle<'d, EpochSlot>,
    pin_depth: Cell<u32>,
    garbage: RefCell<Vec<Retired>>,
    since_collect: Cell<usize>,
    /// This handle's metric-counter stripe.
    stripe: usize,
}

impl<'d> EbrHandle<'d> {
    /// Pins the domain: until the returned guard drops, the global epoch
    /// can advance at most once, so any reference read from a shared
    /// structure while pinned stays valid.
    ///
    /// Pins nest; only the outermost pin touches shared state.
    pub fn pin(&self) -> EbrGuard<'_, 'd> {
        let depth = self.pin_depth.get();
        self.pin_depth.set(depth + 1);
        if depth == 0 {
            let global = self.domain.global_epoch.load(Ordering::Relaxed);
            self.slot
                .state
                .store((global << 1) | PINNED, Ordering::Relaxed);
            // Order the pin publication before any subsequent loads of
            // shared structure (pairs with collectors' SeqCst scans).
            fence(Ordering::SeqCst);
        }
        EbrGuard { handle: self }
    }

    /// Returns `true` while the calling thread holds at least one pin.
    pub fn is_pinned(&self) -> bool {
        self.pin_depth.get() > 0
    }

    /// Retires an unlinked allocation; it will be freed after a grace
    /// period (or at domain drop).
    ///
    /// # Safety
    ///
    /// * `ptr` must have been allocated via `Box<T>` and be exclusively
    ///   owned by the caller (already unlinked from every shared structure,
    ///   so no *new* references can be created).
    /// * Threads may still hold *old* references, but only ones acquired
    ///   while pinned.
    pub unsafe fn retire<T>(&self, ptr: *mut T) {
        let epoch = self.domain.global_epoch.load(Ordering::Relaxed);
        // SAFETY: ownership transferred per this function's contract.
        let retired = unsafe { Retired::new(ptr, epoch) };
        let limbo_depth = {
            let mut garbage = self.garbage.borrow_mut();
            garbage.push(retired);
            garbage.len()
        };
        self.domain.metrics.record_retire(self.stripe, limbo_depth);
        // A thread paused here has pushed garbage that nothing will free
        // until its own next collect trigger or domain drop.
        chaos::point!("reclaim/retire/before-collect");
        let n = self.since_collect.get() + 1;
        self.since_collect.set(n);
        if n >= COLLECT_EVERY {
            self.since_collect.set(0);
            self.collect();
        }
    }

    /// Attempts to advance the epoch and free expired garbage now.
    ///
    /// Called automatically every few retirements; exposed for tests and
    /// for flushing at quiescent points.
    pub fn collect(&self) {
        let global = self.domain.try_advance();
        // Between observing the advanced epoch and freeing: other threads
        // may advance further and free their own garbage concurrently.
        chaos::point!("reclaim/collect/between-advance-and-free");
        let mut garbage = self.garbage.borrow_mut();
        // SAFETY: elements were retired under `retire`'s contract.
        let mut freed = unsafe { self.domain.free_expired(&mut garbage, global) };

        // Opportunistically drain expired orphans left by departed threads.
        if let Some(mut orphans) = self.domain.orphans.try_lock() {
            // SAFETY: as above.
            freed += unsafe { self.domain.free_expired(&mut orphans, global) };
        }
        self.domain.metrics.record_collect(freed);
    }

    /// Number of objects retired by this handle and not yet freed.
    pub fn pending(&self) -> usize {
        self.garbage.borrow().len()
    }
}

impl Drop for EbrHandle<'_> {
    fn drop(&mut self) {
        assert!(
            !self.is_pinned(),
            "EBR handle dropped while pinned; epoch advancement would wedge"
        );
        let mut garbage = self.garbage.borrow_mut();
        if !garbage.is_empty() {
            self.domain.orphans.lock().append(&mut garbage);
        }
    }
}

impl fmt::Debug for EbrHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EbrHandle")
            .field("pin_depth", &self.pin_depth.get())
            .field("pending", &self.pending())
            .finish()
    }
}

/// RAII pin on an [`EbrDomain`]; see [`EbrHandle::pin`].
pub struct EbrGuard<'h, 'd> {
    handle: &'h EbrHandle<'d>,
}

impl Drop for EbrGuard<'_, '_> {
    fn drop(&mut self) {
        let depth = self.handle.pin_depth.get();
        debug_assert!(depth > 0);
        self.handle.pin_depth.set(depth - 1);
        if depth == 1 {
            // Order the critical region's accesses before unpinning.
            fence(Ordering::Release);
            self.handle.slot.state.store(0, Ordering::Release);
        }
    }
}

impl fmt::Debug for EbrGuard<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EbrGuard").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;

    /// A payload that records its own drop.
    struct Canary<'a>(&'a AtomicU64);

    impl Drop for Canary<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retired_objects_free_after_grace_period() {
        let drops = AtomicU64::new(0);
        let domain = EbrDomain::new();
        let h = domain.register();
        {
            let _g = h.pin();
            let p = Box::into_raw(Box::new(Canary(&drops)));
            unsafe { h.retire(p) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        // Each collect can advance the epoch at most once; after two
        // advances the grace period has elapsed.
        h.collect();
        h.collect();
        h.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(domain.freed_count(), 1);
        drop(h);
    }

    #[test]
    fn pinned_thread_blocks_epoch_advance() {
        let domain = EbrDomain::new();
        let h1 = domain.register();
        let h2 = domain.register();
        let e0 = domain.epoch();

        let _pin1 = h1.pin();
        // h1 pinned at e0: one advance can still succeed (h1 observed e0),
        // but a second cannot while h1 stays pinned at e0.
        h2.collect();
        let e1 = domain.epoch();
        assert!(e1 <= e0 + 1);
        h2.collect();
        h2.collect();
        assert_eq!(domain.epoch(), e1, "epoch advanced past a pinned straggler");
    }

    #[test]
    fn nested_pins_do_not_unpin_early() {
        let domain = EbrDomain::new();
        let h = domain.register();
        let g1 = h.pin();
        let g2 = h.pin();
        drop(g1);
        assert!(h.is_pinned());
        drop(g2);
        assert!(!h.is_pinned());
    }

    #[test]
    fn domain_drop_frees_all_pending() {
        let drops = AtomicU64::new(0);
        {
            let domain = EbrDomain::new();
            let h = domain.register();
            let g = h.pin();
            for _ in 0..10 {
                let p = Box::into_raw(Box::new(Canary(&drops)));
                unsafe { h.retire(p) };
            }
            drop(g);
            drop(h);
            // Nothing collected; domain drop must free everything.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn orphans_from_departed_threads_are_drained() {
        let drops = AtomicU64::new(0);
        let domain = EbrDomain::new();
        {
            let h = domain.register();
            let p = Box::into_raw(Box::new(Canary(&drops)));
            let _g = h.pin();
            unsafe { h.retire(p) };
        } // handle dropped; garbage orphaned
        let h2 = domain.register();
        h2.collect();
        h2.collect();
        h2.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1, "orphan was not drained");
        drop(h2);
    }

    #[test]
    #[should_panic(expected = "dropped while pinned")]
    fn dropping_pinned_handle_panics() {
        let domain = EbrDomain::new();
        let h = domain.register();
        let g = h.pin();
        std::mem::forget(g);
        drop(h);
    }

    #[test]
    fn concurrent_retire_stress_never_frees_early() {
        // Readers repeatedly pin and chase a shared pointer; a writer swaps
        // and retires old payloads. Payloads self-check via a magic field
        // cleared on drop — observing a cleared field means use-after-free.
        use core::sync::atomic::AtomicPtr;
        const MAGIC: u64 = 0xC17A_05EB;
        const WRITES: u64 = 3_000;

        struct Payload {
            magic: AtomicU64,
        }
        impl Drop for Payload {
            fn drop(&mut self) {
                self.magic.store(0, Ordering::SeqCst);
            }
        }

        let domain = EbrDomain::new();
        let cell = AtomicPtr::new(Box::into_raw(Box::new(Payload {
            magic: AtomicU64::new(MAGIC),
        })));
        let stop = AtomicBool::new(false);
        let barrier = Barrier::new(3);

        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let h = domain.register();
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        let _g = h.pin();
                        let p = cell.load(Ordering::Acquire);
                        // SAFETY: pinned, and `p` was reachable.
                        let magic = unsafe { (*p).magic.load(Ordering::SeqCst) };
                        assert_eq!(magic, MAGIC, "observed a freed payload");
                    }
                });
            }
            s.spawn(|| {
                let h = domain.register();
                barrier.wait();
                for _ in 0..WRITES {
                    let fresh = Box::into_raw(Box::new(Payload {
                        magic: AtomicU64::new(MAGIC),
                    }));
                    let old = cell.swap(fresh, Ordering::AcqRel);
                    let _g = h.pin();
                    // SAFETY: `old` is unlinked; readers that got it while
                    // pinned are protected by the grace period.
                    unsafe { h.retire(old) };
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        // SAFETY: all threads joined; final payload still live.
        unsafe { drop(Box::from_raw(cell.load(Ordering::Relaxed))) };
    }

    #[test]
    fn debug_impls_nonempty() {
        let domain = EbrDomain::new();
        let h = domain.register();
        let g = h.pin();
        assert!(format!("{domain:?}").contains("EbrDomain"));
        assert!(format!("{h:?}").contains("EbrHandle"));
        assert!(format!("{g:?}").contains("EbrGuard"));
        drop(g);
    }
}
