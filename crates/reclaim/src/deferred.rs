//! `call_rcu`-style deferred reclamation: a per-domain retirement queue
//! whose batches are waited out by **one shared grace period** each.
//!
//! The paper's two-child `delete` calls `synchronize_rcu` inline, so every
//! such delete pays a full grace period. The kernel's answer is
//! `call_rcu`: enqueue a callback, let a grace-period machine run it once
//! all pre-existing readers are done, and amortize one grace period over
//! an arbitrary batch of callbacks (oscarlab/versioning's `rcu_free` does
//! the same in user space with `URCU_MAX_FREE_PTRS`-sized batches).
//!
//! [`CallRcu`] is that machine for this repository:
//!
//! * [`defer`](CallRcu::defer) enqueues a type-erased callback; the
//!   convenience wrapper [`retire`](CallRcu::retire) enqueues a
//!   `Box::from_raw` drop.
//! * A batch is executed by [`flush`](CallRcu::flush): take the whole
//!   queue, call `synchronize_rcu` **once**, run every callback. Flushes
//!   from different threads take disjoint batches and synchronize
//!   concurrently, so grace-period sharing (DESIGN.md §6d) lets them
//!   piggyback on one reader scan.
//! * A background worker thread parks while the queue is empty (an idle
//!   domain costs nothing), wakes on the first enqueue or at the batch
//!   threshold, lets the batch build for one short interval, and flushes
//!   it whole — so enqueuing threads almost never wait on a grace period
//!   themselves, a callback holding resources (the tree's deferred
//!   unlink records keep two node locks frozen) runs within roughly the
//!   interval plus one grace period, and sustained load is amortized to
//!   at most a few flushes per millisecond rather than one per
//!   callback. A high-watermark backpressure flush (8× the threshold)
//!   bounds queue growth if the worker falls behind.
//! * `Drop` shuts the worker down cleanly and runs every remaining
//!   callback after a final grace period — nothing is leaked and no
//!   callback is dropped unexecuted.
//!
//! # Safety model
//!
//! The enqueued callback runs on an arbitrary thread (the worker, a
//! flushing enqueuer, or the dropping thread), strictly **after** a grace
//! period that covers every read-side critical section existing at
//! enqueue time. Callers must ensure the payload may cross threads and
//! that running the callback once is sound at that point — the same
//! contract as the kernel's `call_rcu`.

use crate::metrics::STRIPES;
use citrus_chaos as chaos;
use citrus_obs::{Counter, HistogramSnapshot, Log2Histogram, MetricsRegistry};
use citrus_rcu::{RcuFlavor, RcuHandle};
use citrus_sync::SpinMutex;
use core::fmt;
use core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

/// A type-erased deferred callback: `run(data)` is invoked exactly once
/// after a grace period.
struct DeferredItem {
    data: *mut u8,
    run: unsafe fn(*mut u8),
}

// SAFETY: enqueued payloads are owned by the queue until their callback
// runs; `defer`'s contract requires them to be sendable across threads.
unsafe impl Send for DeferredItem {}

/// Configuration for a [`CallRcu`] domain.
#[derive(Debug, Clone)]
pub struct CallRcuConfig {
    /// Queue length at which the background worker is woken to flush
    /// (enqueuers themselves flush only at 8× this, as backpressure).
    pub batch_threshold: usize,
    /// The batch-build delay: once woken over a nonempty queue, the
    /// worker waits this long before flushing, so a burst of enqueues
    /// lands in one batch (one grace period, one worker wakeup) instead
    /// of one each. A threshold unpark cuts the wait short. Together
    /// with `wake_on_first` this bounds a lone callback's latency at
    /// roughly one scheduling hop plus this delay plus a grace period.
    pub worker_interval: Duration,
    /// Wake the worker on the empty→nonempty queue transition (one
    /// `unpark` per batch, not per enqueue). An idle worker parks
    /// indefinitely — it costs nothing — so with this off, nothing
    /// flushes until the batch threshold is crossed or the domain is
    /// dropped: the fully-manual mode the lifecycle tests use. Keep it
    /// on for payloads that hold resources until they run — the tree's
    /// deferred unlink records keep two node locks frozen.
    pub wake_on_first: bool,
    /// At the batch threshold, flush on the **enqueuing** thread (the
    /// userspace-RCU `rcu_free`/`URCU_MAX_FREE_PTRS` pattern) instead of
    /// unparking the worker. The enqueuer pays one grace period per
    /// `batch_threshold` callbacks — amortized noise — and the steady
    /// state needs no worker handoff at all, which matters when cores
    /// are scarce: a worker wakeup is two context switches that the
    /// enqueuer-paid grace period (mostly yielding) does not cost. The
    /// worker still catches stragglers via `wake_on_first`. Off by
    /// default: enqueuers that cannot tolerate a grace-period wait at
    /// all (latency-critical paths) keep the worker handoff.
    pub eager_flush: bool,
}

impl Default for CallRcuConfig {
    fn default() -> Self {
        Self {
            batch_threshold: 128,
            worker_interval: Duration::from_millis(1),
            wake_on_first: true,
            eager_flush: false,
        }
    }
}

/// Metrics kept by every [`CallRcu`] domain; no-ops unless the crate is
/// built with the `stats` feature.
#[derive(Debug)]
pub struct DeferredMetrics {
    /// Callbacks enqueued.
    retired: Counter,
    /// Flush batches executed (one shared grace period each).
    batches: Counter,
    /// Distribution of callbacks per flush batch.
    batch_size: Log2Histogram,
    /// Callbacks executed (frees, for the retire path).
    freed: Counter,
}

impl DeferredMetrics {
    fn new() -> Self {
        Self {
            retired: Counter::new(STRIPES),
            batches: Counter::new(STRIPES),
            batch_size: Log2Histogram::new(),
            freed: Counter::new(STRIPES),
        }
    }

    /// Callbacks enqueued so far (`0` with stats off).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired.get()
    }

    /// Flush batches executed so far (`0` with stats off).
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Distribution of batch sizes (empty with stats off).
    #[must_use]
    pub fn batch_size(&self) -> HistogramSnapshot {
        self.batch_size.snapshot()
    }

    /// Callbacks executed so far (`0` with stats off).
    #[must_use]
    pub fn freed(&self) -> u64 {
        self.freed.get()
    }

    /// Registers this domain's instruments under `component`.
    pub fn register_into(&self, registry: &MetricsRegistry, component: &str) {
        registry.register_counter(component, "deferred_retired", &self.retired);
        registry.register_counter(component, "flush_batches", &self.batches);
        registry.register_histogram(component, "flush_batch_size", &self.batch_size);
        registry.register_counter(component, "deferred_freed", &self.freed);
    }
}

/// State shared between the domain handle, enqueuers, and the worker.
struct Shared<F: RcuFlavor> {
    rcu: Arc<F>,
    queue: SpinMutex<Vec<DeferredItem>>,
    /// Batches currently between "taken from the queue" and "callbacks
    /// done" — [`drain`](CallRcu::drain) waits for these too.
    in_flight: AtomicUsize,
    shutdown: AtomicBool,
    batch_threshold: usize,
    wake_on_first: bool,
    eager_flush: bool,
    /// The worker's thread handle, for threshold wakeups.
    worker_thread: OnceLock<Thread>,
    /// Always-on diagnostics (independent of the `stats` feature).
    batches: AtomicU64,
    executed: AtomicU64,
    metrics: DeferredMetrics,
}

impl<F: RcuFlavor> Shared<F> {
    fn queue_len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Takes the whole queue, waits out one grace period, runs the batch.
    fn flush(&self) -> usize {
        let batch: Vec<DeferredItem> = {
            let mut queue = self.queue.lock();
            if queue.is_empty() {
                return 0;
            }
            std::mem::take(&mut *queue)
        };
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        // A thread paused here has claimed callbacks that nothing else
        // can run until it proceeds — `drain` must wait for it.
        chaos::point!("reclaim/flush/before-synchronize");
        // Test-only mutation (exploration self-test): skipping the grace
        // period here frees batch members while readers may still hold
        // them — the explorer must catch it (`chaos` builds only).
        if !chaos::mutant_enabled("reclaim/flush/skip-synchronize") {
            // One grace period covers the whole batch. Concurrent flushes
            // synchronize on the same domain and piggyback via
            // grace-period sharing instead of scanning again.
            let handle = self.rcu.register();
            handle.synchronize();
        }
        chaos::point!("reclaim/flush/after-synchronize");
        let n = batch.len();
        for item in batch {
            // SAFETY: a grace period elapsed since enqueue; `defer`'s
            // contract makes running each callback once sound now.
            unsafe { (item.run)(item.data) };
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.executed.fetch_add(n as u64, Ordering::Relaxed);
        self.metrics.batches.incr(0);
        self.metrics.batch_size.record(n as u64);
        self.metrics.freed.add(0, n as u64);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        // A drain() blocked on this batch can now re-check.
        chaos::wake_hint();
        n
    }
}

/// A `call_rcu`-style deferred-reclamation domain over RCU flavor `F`.
///
/// See the [module docs](self) for the batching and worker design. One
/// domain serves one RCU domain: the grace periods it waits out are the
/// ones of the [`RcuFlavor`] instance it was built over.
///
/// # Example
///
/// ```
/// use citrus_rcu::ScalableRcu;
/// use citrus_reclaim::CallRcu;
/// use std::sync::Arc;
///
/// let rcu = Arc::new(ScalableRcu::new());
/// let deferred = CallRcu::new(Arc::clone(&rcu));
/// let p = Box::into_raw(Box::new(7u64));
/// // SAFETY: `p` is unlinked, exclusively owned, and sendable.
/// unsafe { deferred.retire(p) };
/// assert_eq!(deferred.pending(), 1);
/// deferred.flush(); // one grace period, then the Box is dropped
/// assert_eq!(deferred.pending(), 0);
/// ```
pub struct CallRcu<F: RcuFlavor> {
    shared: Arc<Shared<F>>,
    worker: Option<JoinHandle<()>>,
}

impl<F: RcuFlavor> CallRcu<F> {
    /// Creates a domain over `rcu` with the default configuration and
    /// spawns its background grace-period worker.
    #[must_use]
    pub fn new(rcu: Arc<F>) -> Self {
        Self::with_config(rcu, CallRcuConfig::default())
    }

    /// Creates a domain with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread cannot be spawned.
    #[must_use]
    pub fn with_config(rcu: Arc<F>, config: CallRcuConfig) -> Self {
        let shared = Arc::new(Shared {
            rcu,
            queue: SpinMutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            batch_threshold: config.batch_threshold.max(1),
            wake_on_first: config.wake_on_first,
            eager_flush: config.eager_flush,
            worker_thread: OnceLock::new(),
            batches: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            metrics: DeferredMetrics::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let interval = config.worker_interval;
        let worker = std::thread::Builder::new()
            .name("citrus-call-rcu".into())
            .spawn(move || {
                // Deterministic chaos decisions for the worker regardless
                // of spawn order.
                chaos::set_thread_stream(0xDEFE);
                loop {
                    if worker_shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    if worker_shared.queue_len() == 0 {
                        // Idle: costs nothing until an enqueue
                        // (`wake_on_first` / threshold) or shutdown
                        // unparks us. Spurious wakeups just re-loop.
                        std::thread::park();
                        continue;
                    }
                    // Nonempty: give the batch one interval to build
                    // (a threshold unpark cuts this short under bursts),
                    // then take it all behind a single grace period.
                    std::thread::park_timeout(interval);
                    chaos::point!("reclaim/worker/tick");
                    // A chaos plan can starve the worker to force the
                    // backpressure/drain paths.
                    if !chaos::should_fail!("reclaim/worker/skip-tick") {
                        worker_shared.flush();
                    }
                }
            })
            .expect("spawning the call_rcu worker thread");
        shared
            .worker_thread
            .set(worker.thread().clone())
            .expect("worker thread handle set once");
        Self {
            shared,
            worker: Some(worker),
        }
    }

    /// Enqueues `run(data)` to be executed, exactly once and on an
    /// arbitrary thread, after a grace period covering every read-side
    /// critical section that exists now.
    ///
    /// Never waits for a grace period itself unless the queue has grown
    /// past the backpressure watermark (8× the batch threshold) — or, in
    /// [`eager_flush`](CallRcuConfig::eager_flush) mode, to the batch
    /// threshold itself, where the enqueuer flushes in place rather than
    /// waking the worker.
    ///
    /// # Safety
    ///
    /// * `data` must remain valid until `run(data)` is called, and
    ///   `run(data)` must fully consume it (free it or transfer
    ///   ownership) — it is called exactly once.
    /// * The payload crosses threads: the caller must guarantee that is
    ///   sound (`Send`-ness of whatever `data` points to).
    /// * `run` must not call back into this domain's `flush`/`drain`.
    pub unsafe fn defer(&self, data: *mut u8, run: unsafe fn(*mut u8)) {
        chaos::point!("reclaim/defer/enqueue");
        let len = {
            let mut queue = self.shared.queue.lock();
            queue.push(DeferredItem { data, run });
            queue.len()
        };
        self.shared.metrics.retired.incr(0);
        // Eager mode: at the threshold the enqueuer takes the batch
        // itself — one shared grace period per `batch_threshold`
        // callbacks and zero worker handoffs in the steady state. The
        // worker stays responsible only for stragglers (`wake_on_first`).
        if self.shared.eager_flush && len >= self.shared.batch_threshold {
            self.shared.flush();
            return;
        }
        // Threshold reached, or (with `wake_on_first`) the queue just went
        // nonempty: either way the worker should flush soon. Between the
        // two, the queue stays nonempty and the worker is already awake,
        // so no further unparks are needed.
        if len >= self.shared.batch_threshold || (len == 1 && self.shared.wake_on_first) {
            if let Some(worker) = self.shared.worker_thread.get() {
                worker.unpark();
            }
        }
        // Backpressure: if the worker cannot keep up, the enqueuer pays
        // for one (shared) grace period — amortized over 8× threshold
        // retirements, the snippet-3 `URCU_MAX_FREE_PTRS` pattern.
        if len >= self.shared.batch_threshold.saturating_mul(8) {
            self.shared.flush();
        }
    }

    /// Enqueues a deferred `drop(Box::from_raw(ptr))`.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::<T>::into_raw`, be exclusively owned by
    /// the caller (unlinked from every shared structure), and `T: Send`
    /// in spirit: the drop may run on another thread.
    pub unsafe fn retire<T>(&self, ptr: *mut T) {
        unsafe fn drop_box<T>(p: *mut u8) {
            // SAFETY: `p` was created from `Box::into_raw` of a `T`.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        // SAFETY: forwarded to the caller's contract.
        unsafe { self.defer(ptr.cast(), drop_box::<T>) };
    }

    /// Takes the current queue, waits out **one** grace period, and runs
    /// the batch on the calling thread. Returns how many callbacks ran
    /// (`0` for an empty queue — no grace period is paid then).
    pub fn flush(&self) -> usize {
        self.shared.flush()
    }

    /// Flushes until the queue is empty **and** no concurrent flush still
    /// holds an unexecuted batch. On return every callback enqueued
    /// before the call has run (assuming no concurrent enqueuers).
    pub fn drain(&self) {
        loop {
            self.shared.flush();
            if self.shared.queue_len() == 0 && self.shared.in_flight.load(Ordering::Acquire) == 0 {
                return;
            }
            // Progress needs a concurrent flusher to finish its batch:
            // park under a deterministic schedule until its wake hint.
            chaos::blocked!("reclaim/drain/wait");
            std::thread::yield_now();
        }
    }

    /// Callbacks currently queued (not counting in-flight batches).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.queue_len()
    }

    /// Flush batches executed so far (always-on diagnostics; each batch
    /// paid one shared grace period).
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.shared.batches.load(Ordering::Relaxed)
    }

    /// Callbacks executed so far (always-on diagnostics).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// This domain's metric instruments (no-ops unless the crate is
    /// built with the `stats` feature).
    #[must_use]
    pub fn metrics(&self) -> &DeferredMetrics {
        &self.shared.metrics
    }
}

impl<F: RcuFlavor> Drop for CallRcu<F> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(worker) = self.worker.take() {
            worker.thread().unpark();
            let _ = worker.join();
        }
        // The worker is gone; run everything still queued. Callbacks hold
        // resources (retired nodes, transferred locks), so they must run,
        // not leak. `flush` still pays the grace period: the owner
        // dropping the domain does not prove other threads' readers are
        // done.
        while self.shared.flush() > 0 {}
    }
}

impl<F: RcuFlavor> fmt::Debug for CallRcu<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CallRcu")
            .field("rcu", &F::NAME)
            .field("pending", &self.pending())
            .field("batches", &self.batches())
            .field("executed", &self.executed())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus_rcu::ScalableRcu;
    use core::sync::atomic::AtomicU64;

    struct Canary<'a>(&'a AtomicU64);

    impl Drop for Canary<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn flush_runs_every_callback_once() {
        let drops = AtomicU64::new(0);
        let deferred = CallRcu::new(Arc::new(ScalableRcu::new()));
        for _ in 0..10 {
            let p = Box::into_raw(Box::new(Canary(&drops)));
            // SAFETY: owned, sendable, freed exactly once by the callback.
            unsafe { deferred.retire(p) };
        }
        let before = deferred.batches();
        deferred.drain();
        assert_eq!(drops.load(Ordering::SeqCst), 10);
        assert!(deferred.batches() > before);
        assert_eq!(deferred.executed(), 10);
        assert_eq!(deferred.pending(), 0);
        drop(deferred);
        assert_eq!(drops.load(Ordering::SeqCst), 10, "no double free on drop");
    }

    #[test]
    fn empty_flush_pays_no_grace_period() {
        let rcu = Arc::new(ScalableRcu::new());
        let deferred = CallRcu::new(Arc::clone(&rcu));
        let before = rcu.grace_periods();
        assert_eq!(deferred.flush(), 0);
        assert_eq!(rcu.grace_periods(), before);
    }

    #[test]
    fn one_batch_means_one_shared_grace_period_window() {
        let rcu = Arc::new(ScalableRcu::new());
        // A huge threshold and long interval: nothing flushes until we do.
        let deferred = CallRcu::with_config(
            Arc::clone(&rcu),
            CallRcuConfig {
                batch_threshold: 1 << 20,
                worker_interval: Duration::from_secs(3600),
                wake_on_first: false,
                eager_flush: false,
            },
        );
        let drops = AtomicU64::new(0);
        for _ in 0..100 {
            let p = Box::into_raw(Box::new(Canary(&drops)));
            // SAFETY: as above.
            unsafe { deferred.retire(p) };
        }
        assert_eq!(deferred.pending(), 100);
        let gp_before = rcu.grace_periods();
        assert_eq!(deferred.flush(), 100);
        let gp_spent = rcu.grace_periods() - gp_before;
        assert_eq!(drops.load(Ordering::SeqCst), 100);
        assert!(
            gp_spent <= 2,
            "100 retirements must share O(1) grace periods, spent {gp_spent}"
        );
        assert_eq!(deferred.batches(), 1);
    }

    #[test]
    fn drop_executes_pending_callbacks() {
        let drops = AtomicU64::new(0);
        {
            let deferred = CallRcu::with_config(
                Arc::new(ScalableRcu::new()),
                CallRcuConfig {
                    batch_threshold: 1 << 20,
                    worker_interval: Duration::from_secs(3600),
                    wake_on_first: false,
                    eager_flush: false,
                },
            );
            for _ in 0..17 {
                let p = Box::into_raw(Box::new(Canary(&drops)));
                // SAFETY: as above.
                unsafe { deferred.retire(p) };
            }
            assert_eq!(drops.load(Ordering::SeqCst), 0);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn worker_flushes_without_explicit_calls() {
        let drops = AtomicU64::new(0);
        let deferred = CallRcu::with_config(
            Arc::new(ScalableRcu::new()),
            CallRcuConfig {
                batch_threshold: 4,
                ..CallRcuConfig::default()
            },
        );
        for _ in 0..8 {
            let p = Box::into_raw(Box::new(Canary(&drops)));
            // SAFETY: as above.
            unsafe { deferred.retire(p) };
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while drops.load(Ordering::SeqCst) < 8 {
            assert!(
                std::time::Instant::now() < deadline,
                "worker never flushed the queue"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let deferred = CallRcu::new(Arc::new(ScalableRcu::new()));
        assert!(format!("{deferred:?}").contains("CallRcu"));
    }
}
