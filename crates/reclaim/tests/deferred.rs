//! Lifecycle and safety tests for the `call_rcu`-style deferred
//! reclamation domain ([`CallRcu`]): nothing is freed while a
//! pre-existing reader is inside its critical section, nothing leaks at
//! shutdown, nothing is freed twice under concurrency, and batches
//! amortize grace periods. The chaos sweep at the bottom perturbs the
//! retire/flush/worker failpoints under pinned seeds.

use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};
use citrus_reclaim::{CallRcu, CallRcuConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Counts its drops, so a leak (count too low) and a double free (count
/// too high) are both visible.
struct Canary(Arc<AtomicU64>);

impl Drop for Canary {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn retire_canaries<F: RcuFlavor>(deferred: &CallRcu<F>, drops: &Arc<AtomicU64>, n: usize) {
    for _ in 0..n {
        let p = Box::into_raw(Box::new(Canary(Arc::clone(drops))));
        // SAFETY: freshly boxed, exclusively owned, sendable.
        unsafe { deferred.retire(p) };
    }
}

/// A configuration whose worker never flushes on its own, so the test
/// controls exactly when grace periods are paid.
fn manual_config() -> CallRcuConfig {
    CallRcuConfig {
        batch_threshold: 1 << 20,
        worker_interval: Duration::from_secs(3600),
        wake_on_first: false,
        eager_flush: false,
    }
}

/// The core RCU safety property, end to end: objects retired while a
/// reader is inside its read-side critical section must not be freed
/// until that reader leaves — even though the background worker keeps
/// trying to flush the queue.
fn reader_blocks_frees<F: RcuFlavor>() {
    let rcu = Arc::new(F::new());
    // Threshold 4 with 10 retirements: the worker flushes (and blocks in
    // synchronize), but the enqueuer never crosses the 8× backpressure
    // watermark — it must stay free to release the reader below.
    let deferred = CallRcu::with_config(
        Arc::clone(&rcu),
        CallRcuConfig {
            batch_threshold: 4,
            ..CallRcuConfig::default()
        },
    );
    let drops = Arc::new(AtomicU64::new(0));
    let reader_in = AtomicBool::new(false);
    let release = AtomicBool::new(false);

    std::thread::scope(|scope| {
        {
            let (rcu, reader_in, release) = (&rcu, &reader_in, &release);
            scope.spawn(move || {
                let handle = rcu.register();
                let guard = handle.read_lock();
                reader_in.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                drop(guard);
            });
        }
        while !reader_in.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Retired *after* the reader entered: the grace period covering
        // these retirements cannot end before the reader leaves.
        retire_canaries(&deferred, &drops, 10);
        // Give the worker (threshold 4, 1ms interval) ample time to take
        // the batch and park inside synchronize.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "a deferred free ran while a pre-existing reader was still inside"
        );
        release.store(true, Ordering::Release);
    });
    deferred.drain();
    assert_eq!(drops.load(Ordering::SeqCst), 10);
}

#[test]
fn reader_blocks_frees_scalable() {
    reader_blocks_frees::<ScalableRcu>();
}

#[test]
fn reader_blocks_frees_global_lock() {
    reader_blocks_frees::<GlobalLockRcu>();
}

/// Shutdown lifecycle: dropping the domain with a loaded queue — filled
/// by several racing threads — must run every callback exactly once.
#[test]
fn drop_with_pending_queue_frees_everything() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 100;
    let drops = Arc::new(AtomicU64::new(0));
    {
        let deferred = CallRcu::with_config(Arc::new(ScalableRcu::new()), manual_config());
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let (deferred, drops, barrier) = (&deferred, &drops, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    retire_canaries(deferred, drops, PER_THREAD);
                });
            }
        });
        // Nothing has flushed (manual config); the whole load rides on
        // the Drop path.
        assert_eq!(deferred.pending(), THREADS * PER_THREAD);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        (THREADS * PER_THREAD) as u64,
        "drop must flush the queue: anything less is a leak, more a double free"
    );
}

/// Retirers racing explicit flushers and the background worker: every
/// canary is freed exactly once (the drop counter is exact, so a double
/// free overshoots and a leak undershoots).
#[test]
fn concurrent_retire_and_flush_frees_exactly_once() {
    const RETIRERS: usize = 3;
    const PER_THREAD: usize = 500;
    let drops = Arc::new(AtomicU64::new(0));
    let deferred = CallRcu::with_config(
        Arc::new(ScalableRcu::new()),
        CallRcuConfig {
            batch_threshold: 8,
            ..CallRcuConfig::default()
        },
    );
    let live_retirers = AtomicUsize::new(RETIRERS);
    let barrier = Barrier::new(RETIRERS + 1);
    std::thread::scope(|scope| {
        for _ in 0..RETIRERS {
            let (deferred, drops, barrier, live_retirers) =
                (&deferred, &drops, &barrier, &live_retirers);
            scope.spawn(move || {
                barrier.wait();
                retire_canaries(deferred, drops, PER_THREAD);
                live_retirers.fetch_sub(1, Ordering::Release);
            });
        }
        let (deferred, barrier, live_retirers) = (&deferred, &barrier, &live_retirers);
        scope.spawn(move || {
            barrier.wait();
            // Flush against the retirers until the last one finishes.
            while live_retirers.load(Ordering::Acquire) > 0 {
                deferred.flush();
                std::thread::yield_now();
            }
        });
    });
    deferred.drain();
    assert_eq!(drops.load(Ordering::SeqCst), (RETIRERS * PER_THREAD) as u64);
    assert_eq!(deferred.executed(), (RETIRERS * PER_THREAD) as u64);
}

/// The point of the exercise: retirements from many threads share grace
/// periods instead of paying one each. 400 retirements drained in a
/// handful of batches must spend far fewer than 400 grace periods.
#[test]
fn batches_amortize_grace_periods() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 100;
    let rcu = Arc::new(ScalableRcu::new());
    let deferred = CallRcu::with_config(Arc::clone(&rcu), manual_config());
    let drops = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (deferred, drops) = (&deferred, &drops);
            scope.spawn(move || retire_canaries(deferred, drops, PER_THREAD));
        }
    });
    let gp_before = rcu.grace_periods();
    deferred.drain();
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(drops.load(Ordering::SeqCst), total);
    let gp_spent = rcu.grace_periods() - gp_before;
    assert!(
        gp_spent * 10 <= total,
        "{total} retirements must amortize to few grace periods, spent {gp_spent}"
    );
}

/// Chaos sweep over the new retire/flush/worker failpoints: under pinned
/// seeds that yield, spin, and starve the worker (forcing the
/// backpressure and drain paths), the exactly-once guarantee must hold,
/// and the sites must actually fire.
#[cfg(feature = "chaos")]
#[test]
fn chaos_seed_sweep_over_deferred_failpoints() {
    use citrus_chaos::{self as chaos, ChaosPlan};
    for seed in [0xDEFE_0001u64, 0xDEFE_0002, 0xDEFE_0003, 0xDEFE_0004] {
        let _plan = chaos::install(
            ChaosPlan::from_seed(seed)
                .yields(250)
                .spins(250, 64)
                // High skip rate starves the worker: enqueuers must
                // survive on backpressure flushes and the final drain.
                .fails(800)
                .traced(true),
        );
        chaos::set_thread_stream(0);
        let drops = Arc::new(AtomicU64::new(0));
        let deferred = CallRcu::with_config(
            Arc::new(ScalableRcu::new()),
            CallRcuConfig {
                batch_threshold: 4,
                ..CallRcuConfig::default()
            },
        );
        retire_canaries(&deferred, &drops, 200);
        deferred.drain();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            200,
            "seed {seed:#x}: chaos perturbation broke exactly-once execution"
        );
        let trace = chaos::take_trace();
        for site in ["reclaim/defer/enqueue", "reclaim/flush/before-synchronize"] {
            assert!(
                trace.iter().any(|e| e.point == site),
                "seed {seed:#x}: failpoint {site} never fired on the main thread"
            );
        }
        drop(deferred);
    }
}
