//! Exhaustive schedule exploration of the deferred-reclamation flush
//! handoff: an eager-flushing enqueuer racing a `drain()` caller over
//! the `reclaim/flush/*` window.
//!
//! The interesting interleaving: thread 0 takes a batch off the queue
//! and pauses between "claimed" and "executed" (`in_flight > 0`), while
//! thread 1's `drain()` finds the queue empty but the batch still in
//! flight — it must park at `reclaim/drain/wait` until the flusher's
//! wake hint, not return early and not wedge. The oracle is
//! exactly-once execution: every deferred callback bumps its own cell,
//! and a completed schedule must leave each cell at exactly 1 (a lost
//! batch reads 0, a double execution reads 2).
//!
//! The background worker is made inert (huge interval, no wake-on-first,
//! eager flush at threshold 1) so the two scheduled threads are the only
//! actors — the worker thread is unregistered with the scheduler and
//! must not race real-time decisions into a deterministic run.

#![cfg(feature = "chaos")]

use citrus_chaos::{run_schedule, ExploreReport, ExploredRun, Explorer};
use citrus_rcu::GlobalLockRcu;
use citrus_reclaim::{CallRcu, CallRcuConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Each deferred callback bumps the `AtomicUsize` its payload points at.
unsafe fn bump(p: *mut u8) {
    // SAFETY: every `defer` in this test passes a pointer to one of the
    // leaked `cells` below, alive for the whole process.
    unsafe { &*p.cast::<AtomicUsize>() }.fetch_add(1, Ordering::SeqCst);
}

fn inert_worker_config() -> CallRcuConfig {
    CallRcuConfig {
        batch_threshold: 1,
        worker_interval: Duration::from_secs(3600),
        wake_on_first: false,
        eager_flush: true,
    }
}

/// One deterministic run. Returns the per-callback execution counts so
/// the caller can check the exactly-once oracle on clean completions.
fn flush_race_run(plan: &citrus_chaos::SchedulePlan) -> ExploredRun {
    let dom = CallRcu::with_config(Arc::new(GlobalLockRcu::new()), inert_worker_config());
    let cells: &'static [AtomicUsize; 3] = Box::leak(Box::new([
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
    ]));
    let cell_ptr = |i: usize| core::ptr::from_ref(&cells[i]).cast_mut().cast::<u8>();
    let outcome = run_schedule(
        plan,
        vec![
            Box::new(|| {
                // Eager mode at threshold 1: each defer claims and
                // flushes its own one-element batch inline.
                // SAFETY: payloads are leaked statics; `bump` is Send-safe.
                unsafe {
                    dom.defer(cell_ptr(0), bump);
                    dom.defer(cell_ptr(1), bump);
                }
            }),
            Box::new(|| {
                // SAFETY: as above.
                unsafe { dom.defer(cell_ptr(2), bump) };
                // Must wait out any batch thread 0 still holds in flight.
                dom.drain();
            }),
        ],
    );
    let verdict = if outcome.clean() {
        let counts: Vec<usize> = cells.iter().map(|c| c.load(Ordering::SeqCst)).collect();
        if counts.iter().all(|&c| c == 1) {
            Ok(())
        } else {
            Err(format!(
                "callbacks must run exactly once per completed schedule; counts = {counts:?}"
            ))
        }
    } else {
        Ok(())
    };
    ExploredRun { outcome, verdict }
}

fn sweep(bound: usize) -> ExploreReport {
    Explorer::with_bound(bound).explore(flush_race_run)
}

#[test]
fn eager_flush_vs_drain_is_exactly_once() {
    let report = sweep(2);
    if let Some(f) = &report.failure {
        panic!(
            "deferred flush handoff violation: {f}\n  replay: CITRUS_SCHEDULE={}",
            f.schedule
        );
    }
    assert_eq!(
        report.deadlocks, 0,
        "drain must never wedge on an in-flight batch"
    );
    for point in [
        "reclaim/defer/enqueue",
        "reclaim/flush/before-synchronize",
        "reclaim/flush/after-synchronize",
        "reclaim/drain/wait",
    ] {
        assert!(
            report.points_hit.contains(point),
            "sweep never reached {point}; hit: {:?}",
            report.points_hit
        );
    }
}

/// Same determinism pin as the other explore suites: a fixed bound must
/// enumerate a fixed number of schedules, or a flush-path yield point
/// silently appeared/vanished (budget-limited lanes skip the pin).
#[test]
fn flush_schedule_count_is_stable() {
    let first = sweep(1);
    let second = sweep(1);
    assert!(first.failure.is_none(), "bound-1 sweep must be clean");
    assert_eq!(first.schedules, second.schedules);
    if first.completed && second.completed {
        assert_eq!(
            first.schedules, 26,
            "bound-1 schedule count drifted — a flush-path yield point \
             appeared or vanished; re-harvest if deliberate"
        );
    }
}
