//! Result tables: aligned text output (mirroring the paper's figures as
//! rows/series) and CSV files for external plotting.

use citrus_obs::MetricsSnapshot;
use core::fmt;
use std::io::Write as _;
use std::path::PathBuf;

/// One line in a figure: an algorithm's throughput across the x-axis
/// (thread counts).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. `"Citrus"`).
    pub label: String,
    /// Throughput (ops/s) per x-axis point.
    pub points: Vec<f64>,
}

/// A reproduced figure panel: x-axis (threads) plus one series per
/// algorithm.
#[derive(Debug, Clone)]
pub struct Report {
    /// Panel title (e.g. `"Fig. 10 — 50% contains, key range [0,2e5]"`).
    pub title: String,
    /// X-axis values (thread counts).
    pub threads: Vec<usize>,
    /// One series per algorithm.
    pub series: Vec<Series>,
    /// Internal-metrics snapshot taken after the panel's runs, when the
    /// run collected metrics ([`BenchConfig::collect_metrics`]); rendered
    /// as an extra section and written to `<name>_metrics.csv`.
    ///
    /// [`BenchConfig::collect_metrics`]: crate::BenchConfig::collect_metrics
    pub metrics: Option<MetricsSnapshot>,
}

impl Report {
    /// Creates an empty report for the given thread sweep.
    pub fn new(title: impl Into<String>, threads: Vec<usize>) -> Self {
        Self {
            title: title.into(),
            threads,
            series: Vec::new(),
            metrics: None,
        }
    }

    /// Appends a series.
    pub fn push(&mut self, label: impl Into<String>, points: Vec<f64>) {
        assert_eq!(points.len(), self.threads.len(), "series length mismatch");
        self.series.push(Series {
            label: label.into(),
            points,
        });
    }

    /// Writes the report as CSV under `target/experiments/<name>.csv`;
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or file.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        write!(f, "algorithm")?;
        for t in &self.threads {
            write!(f, ",{t}")?;
        }
        writeln!(f)?;
        for s in &self.series {
            write!(f, "{}", s.label)?;
            for p in &s.points {
                write!(f, ",{p:.0}")?;
            }
            writeln!(f)?;
        }
        if let Some(metrics) = &self.metrics {
            std::fs::write(dir.join(format!("{name}_metrics.csv")), metrics.to_csv())?;
        }
        Ok(path)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:<26}", "algorithm \\ threads")?;
        for t in &self.threads {
            write!(f, "{t:>12}")?;
        }
        writeln!(f)?;
        for s in &self.series {
            write!(f, "{:<26}", s.label)?;
            for p in &s.points {
                write!(f, "{:>12}", format_throughput(*p))?;
            }
            writeln!(f)?;
        }
        if let Some(metrics) = &self.metrics {
            writeln!(f, "\n-- internal metrics (last rep, max threads) --")?;
            write!(f, "{metrics}")?;
        }
        Ok(())
    }
}

/// Human-scale throughput formatting (`3.21M`, `870k`, ...).
fn format_throughput(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.2}M", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.0}k", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("test", vec![1, 4]);
        r.push("Citrus", vec![1_500_000.0, 4_200_000.0]);
        r.push("Bonsai", vec![800.0, 70_500.0]);
        let out = format!("{r}");
        assert!(out.contains("Citrus"));
        assert!(out.contains("1.50M"));
        assert!(out.contains("70k") || out.contains("71k"));
        assert!(out.contains("800"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_series() {
        let mut r = Report::new("test", vec![1, 4]);
        r.push("x", vec![1.0]);
    }

    #[test]
    fn csv_round_trips() {
        let mut r = Report::new("csv-test", vec![1, 2]);
        r.push("A", vec![10.0, 20.0]);
        let path = r.write_csv("unit_test_report").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("algorithm,1,2"));
        assert!(body.contains("A,10,20"));
        std::fs::remove_file(path).ok();
    }
}
