//! The paper's three experimental figures, as runnable experiment
//! definitions. Each function sweeps the configured thread counts and
//! returns one [`Report`] per figure panel.

//! With [`BenchConfig::collect_metrics`] set (env `CITRUS_METRICS=1`, or
//! `--metrics` on the `citrus-bench` binaries), each panel additionally
//! snapshots the Citrus-internal metrics — RCU read sections and
//! `synchronize_rcu` latency, reclamation limbo depth, tree lock/retry
//! counters — of the highest-thread-count point, attached as
//! [`Report::metrics`].

use crate::config::BenchConfig;
use crate::keydist::KeyDist;
use crate::report::Report;
use crate::runner::{run_algo_observed, run_forest_observed, ForestRun};
use crate::workload::{Algo, OpMix, WorkloadSpec};
use citrus::{GlobalLockRcu, RcuFlavor, ReclaimMode, RouterKind, ScalableRcu};
use citrus_obs::MetricsRegistry;

/// Builds the per-point observer: metrics are collected only at the
/// panel's maximum thread count (the most contended, most informative
/// point), each algorithm prefixed `"<label>@<t>t/"`.
fn observer_for(
    registry: Option<&MetricsRegistry>,
    algo: Algo,
    t: usize,
    observe_at: usize,
) -> Option<(&MetricsRegistry, String)> {
    registry
        .filter(|_| t == observe_at)
        .map(|r| (r, format!("{}@{t}t/", algo.label())))
}

/// Figure 8 — impact of concurrent updates on the RCU implementation:
/// Citrus over the standard (global-lock) RCU vs. over the paper's
/// scalable RCU; 50% contains, small key range.
///
/// Expected shape: the standard-RCU line collapses as threads (and thus
/// concurrent `synchronize_rcu` calls) grow; the scalable line does not.
pub fn fig8(cfg: &BenchConfig) -> Report {
    let mix = OpMix::with_contains(50);
    let mut report = Report::new(
        format!(
            "Fig. 8 — Citrus: standard vs scalable RCU (50% contains, range [0,{}])",
            cfg.range_small
        ),
        cfg.threads.clone(),
    );
    let registry = cfg.collect_metrics.then(MetricsRegistry::new);
    let observe_at = cfg.threads.iter().copied().max().unwrap_or(0);
    for algo in [Algo::CitrusStdRcu, Algo::Citrus] {
        let points = cfg
            .threads
            .iter()
            .map(|&t| {
                let spec = WorkloadSpec::new(cfg.range_small, mix, t, cfg.duration);
                let observer = observer_for(registry.as_ref(), algo, t, observe_at);
                run_algo_observed(
                    algo,
                    &spec,
                    cfg.reps,
                    0x816,
                    observer.as_ref().map(|(r, p)| (*r, p.as_str())),
                )
            })
            .collect();
        report.push(algo.label(), points);
    }
    // Third series: the sharded forest over the scalable flavor at the
    // configured maximum shard count, same workload — shows what breaking
    // grace-period serialization buys on top of the scalable RCU.
    let forest_shards = cfg
        .shards
        .iter()
        .copied()
        .max()
        .unwrap_or(1)
        .next_power_of_two();
    let forest_points = cfg
        .threads
        .iter()
        .map(|&t| {
            let spec = WorkloadSpec::new(cfg.range_small, mix, t, cfg.duration)
                .with_key_dist(cfg.key_dist);
            run_forest_observed::<ScalableRcu>(
                forest_shards,
                ReclaimMode::Leak,
                citrus::deferred_free_from_env(),
                cfg.router,
                &spec,
                cfg.reps,
                0x816,
                None,
            )
            .ops_per_s
        })
        .collect();
    report.push(
        format!("Citrus forest ({forest_shards} shards)"),
        forest_points,
    );
    report.metrics = registry.map(|r| r.snapshot());
    report
}

/// One cell of the [`forest_sweep`] grid: one `(flavor, shard count,
/// operation mix, reclamation mode)` combination at the configured
/// maximum thread count.
#[derive(Debug, Clone)]
pub struct ForestCell {
    /// RCU flavor name (`RcuFlavor::NAME`).
    pub flavor: &'static str,
    /// Routing policy label (`RouterKind::as_str`).
    pub router: &'static str,
    /// Shard count (power of two).
    pub shards: usize,
    /// Percentage of `contains` operations (the rest split insert/delete).
    pub contains_pct: u32,
    /// Worker thread count.
    pub threads: usize,
    /// Whether two-child deletes deferred their unlink (`call_rcu`
    /// batches) instead of synchronizing inline.
    pub deferred: bool,
    /// Key distribution label for the timed draws (`KeyDist::label`).
    pub key_dist: String,
    /// The timed run's result, including per-shard counters.
    pub run: ForestRun,
}

/// The forest shard sweep: `shards ∈ cfg.shards × update ratio
/// {50%, 100%} × router {hash, range} × RCU flavor {scalable,
/// global-lock} × unlink mode {inline, deferred}`, all at the configured
/// maximum thread count — the experiment behind `BENCH_forest.json`,
/// quantifying the speedup from per-shard grace-period domains, from
/// taking the grace-period wait off the delete path, and establishing
/// that point-op throughput is router-agnostic under uniform keys.
pub fn forest_sweep(cfg: &BenchConfig) -> Vec<ForestCell> {
    let threads = cfg.threads.iter().copied().max().unwrap_or(1);
    let mut cells = Vec::new();
    for contains_pct in [50u32, 0] {
        let mix = OpMix::with_contains(contains_pct);
        for &shards in &cfg.shards {
            let shards = shards.next_power_of_two();
            let spec = WorkloadSpec::new(cfg.range_small, mix, threads, cfg.duration)
                .with_key_dist(cfg.key_dist);
            for router in [RouterKind::Hash, RouterKind::Range] {
                for flavor in [ScalableRcu::NAME, GlobalLockRcu::NAME] {
                    for deferred in [false, true] {
                        // Leak mode, matching the paper's no-reclamation
                        // methodology (and the fig8 tree series), so the
                        // sweep isolates grace-period effects from
                        // reclamation cost.
                        let run = if flavor == ScalableRcu::NAME {
                            run_forest_observed::<ScalableRcu>(
                                shards,
                                ReclaimMode::Leak,
                                deferred,
                                router,
                                &spec,
                                cfg.reps,
                                0xF04E,
                                None,
                            )
                        } else {
                            run_forest_observed::<GlobalLockRcu>(
                                shards,
                                ReclaimMode::Leak,
                                deferred,
                                router,
                                &spec,
                                cfg.reps,
                                0xF04E,
                                None,
                            )
                        };
                        cells.push(ForestCell {
                            flavor,
                            router: router.as_str(),
                            shards,
                            contains_pct,
                            threads,
                            deferred,
                            key_dist: cfg.key_dist.label(),
                            run,
                        });
                    }
                }
            }
        }
    }
    cells
}

/// One cell of the [`forest_scan_sweep`] grid: full-forest validated
/// range scans racing per-shard update churn at one shard count.
#[derive(Debug, Clone)]
pub struct ForestScanCell {
    /// RCU flavor name (`RcuFlavor::NAME`).
    pub flavor: &'static str,
    /// Routing policy label (`RouterKind::as_str`).
    pub router: &'static str,
    /// Shard count (power of two).
    pub shards: usize,
    /// Scanning threads.
    pub scanners: usize,
    /// Churning threads.
    pub updaters: usize,
    /// Width of each scanned key range.
    pub span: u64,
    /// Aggregate whole-forest scans per second.
    pub scans_per_s: f64,
    /// Fan-out restarts (any entered shard's validation failing restarts
    /// the entire fan-out) — `stats` feature only, else 0.
    pub restarts: u64,
}

/// The forest scan sweep: validated `range_scan` throughput over
/// `shards ∈ cfg.shards × router {hash, range} × span {narrow, full} ×
/// flavor {scalable, global-lock}` with half the configured maximum
/// threads scanning and half churning.
///
/// This is the cost model for sharded ordered reads (DESIGN.md §6i/§6j):
/// hash routing scatters every span over every shard, so scans/s *falls*
/// as the shard count grows no matter how narrow the span; range routing
/// enters only the overlapping shards, so narrow-span scans/s should
/// *rise* with the shard count (smaller trees, fewer edges, one
/// grace-period domain), while full-span scans — which overlap every
/// shard under either router — keep paying the all-shard price.
pub fn forest_scan_sweep(cfg: &BenchConfig) -> Vec<ForestScanCell> {
    let threads = cfg.threads.iter().copied().max().unwrap_or(2).max(2);
    let scanners = threads / 2;
    let updaters = threads - scanners;
    // Narrow enough to stay inside one shard at the widest swept shard
    // count (a span of range/64 straddles a boundary in ~12% of draws at
    // 8 shards); a wider "narrow" span would re-smuggle the straddle
    // cost into the cells that exist to show shard-local scans.
    let narrow = (cfg.range_small / 64).max(16);
    let mut cells = Vec::new();
    for &shards in &cfg.shards {
        let shards = shards.next_power_of_two();
        for router in [RouterKind::Hash, RouterKind::Range] {
            for span in [narrow, cfg.range_small] {
                for flavor in [ScalableRcu::NAME, GlobalLockRcu::NAME] {
                    let (scans_per_s, restarts) = if flavor == ScalableRcu::NAME {
                        run_forest_scans::<ScalableRcu>(
                            shards, router, scanners, updaters, span, cfg,
                        )
                    } else {
                        run_forest_scans::<GlobalLockRcu>(
                            shards, router, scanners, updaters, span, cfg,
                        )
                    };
                    cells.push(ForestScanCell {
                        flavor,
                        router: router.as_str(),
                        shards,
                        scanners,
                        updaters,
                        span,
                        scans_per_s,
                        restarts,
                    });
                }
            }
        }
    }
    cells
}

/// One timed cell of [`forest_scan_sweep`]: returns (scans/s, restarts).
fn run_forest_scans<F: RcuFlavor>(
    shards: usize,
    router: RouterKind,
    scanners: usize,
    updaters: usize,
    span: u64,
    cfg: &BenchConfig,
) -> (f64, u64) {
    use citrus::CitrusForest;
    use citrus_api::testkit::SplitMix64;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Barrier;

    let key_range = cfg.range_small;
    let forest: CitrusForest<u64, u64, F> = match router {
        RouterKind::Hash => CitrusForest::with_config(shards, 0xF04E, ReclaimMode::Leak),
        RouterKind::Range => CitrusForest::with_range_router_options(
            citrus::even_splitters(shards, key_range),
            ReclaimMode::Leak,
            citrus::deferred_free_from_env(),
        ),
    };
    {
        let mut s = forest.session();
        let mut rng = SplitMix64::new(0x5CA4);
        for _ in 0..key_range / 2 {
            let k = rng.below(key_range);
            s.insert(k, k);
        }
    }
    let done = AtomicUsize::new(0);
    let scans = AtomicU64::new(0);
    let barrier = Barrier::new(scanners + updaters + 1);
    let dur = cfg.duration;
    std::thread::scope(|s| {
        for i in 0..updaters {
            let (forest, done, barrier) = (&forest, &done, &barrier);
            s.spawn(move || {
                let mut sess = forest.session();
                let mut rng = SplitMix64::new(0x0BD_0000 + i as u64);
                barrier.wait();
                while done.load(Ordering::Relaxed) < scanners {
                    let k = rng.below(key_range);
                    if rng.below(2) == 0 {
                        sess.insert(k, k);
                    } else {
                        sess.remove(&k);
                    }
                }
            });
        }
        for i in 0..scanners {
            let (forest, done, scans, barrier) = (&forest, &done, &scans, &barrier);
            s.spawn(move || {
                let mut sess = forest.session();
                let mut rng = SplitMix64::new(0xA5C_0000 + i as u64);
                let mut n = 0u64;
                barrier.wait();
                let start = std::time::Instant::now();
                while start.elapsed() < dur {
                    let lo = rng.below(key_range.saturating_sub(span).max(1));
                    let found = sess.range_scan(&lo, &(lo + span));
                    std::hint::black_box(&found);
                    n += 1;
                }
                scans.fetch_add(n, Ordering::Relaxed);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        barrier.wait();
    });
    (
        scans.load(Ordering::Relaxed) as f64 / dur.as_secs_f64(),
        forest.metrics().scan_restarts(),
    )
}

/// One cell of the [`forest_skew_sweep`] grid: a Zipfian hot-key point
/// workload under one router — the honest cost side of range routing.
#[derive(Debug, Clone)]
pub struct ForestSkewCell {
    /// RCU flavor name (`RcuFlavor::NAME`).
    pub flavor: &'static str,
    /// Routing policy label (`RouterKind::as_str`).
    pub router: &'static str,
    /// Shard count (power of two).
    pub shards: usize,
    /// Key distribution label (`zipf:<theta>`).
    pub key_dist: String,
    /// Percentage of `contains` operations.
    pub contains_pct: u32,
    /// Worker thread count.
    pub threads: usize,
    /// The timed run's result; `sync_calls_per_shard` is the skew
    /// evidence — occupancy stays prefill-uniform (hot-key inserts and
    /// deletes cancel), but under range routing the adjacent hot keys
    /// funnel their two-child-delete grace periods into shard 0.
    pub run: ForestRun,
}

/// The skew sweep: a YCSB-style `zipf:0.99` hot-key point workload over
/// `shards ∈ cfg.shards × router {hash, range}` (scalable flavor, 50%
/// contains, max threads). This documents the tradeoff hash routing was
/// bought for: Zipfian traffic concentrates on small *adjacent* keys,
/// which hash routing scatters across shards but range routing sends to
/// a single shard — one grace-period domain absorbing most updates.
pub fn forest_skew_sweep(cfg: &BenchConfig) -> Vec<ForestSkewCell> {
    let threads = cfg.threads.iter().copied().max().unwrap_or(1);
    let contains_pct = 50u32;
    let dist = KeyDist::Zipf { theta: 0.99 };
    let spec = WorkloadSpec::new(
        cfg.range_small,
        OpMix::with_contains(contains_pct),
        threads,
        cfg.duration,
    )
    .with_key_dist(dist);
    let mut cells = Vec::new();
    for &shards in &cfg.shards {
        let shards = shards.next_power_of_two();
        for router in [RouterKind::Hash, RouterKind::Range] {
            let run = run_forest_observed::<ScalableRcu>(
                shards,
                ReclaimMode::Leak,
                false,
                router,
                &spec,
                cfg.reps,
                0x51E3,
                None,
            );
            cells.push(ForestSkewCell {
                flavor: ScalableRcu::NAME,
                router: router.as_str(),
                shards,
                key_dist: dist.label(),
                contains_pct,
                threads,
                run,
            });
        }
    }
    cells
}

/// Figure 9 — single-writer workload (designed to favor the RCU trees):
/// one thread runs 50% insert / 50% delete, all others 100% contains.
/// Two panels: key ranges small and large.
pub fn fig9(cfg: &BenchConfig) -> Vec<Report> {
    [cfg.range_small, cfg.range_large]
        .into_iter()
        .map(|range| {
            let mut report = Report::new(
                format!("Fig. 9 — single writer, key range [0,{range}]"),
                cfg.threads.clone(),
            );
            let registry = cfg.collect_metrics.then(MetricsRegistry::new);
            let observe_at = cfg.threads.iter().copied().max().unwrap_or(0);
            for algo in Algo::FIGURE_SET {
                let points = cfg
                    .threads
                    .iter()
                    .map(|&t| {
                        let spec = WorkloadSpec::single_writer(range, t, cfg.duration);
                        let observer = observer_for(registry.as_ref(), algo, t, observe_at);
                        run_algo_observed(
                            algo,
                            &spec,
                            cfg.reps,
                            0x916,
                            observer.as_ref().map(|(r, p)| (*r, p.as_str())),
                        )
                    })
                    .collect();
                report.push(algo.label(), points);
            }
            report.metrics = registry.map(|r| r.snapshot());
            report
        })
        .collect()
}

/// Figure 10 — the 2×3 grid: key range {small, large} × contains
/// {100%, 98%, 50%}, all six algorithms.
///
/// Expected shapes: at 100% contains the coarse-grained RCU trees
/// (Red-Black, Bonsai) are competitive; with any update share they stop
/// scaling (global update lock) while Citrus stays with the
/// fine-grained/lock-free dictionaries.
pub fn fig10(cfg: &BenchConfig) -> Vec<Report> {
    let mut reports = Vec::new();
    for range in [cfg.range_small, cfg.range_large] {
        for contains_pct in [100u32, 98, 50] {
            let mix = OpMix::with_contains(contains_pct);
            let mut report = Report::new(
                format!("Fig. 10 — {contains_pct}% contains, key range [0,{range}]"),
                cfg.threads.clone(),
            );
            let registry = cfg.collect_metrics.then(MetricsRegistry::new);
            let observe_at = cfg.threads.iter().copied().max().unwrap_or(0);
            for algo in Algo::FIGURE_SET {
                let points = cfg
                    .threads
                    .iter()
                    .map(|&t| {
                        let spec = WorkloadSpec::new(range, mix, t, cfg.duration);
                        let observer = observer_for(registry.as_ref(), algo, t, observe_at);
                        run_algo_observed(
                            algo,
                            &spec,
                            cfg.reps,
                            0x1016,
                            observer.as_ref().map(|(r, p)| (*r, p.as_str())),
                        )
                    })
                    .collect();
                report.push(algo.label(), points);
            }
            report.metrics = registry.map(|r| r.snapshot());
            reports.push(report);
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_smoke() {
        let cfg = BenchConfig::smoke();
        let r = fig8(&cfg);
        assert_eq!(r.series.len(), 3, "two tree flavors plus the forest");
        assert!(r.series.iter().all(|s| s.points.iter().all(|&p| p > 0.0)));
        assert!(r.series[2].label.contains("forest"));
    }

    #[test]
    fn forest_sweep_smoke() {
        let mut cfg = BenchConfig::smoke();
        cfg.shards = vec![1, 2];
        let cells = forest_sweep(&cfg);
        assert_eq!(
            cells.len(),
            32,
            "2 mixes × 2 shard counts × 2 routers × 2 flavors × 2 unlink modes"
        );
        for cell in &cells {
            assert!(cell.run.ops_per_s > 0.0);
            assert_eq!(cell.run.grace_periods_per_shard.len(), cell.shards);
            assert_eq!(cell.threads, 2);
            assert_eq!(cell.key_dist, "uniform");
        }
        assert_eq!(cells.iter().filter(|c| c.deferred).count(), 16);
        assert_eq!(cells.iter().filter(|c| c.router == "range").count(), 16);
    }

    #[test]
    fn forest_scan_sweep_smoke() {
        let mut cfg = BenchConfig::smoke();
        cfg.shards = vec![1, 2];
        let cells = forest_scan_sweep(&cfg);
        assert_eq!(
            cells.len(),
            16,
            "2 shard counts × 2 routers × 2 spans × 2 flavors"
        );
        for cell in &cells {
            assert!(
                cell.scans_per_s > 0.0,
                "every cell must complete scans: {cell:?}"
            );
            assert!(cell.scanners >= 1 && cell.updaters >= 1);
            assert!(cell.span >= 16);
        }
        assert_eq!(cells.iter().filter(|c| c.router == "range").count(), 8);
        assert_eq!(
            cells.iter().filter(|c| c.span == cfg.range_small).count(),
            8,
            "half the cells scan the full range"
        );
    }

    #[test]
    fn forest_skew_sweep_smoke() {
        let mut cfg = BenchConfig::smoke();
        cfg.shards = vec![1, 2];
        let cells = forest_skew_sweep(&cfg);
        assert_eq!(cells.len(), 4, "2 shard counts × 2 routers");
        for cell in &cells {
            assert!(cell.run.ops_per_s > 0.0);
            assert_eq!(cell.key_dist, "zipf:0.99");
            assert_eq!(cell.run.occupancy.len(), cell.shards);
        }
    }

    #[test]
    fn fig9_smoke() {
        let cfg = BenchConfig::smoke();
        let rs = fig9(&cfg);
        assert_eq!(rs.len(), 2);
        for r in rs {
            assert_eq!(r.series.len(), 6);
            assert!(r.series.iter().all(|s| s.points.iter().all(|&p| p > 0.0)));
        }
    }

    #[test]
    fn fig10_smoke() {
        let cfg = BenchConfig::smoke();
        let rs = fig10(&cfg);
        assert_eq!(rs.len(), 6, "2 ranges × 3 mixes");
        for r in rs {
            assert_eq!(r.series.len(), 6);
        }
    }
}
