//! The paper's three experimental figures, as runnable experiment
//! definitions. Each function sweeps the configured thread counts and
//! returns one [`Report`] per figure panel.

use crate::config::BenchConfig;
use crate::report::Report;
use crate::runner::run_algo;
use crate::workload::{Algo, OpMix, WorkloadSpec};

/// Figure 8 — impact of concurrent updates on the RCU implementation:
/// Citrus over the standard (global-lock) RCU vs. over the paper's
/// scalable RCU; 50% contains, small key range.
///
/// Expected shape: the standard-RCU line collapses as threads (and thus
/// concurrent `synchronize_rcu` calls) grow; the scalable line does not.
pub fn fig8(cfg: &BenchConfig) -> Report {
    let mix = OpMix::with_contains(50);
    let mut report = Report::new(
        format!(
            "Fig. 8 — Citrus: standard vs scalable RCU (50% contains, range [0,{}])",
            cfg.range_small
        ),
        cfg.threads.clone(),
    );
    for algo in [Algo::CitrusStdRcu, Algo::Citrus] {
        let points = cfg
            .threads
            .iter()
            .map(|&t| {
                let spec = WorkloadSpec::new(cfg.range_small, mix, t, cfg.duration);
                run_algo(algo, &spec, cfg.reps, 0x816)
            })
            .collect();
        report.push(algo.label(), points);
    }
    report
}

/// Figure 9 — single-writer workload (designed to favor the RCU trees):
/// one thread runs 50% insert / 50% delete, all others 100% contains.
/// Two panels: key ranges small and large.
pub fn fig9(cfg: &BenchConfig) -> Vec<Report> {
    [cfg.range_small, cfg.range_large]
        .into_iter()
        .map(|range| {
            let mut report = Report::new(
                format!("Fig. 9 — single writer, key range [0,{range}]"),
                cfg.threads.clone(),
            );
            for algo in Algo::FIGURE_SET {
                let points = cfg
                    .threads
                    .iter()
                    .map(|&t| {
                        let spec = WorkloadSpec::single_writer(range, t, cfg.duration);
                        run_algo(algo, &spec, cfg.reps, 0x916)
                    })
                    .collect();
                report.push(algo.label(), points);
            }
            report
        })
        .collect()
}

/// Figure 10 — the 2×3 grid: key range {small, large} × contains
/// {100%, 98%, 50%}, all six algorithms.
///
/// Expected shapes: at 100% contains the coarse-grained RCU trees
/// (Red-Black, Bonsai) are competitive; with any update share they stop
/// scaling (global update lock) while Citrus stays with the
/// fine-grained/lock-free dictionaries.
pub fn fig10(cfg: &BenchConfig) -> Vec<Report> {
    let mut reports = Vec::new();
    for range in [cfg.range_small, cfg.range_large] {
        for contains_pct in [100u32, 98, 50] {
            let mix = OpMix::with_contains(contains_pct);
            let mut report = Report::new(
                format!("Fig. 10 — {contains_pct}% contains, key range [0,{range}]"),
                cfg.threads.clone(),
            );
            for algo in Algo::FIGURE_SET {
                let points = cfg
                    .threads
                    .iter()
                    .map(|&t| {
                        let spec = WorkloadSpec::new(range, mix, t, cfg.duration);
                        run_algo(algo, &spec, cfg.reps, 0x1016)
                    })
                    .collect();
                report.push(algo.label(), points);
            }
            reports.push(report);
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_smoke() {
        let cfg = BenchConfig::smoke();
        let r = fig8(&cfg);
        assert_eq!(r.series.len(), 2);
        assert!(r.series.iter().all(|s| s.points.iter().all(|&p| p > 0.0)));
    }

    #[test]
    fn fig9_smoke() {
        let cfg = BenchConfig::smoke();
        let rs = fig9(&cfg);
        assert_eq!(rs.len(), 2);
        for r in rs {
            assert_eq!(r.series.len(), 6);
            assert!(r.series.iter().all(|s| s.points.iter().all(|&p| p > 0.0)));
        }
    }

    #[test]
    fn fig10_smoke() {
        let cfg = BenchConfig::smoke();
        let rs = fig10(&cfg);
        assert_eq!(rs.len(), 6, "2 ranges × 3 mixes");
        for r in rs {
            assert_eq!(r.series.len(), 6);
        }
    }
}
