//! Timed throughput runs (the paper's measurement loop).

use crate::workload::{Algo, OpKind, WorkloadSpec};
use citrus::{
    even_splitters, CitrusForest, CitrusTree, GlobalLockRcu, RcuFlavor, ReclaimMode, RouterKind,
    ScalableRcu,
};
use citrus_api::testkit::SplitMix64;
use citrus_api::{ConcurrentMap, MapSession};
use citrus_baselines::{
    BonsaiTree, LazySkipList, LockFreeBst, OptimisticAvlTree, RelativisticRbTree,
};
use citrus_obs::MetricsRegistry;
use core::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// A worker thread that panicked during a timed run.
#[derive(Debug, Clone)]
pub struct WorkerPanic {
    /// Worker index (position in [`RunResult::per_thread`]).
    pub thread: usize,
    /// The panic payload, stringified.
    pub message: String,
}

/// Result of one timed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total operations completed across all threads.
    pub total_ops: u64,
    /// Measured wall-clock duration.
    pub duration: Duration,
    /// Operations completed per thread (`0` for a panicked worker).
    pub per_thread: Vec<u64>,
    /// Workers that panicked instead of finishing. A run with panics is
    /// *degraded*: surviving workers' throughput is still reported, so one
    /// crashed thread does not discard a whole benchmark sweep.
    pub panics: Vec<WorkerPanic>,
}

impl RunResult {
    /// Overall throughput in operations per second (the paper's y-axis).
    pub fn throughput(&self) -> f64 {
        self.total_ops as f64 / self.duration.as_secs_f64()
    }

    /// `true` when at least one worker panicked (see [`Self::panics`]).
    pub fn is_degraded(&self) -> bool {
        !self.panics.is_empty()
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} ops/s ({} ops in {:?})",
            self.throughput(),
            self.total_ops,
            self.duration
        )?;
        if self.is_degraded() {
            write!(f, " [DEGRADED: {} worker(s) panicked]", self.panics.len())?;
        }
        Ok(())
    }
}

/// Stringifies a payload from [`std::thread::JoinHandle::join`]'s error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Pre-fills `map` with `spec.prefill` distinct random keys from the key
/// range (the paper pre-fills to half the range).
fn prefill<M: ConcurrentMap<u64, u64>>(map: &M, spec: &WorkloadSpec, seed: u64) {
    // `WorkloadSpec` fields are `pub`: a hand-built spec can ask for more
    // distinct prefilled keys than the key range holds, which would spin
    // the rejection loop below forever. Fail with a diagnosis instead.
    assert!(
        spec.prefill <= spec.key_range,
        "workload prefill ({}) exceeds key range ({}): cannot prefill more \
         distinct keys than the range contains",
        spec.prefill,
        spec.key_range
    );
    let mut rng = SplitMix64::new(seed);
    let mut session = map.session();
    let mut inserted = 0;
    while inserted < spec.prefill {
        let key = rng.below(spec.key_range);
        if session.insert(key, key.wrapping_mul(2) + 1) {
            inserted += 1;
        }
    }
}

/// Runs the paper's measurement loop against `map`: pre-fill, then
/// `spec.threads` workers each executing random operations for
/// `spec.duration`, returning aggregate throughput.
pub fn run_throughput<M: ConcurrentMap<u64, u64>>(
    map: &M,
    spec: &WorkloadSpec,
    seed: u64,
) -> RunResult {
    assert!(spec.threads > 0, "at least one worker required");
    prefill(map, spec, seed ^ 0xF177);

    // Built once (the Zipfian tables cost O(key_range)) and cloned per
    // worker; draws stay seeded per thread.
    let sampler = spec.key_dist.sampler(spec.key_range);
    let stop = AtomicBool::new(false);
    // Workers + the timer thread all start together.
    let barrier = Barrier::new(spec.threads + 1);
    let mut per_thread = vec![0u64; spec.threads];

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(spec.threads);
        for t in 0..spec.threads {
            let (stop, barrier) = (&stop, &barrier);
            let spec = spec.clone();
            let sampler = sampler.clone();
            let map = &*map;
            handles.push(scope.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                let mut session = map.session();
                // Figure 9: thread 0 is the sole updater (50% insert, 50%
                // delete); all other threads only search.
                let mix = if spec.single_writer {
                    if t == 0 {
                        crate::workload::OpMix::updates_only()
                    } else {
                        crate::workload::OpMix::read_only()
                    }
                } else {
                    spec.mix
                };
                let mut ops = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    // Batch a few operations per stop-flag check.
                    for _ in 0..32 {
                        let key = sampler.sample(&mut rng);
                        match mix.pick(rng.below(100) as u32) {
                            OpKind::Contains => {
                                std::hint::black_box(session.get(&key));
                            }
                            OpKind::Insert => {
                                std::hint::black_box(session.insert(key, key.wrapping_mul(2) + 1));
                            }
                            OpKind::Delete => {
                                std::hint::black_box(session.remove(&key));
                            }
                        }
                        ops += 1;
                    }
                }
                ops
            }));
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(spec.duration);
        stop.store(true, Ordering::Relaxed);
        let elapsed = start.elapsed();
        let mut panics = Vec::new();
        for (t, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(ops) => per_thread[t] = ops,
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    eprintln!(
                        "[citrus-harness] worker {t} panicked: {message}; \
                         reporting a degraded result from the surviving workers"
                    );
                    panics.push(WorkerPanic { thread: t, message });
                }
            }
        }
        let total_ops = per_thread.iter().sum();
        RunResult {
            total_ops,
            duration: elapsed,
            per_thread,
            panics,
        }
    })
}

/// History-capture run mode: drives `spec.threads` workers for a
/// *bounded* number of operations each (instead of a timed duration),
/// recording every operation — including the prefill, which runs on its
/// own recorder lane — into a [`History`](citrus_api::lincheck::History)
/// ready for [`check_history`](citrus_api::lincheck::check_history).
///
/// The mix, key range, and single-writer mode come from `spec` exactly as
/// in [`run_throughput`], so a linearizability pass can replay the same
/// workload shape a benchmark measures. The map must start empty (the
/// checker replays from the empty state; the recorded prefill provides
/// it).
pub fn run_recorded<M: ConcurrentMap<u64, u64>>(
    map: &M,
    spec: &WorkloadSpec,
    ops_per_thread: usize,
    seed: u64,
) -> citrus_api::lincheck::History {
    use citrus_api::lincheck::{History, HistoryRecorder};

    assert!(spec.threads > 0, "at least one worker required");
    assert!(
        spec.prefill <= spec.key_range,
        "workload prefill ({}) exceeds key range ({})",
        spec.prefill,
        spec.key_range
    );
    let recorder = HistoryRecorder::new();

    // Prefill through a recorder lane of its own (index `spec.threads`):
    // it happens-before every worker op, so the checker sees it as a
    // sequential prefix instead of an unexplained initial state.
    let prefill_log = {
        let mut rng = SplitMix64::new(seed ^ 0xF177);
        let mut session = recorder.wrap(spec.threads, map.session());
        let mut inserted = 0;
        while inserted < spec.prefill {
            let key = rng.below(spec.key_range);
            if session.insert(key, key.wrapping_mul(2) + 1) {
                inserted += 1;
            }
        }
        session.finish()
    };

    let sampler = spec.key_dist.sampler(spec.key_range);
    let barrier = Barrier::new(spec.threads);
    let mut logs: Vec<Vec<citrus_api::lincheck::RecordedOp>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|t| {
                let (barrier, recorder, map) = (&barrier, &recorder, &*map);
                let spec = spec.clone();
                let sampler = sampler.clone();
                scope.spawn(move || {
                    let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                    let mut session = recorder.wrap(t, map.session());
                    let mix = if spec.single_writer {
                        if t == 0 {
                            crate::workload::OpMix::updates_only()
                        } else {
                            crate::workload::OpMix::read_only()
                        }
                    } else {
                        spec.mix
                    };
                    barrier.wait();
                    for i in 0..ops_per_thread {
                        let key = sampler.sample(&mut rng);
                        match mix.pick(rng.below(100) as u32) {
                            OpKind::Contains => {
                                session.get(&key);
                            }
                            OpKind::Insert => {
                                // Unique values pin which insert a
                                // stale read observed.
                                session.insert(key, ((t as u64 + 1) << 32) | i as u64);
                            }
                            OpKind::Delete => {
                                session.remove(&key);
                            }
                        }
                    }
                    session.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recording worker panicked"))
            .collect()
    });
    logs.push(prefill_log);
    History::from_thread_logs(logs)
}

/// Builds the structure for `algo` and runs the workload on it, averaging
/// `reps` repetitions (the paper averages five).
pub fn run_algo(algo: Algo, spec: &WorkloadSpec, reps: usize, seed: u64) -> f64 {
    run_algo_observed(algo, spec, reps, seed, None)
}

/// Like [`run_algo`], but when `observer` is `Some((registry, prefix))`
/// and `algo` is a Citrus variant, the **last** repetition's tree
/// registers its internal metrics (tree, RCU, reclamation) into
/// `registry` with every component name prefixed by `prefix`.
///
/// Only the last repetition is registered so the snapshot reflects one
/// structure's lifetime; baseline algorithms have no instruments and
/// ignore the observer.
pub fn run_algo_observed(
    algo: Algo,
    spec: &WorkloadSpec,
    reps: usize,
    seed: u64,
    observer: Option<(&MetricsRegistry, &str)>,
) -> f64 {
    let reps = reps.max(1);
    let mut sum = 0.0;
    for rep in 0..reps {
        let rep_seed = seed ^ (rep as u64) << 32;
        let observe = if rep + 1 == reps { observer } else { None };
        // Fresh structure per repetition, as in the paper.
        let r = match algo {
            Algo::Citrus => {
                let map: CitrusTree<u64, u64, ScalableRcu> =
                    CitrusTree::with_reclaim(ReclaimMode::Leak);
                if let Some((registry, prefix)) = observe {
                    map.register_metrics_prefixed(registry, prefix);
                }
                run_throughput(&map, spec, rep_seed)
            }
            Algo::CitrusStdRcu => {
                let map: CitrusTree<u64, u64, GlobalLockRcu> =
                    CitrusTree::with_reclaim(ReclaimMode::Leak);
                if let Some((registry, prefix)) = observe {
                    map.register_metrics_prefixed(registry, prefix);
                }
                run_throughput(&map, spec, rep_seed)
            }
            Algo::CitrusEbr => {
                let map: CitrusTree<u64, u64, ScalableRcu> =
                    CitrusTree::with_reclaim(ReclaimMode::Epoch);
                if let Some((registry, prefix)) = observe {
                    map.register_metrics_prefixed(registry, prefix);
                }
                run_throughput(&map, spec, rep_seed)
            }
            Algo::Avl => {
                let map: OptimisticAvlTree<u64, u64> = OptimisticAvlTree::new();
                run_throughput(&map, spec, rep_seed)
            }
            Algo::Skiplist => {
                let map: LazySkipList<u64, u64> = LazySkipList::new();
                run_throughput(&map, spec, rep_seed)
            }
            Algo::LockFree => {
                let map: LockFreeBst<u64, u64> = LockFreeBst::new();
                run_throughput(&map, spec, rep_seed)
            }
            Algo::Rbtree => {
                let map: RelativisticRbTree<u64, u64> = RelativisticRbTree::new();
                run_throughput(&map, spec, rep_seed)
            }
            Algo::Bonsai => {
                let map: BonsaiTree<u64, u64> = BonsaiTree::new();
                run_throughput(&map, spec, rep_seed)
            }
        };
        sum += r.throughput();
    }
    sum / reps as f64
}

/// Result of a [`run_forest_observed`] sweep cell: mean throughput plus
/// the **last** repetition's per-shard counters — the direct evidence that
/// `synchronize_rcu` traffic and grace periods stay shard-local.
#[derive(Debug, Clone)]
pub struct ForestRun {
    /// Mean throughput across repetitions (ops per second).
    pub ops_per_s: f64,
    /// `synchronize_rcu` calls per shard (tree metrics; zeros with the
    /// `stats` feature off).
    pub sync_calls_per_shard: Vec<u64>,
    /// Grace periods completed by each shard's private RCU domain
    /// (always-on).
    pub grace_periods_per_shard: Vec<u64>,
    /// Final key count per shard (routing-skew diagnostics).
    pub occupancy: Vec<usize>,
}

/// Like [`run_algo_observed`] for a [`CitrusForest`] over flavor `F`:
/// builds a fresh forest with `shards` shards per repetition, runs the
/// workload, and reports mean throughput plus the last repetition's
/// per-shard counters. `deferred` pins whether two-child deletes defer
/// their unlink to per-shard `call_rcu` batches or synchronize inline
/// (the A/B axis of the deferred-free sweep); `router` picks the routing
/// policy (range routing splits the spec's key range evenly). The last
/// repetition registers its metrics into `observer` (with per-shard
/// component labels) when given.
#[allow(clippy::too_many_arguments)]
pub fn run_forest_observed<F: RcuFlavor>(
    shards: usize,
    mode: ReclaimMode,
    deferred: bool,
    router: RouterKind,
    spec: &WorkloadSpec,
    reps: usize,
    seed: u64,
    observer: Option<(&MetricsRegistry, &str)>,
) -> ForestRun {
    let reps = reps.max(1);
    let mut sum = 0.0;
    let mut last = None;
    for rep in 0..reps {
        let rep_seed = seed ^ (rep as u64) << 32;
        // Fresh structure per repetition, as in the paper. Sharding seed 0
        // keeps routing identical across flavors and repetitions; range
        // routing is shard-count-normalized the same way the forest
        // constructor normalizes `shards`.
        let forest: CitrusForest<u64, u64, F> = match router {
            RouterKind::Hash => CitrusForest::with_options(shards, 0, mode, deferred),
            RouterKind::Range => CitrusForest::with_range_router_options(
                even_splitters(shards.max(1).next_power_of_two(), spec.key_range),
                mode,
                deferred,
            ),
        };
        if rep + 1 == reps {
            if let Some((registry, prefix)) = observer {
                forest.register_metrics_prefixed(registry, prefix);
            }
        }
        let r = run_throughput(&forest, spec, rep_seed);
        sum += r.throughput();
        if rep + 1 == reps {
            let mut forest = forest;
            let occupancy = forest.record_occupancy();
            last = Some(ForestRun {
                ops_per_s: 0.0,
                sync_calls_per_shard: forest.synchronize_calls_per_shard(),
                grace_periods_per_shard: forest.grace_periods_per_shard(),
                occupancy,
            });
        }
    }
    let mut run = last.expect("reps >= 1, so the last repetition ran");
    run.ops_per_s = sum / reps as f64;
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::OpMix;

    #[test]
    fn throughput_run_produces_ops() {
        let map: CitrusTree<u64, u64> = CitrusTree::with_reclaim(ReclaimMode::Leak);
        let spec = WorkloadSpec::new(
            1_000,
            OpMix::with_contains(50),
            2,
            Duration::from_millis(50),
        );
        let r = run_throughput(&map, &spec, 7);
        assert!(r.total_ops > 0);
        assert_eq!(r.per_thread.len(), 2);
        assert!(r.throughput() > 0.0);
        assert!(format!("{r}").contains("ops/s"));
    }

    #[test]
    fn prefill_reaches_target() {
        let map: CitrusTree<u64, u64> = CitrusTree::new();
        let spec = WorkloadSpec::new(500, OpMix::read_only(), 1, Duration::from_millis(1));
        prefill(&map, &spec, 3);
        let mut map = map;
        assert_eq!(map.len_quiescent(), 250);
    }

    // Regression: an impossible hand-built spec used to spin the prefill
    // rejection loop forever; it must abort with a diagnosis instead.
    #[test]
    #[should_panic(expected = "exceeds key range")]
    fn prefill_rejects_impossible_spec() {
        let map: CitrusTree<u64, u64> = CitrusTree::new();
        let mut spec = WorkloadSpec::new(100, OpMix::read_only(), 1, Duration::from_millis(1));
        spec.prefill = 101; // more distinct keys than the range holds
        prefill(&map, &spec, 3);
    }

    #[test]
    fn single_writer_mode_runs_every_algo() {
        for algo in Algo::FIGURE_SET {
            let spec = WorkloadSpec::single_writer(200, 2, Duration::from_millis(20));
            let tp = run_algo(algo, &spec, 1, 11);
            assert!(tp > 0.0, "{algo} produced no throughput");
        }
    }

    #[test]
    fn worker_panic_degrades_instead_of_propagating() {
        use std::sync::atomic::AtomicI64;

        /// Wraps a tree; one operation panics once the shared fuse burns.
        struct FusedMap {
            inner: CitrusTree<u64, u64>,
            fuse: AtomicI64,
        }

        struct FusedSession<'a> {
            inner: <CitrusTree<u64, u64> as ConcurrentMap<u64, u64>>::Session<'a>,
            fuse: &'a AtomicI64,
        }

        impl FusedSession<'_> {
            fn burn(&self) {
                if self.fuse.fetch_sub(1, Ordering::Relaxed) == 0 {
                    panic!("fuse burned");
                }
            }
        }

        impl ConcurrentMap<u64, u64> for FusedMap {
            type Session<'a> = FusedSession<'a>;
            const NAME: &'static str = "fused-citrus";
            fn session(&self) -> FusedSession<'_> {
                FusedSession {
                    inner: self.inner.session(),
                    fuse: &self.fuse,
                }
            }
        }

        impl MapSession<u64, u64> for FusedSession<'_> {
            fn get(&mut self, key: &u64) -> Option<u64> {
                self.burn();
                self.inner.get(key)
            }
            fn insert(&mut self, key: u64, value: u64) -> bool {
                self.burn();
                self.inner.insert(key, value)
            }
            fn remove(&mut self, key: &u64) -> bool {
                self.burn();
                self.inner.remove(key)
            }
        }

        let map = FusedMap {
            inner: CitrusTree::new(),
            // Burns partway through the measured phase (after the ~250
            // prefill inserts), on exactly one worker.
            fuse: AtomicI64::new(5_000),
        };
        let spec = WorkloadSpec::new(
            1_000,
            OpMix::with_contains(50),
            2,
            Duration::from_millis(100),
        );
        let r = run_throughput(&map, &spec, 21);
        assert!(r.is_degraded(), "the fuse should have burned one worker");
        assert_eq!(r.panics.len(), 1);
        assert!(r.panics[0].message.contains("fuse burned"));
        assert_eq!(r.per_thread[r.panics[0].thread], 0);
        assert!(
            r.total_ops > 0,
            "the surviving worker's ops must still be counted"
        );
        assert!(format!("{r}").contains("DEGRADED"));
    }

    #[test]
    fn recorded_run_captures_a_checkable_history() {
        let map: CitrusTree<u64, u64> = CitrusTree::with_reclaim(ReclaimMode::Leak);
        let spec = WorkloadSpec::new(64, OpMix::with_contains(40), 3, Duration::from_millis(1));
        let history = run_recorded(&map, &spec, 100, 0x5EC0);
        // 3 workers × 100 ops, plus the prefill lane: 32 granted inserts
        // (and any recorded duplicate attempts).
        assert!(history.ops.len() >= 3 * 100 + 32);
        let granted_prefills = history
            .ops
            .iter()
            .filter(|o| o.thread == 3 && o.ret == citrus_api::lincheck::Ret::Granted(true))
            .count();
        assert_eq!(granted_prefills, 32);
        // The prefill lane (index == threads) precedes every worker op.
        let max_prefill_ret = history
            .ops
            .iter()
            .filter(|o| o.thread == 3)
            .map(|o| o.ret_at)
            .max()
            .unwrap();
        let min_worker_inv = history
            .ops
            .iter()
            .filter(|o| o.thread < 3)
            .map(|o| o.inv)
            .min()
            .unwrap();
        assert!(
            max_prefill_ret < min_worker_inv,
            "prefill must precede workers"
        );
        citrus_api::lincheck::check_history(&history).expect("Citrus history must linearize");
    }

    #[test]
    fn forest_run_reports_per_shard_counters() {
        let spec = WorkloadSpec::new(400, OpMix::with_contains(50), 2, Duration::from_millis(30));
        for deferred in [false, true] {
            for router in [RouterKind::Hash, RouterKind::Range] {
                let r = run_forest_observed::<ScalableRcu>(
                    4,
                    ReclaimMode::Epoch,
                    deferred,
                    router,
                    &spec,
                    1,
                    17,
                    None,
                );
                assert!(r.ops_per_s > 0.0);
                assert_eq!(r.sync_calls_per_shard.len(), 4);
                assert_eq!(r.grace_periods_per_shard.len(), 4);
                assert_eq!(r.occupancy.len(), 4);
                assert!(
                    r.occupancy.iter().filter(|&&n| n > 0).count() >= 2,
                    "uniform keys should populate most shards: {:?}",
                    r.occupancy
                );
            }
        }
    }

    #[test]
    fn zipfian_runs_hammer_the_hot_range_shard() {
        use crate::keydist::KeyDist;

        // Under range routing a Zipfian workload's hot keys are adjacent,
        // so shard 0 should absorb the bulk of the routed traffic — the
        // skew cost the bench's skew cells document.
        let spec = WorkloadSpec::new(400, OpMix::with_contains(50), 2, Duration::from_millis(30))
            .with_key_dist(KeyDist::Zipf { theta: 0.99 });
        let r = run_forest_observed::<ScalableRcu>(
            4,
            ReclaimMode::Leak,
            false,
            RouterKind::Range,
            &spec,
            1,
            23,
            None,
        );
        assert!(r.ops_per_s > 0.0);
        // Prefill stays uniform, so occupancy still spreads.
        assert!(
            r.occupancy.iter().filter(|&&n| n > 0).count() >= 2,
            "uniform prefill should populate most shards: {:?}",
            r.occupancy
        );
    }

    #[test]
    fn citrus_both_flavors_run() {
        let spec = WorkloadSpec::new(400, OpMix::with_contains(50), 3, Duration::from_millis(30));
        for algo in [Algo::Citrus, Algo::CitrusStdRcu, Algo::CitrusEbr] {
            assert!(run_algo(algo, &spec, 1, 13) > 0.0);
        }
    }
}
