//! Environment-driven scaling of the benchmark suite.

use crate::keydist::KeyDist;
use citrus::RouterKind;
use std::time::Duration;

/// Global benchmark parameters.
///
/// Defaults are scaled down so the whole suite completes in minutes on a
/// small machine; `CITRUS_PAPER=1` restores the paper's setup (5-second
/// runs, five repetitions, threads 1–64, key ranges 2·10⁵ and 2·10⁶).
///
/// | variable | meaning | default | paper |
/// |---|---|---|---|
/// | `CITRUS_PAPER` | use the paper's full parameters | unset | — |
/// | `CITRUS_DURATION_MS` | per-point run duration | 200 | 5000 |
/// | `CITRUS_REPS` | repetitions averaged per point | 1 | 5 |
/// | `CITRUS_THREADS` | comma-separated thread counts | `1,2,4,8` | `1,4,16,64` |
/// | `CITRUS_RANGE_SMALL` | small key range | 20000 | 200000 |
/// | `CITRUS_RANGE_LARGE` | large key range | 200000 | 2000000 |
/// | `CITRUS_SHARDS` | comma-separated forest shard counts | `1,2,4,8` | — |
/// | `CITRUS_METRICS` | attach internal-metrics sections to reports | unset | — |
/// | `CITRUS_DEFERRED_FREE` | defer two-child-delete unlinks to `call_rcu` batches (`1`/`true`/`yes`) in env-driven constructors; the forest sweep A/Bs both modes regardless | unset | — |
/// | `CITRUS_ROUTER` | forest routing policy (`hash`/`range`) in env-driven constructors; the forest sweep A/Bs both routers regardless | `hash` | — |
/// | `CITRUS_KEY_DIST` | key distribution for timed workload draws (`uniform`/`zipf:<theta>`); prefill stays uniform | `uniform` | — |
///
/// Metric collection also requires the `stats` feature (on by default in
/// `citrus-bench`); without it the metrics sections are empty.
///
/// Malformed values are hard errors: `CITRUS_DURATION_MS=20O` aborts the
/// run instead of silently benchmarking the default and publishing
/// numbers for a configuration nobody asked for.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Per-point run duration.
    pub duration: Duration,
    /// Repetitions averaged per point.
    pub reps: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// The paper's `[0, 2·10⁵]` range (possibly scaled down).
    pub range_small: u64,
    /// The paper's `[0, 2·10⁶]` range (possibly scaled down).
    pub range_large: u64,
    /// Forest shard counts to sweep (`CitrusForest`); each is rounded up
    /// to a power of two by the forest constructor.
    pub shards: Vec<usize>,
    /// Collect internal metrics (RCU, reclamation, tree counters) during
    /// the highest-thread-count point of each figure panel.
    pub collect_metrics: bool,
    /// Forest routing policy for env-driven constructions (the forest
    /// sweep's router axis A/Bs both regardless).
    pub router: RouterKind,
    /// Key distribution for timed workload draws.
    pub key_dist: KeyDist,
}

/// Parses one numeric knob value, panicking with the variable name and
/// offending text on anything malformed. A typo like
/// `CITRUS_DURATION_MS=20O` must abort the run, not silently bench the
/// default and report numbers nobody asked for.
fn parse_u64_knob(name: &str, raw: &str) -> u64 {
    match raw.trim().parse() {
        Ok(v) => v,
        Err(e) => panic!("invalid {name}={raw:?}: {e} (expected an unsigned integer)"),
    }
}

/// Parses a comma-separated list of positive counts (thread or shard
/// sweeps). Empty segments from stray commas are ignored; malformed or
/// zero entries and an empty overall list are hard errors.
fn parse_count_list(name: &str, raw: &str) -> Vec<usize> {
    let counts: Vec<usize> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s.parse::<usize>() {
            Ok(0) => panic!("invalid {name}={raw:?}: counts must be positive"),
            Ok(n) => n,
            Err(e) => {
                panic!("invalid {name}={raw:?}: {e} (expected comma-separated positive integers)")
            }
        })
        .collect();
    if counts.is_empty() {
        panic!("invalid {name}={raw:?}: expected at least one positive integer");
    }
    counts
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => parse_u64_knob(name, &raw),
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("invalid {name}: {e}"),
    }
}

fn env_counts(name: &str, default: &str) -> Vec<usize> {
    let raw = match std::env::var(name) {
        Ok(raw) => raw,
        Err(std::env::VarError::NotPresent) => default.to_string(),
        Err(e) => panic!("invalid {name}: {e}"),
    };
    parse_count_list(name, &raw)
}

impl BenchConfig {
    /// Reads the configuration from the environment (see type docs).
    pub fn from_env() -> Self {
        let paper = std::env::var("CITRUS_PAPER").is_ok_and(|v| v != "0" && !v.is_empty());
        let (d_duration, d_reps, d_threads, d_small, d_large) = if paper {
            (5_000, 5, "1,4,16,64", 200_000, 2_000_000)
        } else {
            (200, 1, "1,2,4,8", 20_000, 200_000)
        };
        Self {
            duration: Duration::from_millis(env_u64("CITRUS_DURATION_MS", d_duration)),
            reps: env_u64("CITRUS_REPS", d_reps) as usize,
            threads: env_counts("CITRUS_THREADS", d_threads),
            range_small: env_u64("CITRUS_RANGE_SMALL", d_small),
            range_large: env_u64("CITRUS_RANGE_LARGE", d_large),
            shards: env_counts("CITRUS_SHARDS", "1,2,4,8"),
            collect_metrics: std::env::var("CITRUS_METRICS")
                .is_ok_and(|v| v != "0" && !v.is_empty()),
            router: RouterKind::from_env(),
            key_dist: KeyDist::from_env(),
        }
    }

    /// A minimal configuration for smoke tests.
    pub fn smoke() -> Self {
        Self {
            duration: Duration::from_millis(30),
            reps: 1,
            threads: vec![1, 2],
            range_small: 512,
            range_large: 2_048,
            shards: vec![1, 2],
            collect_metrics: false,
            router: RouterKind::Hash,
            key_dist: KeyDist::Uniform,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        // NOTE: reads the real environment; only check invariants that
        // hold for any configuration.
        let c = BenchConfig::from_env();
        assert!(!c.threads.is_empty());
        assert!(c.duration > Duration::ZERO);
        assert!(c.range_small <= c.range_large);
    }

    #[test]
    fn smoke_is_small() {
        let c = BenchConfig::smoke();
        assert!(c.duration < Duration::from_millis(100));
        assert_eq!(c.reps, 1);
    }

    #[test]
    fn numeric_knobs_parse_with_whitespace() {
        assert_eq!(parse_u64_knob("CITRUS_REPS", " 5 "), 5);
        assert_eq!(parse_u64_knob("CITRUS_DURATION_MS", "200"), 200);
    }

    #[test]
    #[should_panic(expected = "invalid CITRUS_DURATION_MS=\"20O\"")]
    fn malformed_numeric_knob_is_a_hard_error() {
        parse_u64_knob("CITRUS_DURATION_MS", "20O");
    }

    #[test]
    fn count_lists_tolerate_spacing_and_stray_commas() {
        assert_eq!(
            parse_count_list("CITRUS_THREADS", "1, 2,4 ,8,"),
            [1, 2, 4, 8]
        );
        assert_eq!(parse_count_list("CITRUS_SHARDS", "16"), [16]);
    }

    #[test]
    #[should_panic(expected = "invalid CITRUS_THREADS=\"1,2,four\"")]
    fn malformed_count_entry_is_a_hard_error() {
        parse_count_list("CITRUS_THREADS", "1,2,four");
    }

    #[test]
    #[should_panic(expected = "counts must be positive")]
    fn zero_count_is_a_hard_error() {
        parse_count_list("CITRUS_SHARDS", "4,0");
    }

    #[test]
    #[should_panic(expected = "expected at least one positive integer")]
    fn empty_count_list_is_a_hard_error() {
        parse_count_list("CITRUS_THREADS", " , ,");
    }
}
