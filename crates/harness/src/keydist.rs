//! Workload key distributions: uniform (the paper's methodology) and
//! Zipfian hot-key draws — the first slice of the scenario-diversity
//! roadmap item. Skewed draws exist to stress routing policies: hash
//! routing scatters hot keys across shards, range routing concentrates
//! them in one (the tradeoff DESIGN.md §6j documents).

use citrus_api::testkit::SplitMix64;
use core::fmt;

/// Which distribution timed workload threads draw their keys from.
///
/// Selected via `CITRUS_KEY_DIST`: `uniform` (the default) or
/// `zipf:<theta>` with `0 < theta < 1` (YCSB's default skew is
/// `zipf:0.99`). Prefill always draws uniformly so every run starts from
/// the same occupancy; only the timed phase is skewed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform draws over the key range.
    Uniform,
    /// Zipfian draws: key `0` is the hottest and popularity decays
    /// polynomially, so a handful of small *adjacent* keys absorb most of
    /// the traffic.
    Zipf {
        /// Skew parameter in `(0, 1)`; larger is more skewed.
        theta: f64,
    },
}

impl KeyDist {
    /// Parses a distribution label; `name` is the knob being parsed, for
    /// the error message. Malformed values are hard errors, per the
    /// repo's env-knob convention.
    ///
    /// # Panics
    ///
    /// Panics unless `raw` (trimmed) is `""`, `"uniform"`, or
    /// `"zipf:<theta>"` with `theta` strictly between 0 and 1.
    #[must_use]
    pub fn parse(name: &str, raw: &str) -> Self {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed == "uniform" {
            return Self::Uniform;
        }
        let Some(theta_raw) = trimmed.strip_prefix("zipf:") else {
            panic!("invalid {name}={trimmed:?}: expected \"uniform\" or \"zipf:<theta>\"");
        };
        let theta: f64 = match theta_raw.trim().parse() {
            Ok(t) => t,
            Err(e) => panic!("invalid {name}={trimmed:?}: {e} (expected zipf:<theta>)"),
        };
        assert!(
            theta > 0.0 && theta < 1.0,
            "invalid {name}={trimmed:?}: theta must be in (0, 1)"
        );
        Self::Zipf { theta }
    }

    /// Reads the `CITRUS_KEY_DIST` environment knob (`uniform` when
    /// unset).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value (see [`parse`](Self::parse)).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("CITRUS_KEY_DIST") {
            Ok(raw) => Self::parse("CITRUS_KEY_DIST", &raw),
            Err(std::env::VarError::NotPresent) => Self::Uniform,
            Err(err) => panic!("invalid CITRUS_KEY_DIST: {err}"),
        }
    }

    /// Stable label used in bench JSON identity rows (`uniform`,
    /// `zipf:0.99`, …).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Self::Uniform => "uniform".to_string(),
            Self::Zipf { theta } => format!("zipf:{theta}"),
        }
    }

    /// Builds a sampler over `[0, key_range)`. The Zipfian construction
    /// is `O(key_range)` (one harmonic-sum pass); build once per run and
    /// clone per worker, not once per draw.
    ///
    /// # Panics
    ///
    /// Panics if `key_range == 0`.
    #[must_use]
    pub fn sampler(self, key_range: u64) -> KeySampler {
        KeySampler::new(self, key_range)
    }
}

impl fmt::Display for KeyDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Precomputed Zipfian constants (Gray et al.'s closed-form sampler, as
/// popularized by YCSB's `ZipfianGenerator`).
#[derive(Debug, Clone, Copy)]
struct ZipfTables {
    theta: f64,
    /// `1 / (1 - theta)`.
    alpha: f64,
    /// Generalized harmonic number `Σ_{i=1..n} i^-theta`.
    zetan: f64,
    /// The sampler's interpolation constant.
    eta: f64,
}

/// A seeded key sampler for one [`KeyDist`] over a fixed key range:
/// `O(1)` per draw, uniform or Zipfian.
#[derive(Debug, Clone)]
pub struct KeySampler {
    range: u64,
    zipf: Option<ZipfTables>,
}

impl KeySampler {
    fn new(dist: KeyDist, key_range: u64) -> Self {
        assert!(key_range > 0, "key sampler needs a positive key range");
        let zipf = match dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf { theta } => {
                let n = key_range as f64;
                let zetan: f64 = (1..=key_range).map(|i| (i as f64).powf(-theta)).sum();
                let zeta2 = 1.0 + 0.5f64.powf(theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                Some(ZipfTables {
                    theta,
                    alpha,
                    zetan,
                    eta,
                })
            }
        };
        Self {
            range: key_range,
            zipf,
        }
    }

    /// Draws one key in `[0, range)` from `rng`. Deterministic in the
    /// rng's seed, like every other harness draw.
    #[must_use]
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let Some(z) = &self.zipf else {
            return rng.below(self.range);
        };
        let u = rng.unit_f64();
        let uz = u * z.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(z.theta) {
            return 1;
        }
        let k = (self.range as f64 * (z.eta * u - z.eta + 1.0).powf(z.alpha)) as u64;
        // Float round-off can land exactly on `range`; clamp into bounds.
        k.min(self.range - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_uniform_and_zipf() {
        assert_eq!(KeyDist::parse("CITRUS_KEY_DIST", ""), KeyDist::Uniform);
        assert_eq!(
            KeyDist::parse("CITRUS_KEY_DIST", "uniform"),
            KeyDist::Uniform
        );
        assert_eq!(
            KeyDist::parse("CITRUS_KEY_DIST", " zipf:0.99 "),
            KeyDist::Zipf { theta: 0.99 }
        );
        assert_eq!(KeyDist::Zipf { theta: 0.99 }.label(), "zipf:0.99");
    }

    #[test]
    #[should_panic(expected = "invalid CITRUS_KEY_DIST=\"pareto\"")]
    fn unknown_distribution_is_a_hard_error() {
        let _ = KeyDist::parse("CITRUS_KEY_DIST", "pareto");
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1)")]
    fn out_of_range_theta_is_a_hard_error() {
        let _ = KeyDist::parse("CITRUS_KEY_DIST", "zipf:1.5");
    }

    #[test]
    fn draws_are_seeded_and_in_range() {
        let sampler = KeyDist::Zipf { theta: 0.99 }.sampler(1_000);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10_000 {
            let k = sampler.sample(&mut a);
            assert!(k < 1_000);
            assert_eq!(k, sampler.sample(&mut b), "same seed, same draws");
        }
    }

    #[test]
    fn zipf_concentrates_on_small_adjacent_keys() {
        let sampler = KeyDist::Zipf { theta: 0.99 }.sampler(1_000);
        let mut rng = SplitMix64::new(7);
        let draws = 20_000;
        let mut counts = vec![0u64; 1_000];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        // Under uniform each key would get ~20 draws; the hottest Zipfian
        // key gets hundreds, and the ten smallest keys together take a
        // large constant fraction of all traffic.
        assert!(counts[0] > 1_000, "hot key got {}", counts[0]);
        let top10: u64 = counts[..10].iter().sum();
        assert!(
            top10 > draws / 3,
            "ten hottest keys took {top10}/{draws} draws"
        );
    }

    #[test]
    fn uniform_spreads_across_the_range() {
        let sampler = KeyDist::Uniform.sampler(1_000);
        let mut rng = SplitMix64::new(7);
        let mut seen_high = false;
        for _ in 0..1_000 {
            let k = sampler.sample(&mut rng);
            assert!(k < 1_000);
            seen_high |= k >= 500;
        }
        assert!(seen_high, "uniform draws must reach the upper half");
    }

    #[test]
    fn tiny_ranges_still_sample() {
        for range in 1..=3u64 {
            let sampler = KeyDist::Zipf { theta: 0.5 }.sampler(range);
            let mut rng = SplitMix64::new(1);
            for _ in 0..100 {
                assert!(sampler.sample(&mut rng) < range);
            }
        }
    }
}
