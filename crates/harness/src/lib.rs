//! Benchmark harness reproducing the Citrus paper's evaluation
//! methodology (§5 "Setup"):
//!
//! * Key ranges `[0, 2·10⁵]` and `[0, 2·10⁶]`, tree **pre-filled to half
//!   the key range**.
//! * Each thread continuously executes randomly chosen operations on
//!   randomly chosen keys for a fixed duration; the metric is overall
//!   throughput (operations / second).
//! * Each configuration is run several times; the arithmetic average is
//!   reported.
//! * No memory reclamation during timed runs (structures use graveyard /
//!   leak-mode reclamation).
//!
//! The [`experiments`] module defines the paper's three experimental
//! figures; the `citrus-bench` crate's binaries print them.
//!
//! Scaling knobs (environment variables) let the full suite run on small
//! machines; `CITRUS_PAPER=1` restores the paper's parameters
//! (5 s × 5 repetitions, threads 1–64, full key ranges).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod experiments;
pub mod keydist;
pub mod report;
pub mod runner;
pub mod workload;

pub use config::BenchConfig;
pub use experiments::{ForestCell, ForestScanCell, ForestSkewCell};
pub use keydist::{KeyDist, KeySampler};
pub use report::{Report, Series};
pub use runner::{
    run_algo, run_algo_observed, run_forest_observed, run_recorded, run_throughput, ForestRun,
    RunResult,
};
pub use workload::{Algo, OpMix, ServeMix, ServeOp, WorkloadSpec};
