//! Workload specification: operation mixes, key ranges, thread counts.

use crate::keydist::KeyDist;
use core::fmt;
use std::time::Duration;

/// An operation mix, as percentages of `contains` / `insert` / `delete`.
///
/// The paper's mixes split the update share evenly between inserts and
/// deletes (e.g. "50% contains" means 50/25/25).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percent of operations that are `contains`.
    pub contains: u32,
    /// Percent that are `insert`.
    pub insert: u32,
    /// Percent that are `delete`.
    pub delete: u32,
}

impl OpMix {
    /// A mix with the given `contains` percentage and the update share
    /// split evenly (the paper's convention).
    ///
    /// # Panics
    ///
    /// Panics if `contains_pct > 100` or the update share is odd.
    pub fn with_contains(contains_pct: u32) -> Self {
        assert!(contains_pct <= 100);
        let updates = 100 - contains_pct;
        assert!(updates.is_multiple_of(2), "update share must split evenly");
        Self {
            contains: contains_pct,
            insert: updates / 2,
            delete: updates / 2,
        }
    }

    /// The single-writer updater mix of Figure 9: 50% insert, 50% delete.
    pub fn updates_only() -> Self {
        Self {
            contains: 0,
            insert: 50,
            delete: 50,
        }
    }

    /// 100% `contains`.
    pub fn read_only() -> Self {
        Self {
            contains: 100,
            insert: 0,
            delete: 0,
        }
    }

    /// Picks an operation from a uniform draw in `[0, 100)`.
    pub(crate) fn pick(&self, draw: u32) -> OpKind {
        if draw < self.contains {
            OpKind::Contains
        } else if draw < self.contains + self.insert {
            OpKind::Insert
        } else {
            OpKind::Delete
        }
    }
}

impl fmt::Display for OpMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c/{}i/{}d", self.contains, self.insert, self.delete)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Contains,
    Insert,
    Delete,
}

/// A four-way serving mix: point gets, inserts, removes, and range scans,
/// as percentages summing to 100. This is the request-layer analogue of
/// [`OpMix`] — the `serve_storm` load generator draws from it to shape
/// traffic against a `citrus-serve` front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeMix {
    /// Percent of requests that are point `get`s.
    pub get: u32,
    /// Percent that are `insert`s.
    pub insert: u32,
    /// Percent that are `remove`s.
    pub remove: u32,
    /// Percent that are range scans.
    pub scan: u32,
}

/// One drawn serving operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOp {
    /// A point `get`.
    Get,
    /// An `insert`.
    Insert,
    /// A `remove`.
    Remove,
    /// A range scan.
    Scan,
}

impl ServeMix {
    /// A mix from explicit percentages.
    ///
    /// # Panics
    ///
    /// Panics unless the four shares sum to exactly 100.
    #[must_use]
    pub fn new(get: u32, insert: u32, remove: u32, scan: u32) -> Self {
        assert_eq!(
            get + insert + remove + scan,
            100,
            "serve mix must sum to 100"
        );
        Self {
            get,
            insert,
            remove,
            scan,
        }
    }

    /// A read-heavy routing-table shape: 88% gets, 5% inserts, 5%
    /// removes, 2% scans.
    #[must_use]
    pub fn routing_table() -> Self {
        Self::new(88, 5, 5, 2)
    }

    /// A write-heavier session-store shape: 60% gets, 18% inserts, 17%
    /// removes, 5% scans.
    #[must_use]
    pub fn session_store() -> Self {
        Self::new(60, 18, 17, 5)
    }

    /// Picks an operation from a uniform draw in `[0, 100)`.
    #[must_use]
    pub fn pick(&self, draw: u32) -> ServeOp {
        if draw < self.get {
            ServeOp::Get
        } else if draw < self.get + self.insert {
            ServeOp::Insert
        } else if draw < self.get + self.insert + self.remove {
            ServeOp::Remove
        } else {
            ServeOp::Scan
        }
    }
}

impl fmt::Display for ServeMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}g/{}i/{}r/{}s",
            self.get, self.insert, self.remove, self.scan
        )
    }
}

/// A full workload configuration for one throughput run.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Keys are drawn from `[0, key_range)` per [`key_dist`](Self::key_dist).
    pub key_range: u64,
    /// Operation mix for (non-single-writer) worker threads.
    pub mix: OpMix,
    /// Number of worker threads.
    pub threads: usize,
    /// Timed duration of the run.
    pub duration: Duration,
    /// Figure 9 mode: thread 0 runs 50% insert / 50% delete and every
    /// other thread runs 100% `contains`.
    pub single_writer: bool,
    /// Number of distinct keys pre-inserted before timing (the paper uses
    /// half the key range). Prefill keys are always drawn uniformly, so
    /// skewed runs start from the same occupancy as uniform ones.
    pub prefill: u64,
    /// Distribution the timed phase draws its keys from (the paper's
    /// methodology is [`KeyDist::Uniform`]).
    pub key_dist: KeyDist,
}

impl WorkloadSpec {
    /// The paper's configuration: prefill to half the key range, uniform
    /// key draws.
    pub fn new(key_range: u64, mix: OpMix, threads: usize, duration: Duration) -> Self {
        Self {
            key_range,
            mix,
            threads,
            duration,
            single_writer: false,
            prefill: key_range / 2,
            key_dist: KeyDist::Uniform,
        }
    }

    /// Figure 9's single-writer variant.
    pub fn single_writer(key_range: u64, threads: usize, duration: Duration) -> Self {
        Self {
            key_range,
            mix: OpMix::read_only(),
            threads,
            duration,
            single_writer: true,
            prefill: key_range / 2,
            key_dist: KeyDist::Uniform,
        }
    }

    /// The same workload with its timed draws taken from `dist` (prefill
    /// stays uniform).
    #[must_use]
    pub fn with_key_dist(mut self, dist: KeyDist) -> Self {
        self.key_dist = dist;
        self
    }
}

/// The algorithms of the evaluation (§5), i.e. every line in Figures 8–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Citrus over the paper's scalable RCU (leak-mode reclamation, as in
    /// the paper's runs).
    Citrus,
    /// Citrus over the classic global-lock RCU — the "standard RCU" line
    /// of Figure 8.
    CitrusStdRcu,
    /// Citrus with epoch-based reclamation enabled (beyond-paper
    /// configuration, used by the ablation bench).
    CitrusEbr,
    /// Bronson-style optimistic AVL.
    Avl,
    /// Lazy skiplist.
    Skiplist,
    /// Natarajan–Mittal-style lock-free external BST.
    LockFree,
    /// Relativistic red-black tree (global update lock).
    Rbtree,
    /// Bonsai (path-copying, global update lock).
    Bonsai,
}

impl Algo {
    /// All six lines of Figures 9 and 10.
    pub const FIGURE_SET: [Algo; 6] = [
        Algo::Citrus,
        Algo::Avl,
        Algo::Skiplist,
        Algo::LockFree,
        Algo::Rbtree,
        Algo::Bonsai,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Citrus => "Citrus",
            Algo::CitrusStdRcu => "Citrus (standard RCU)",
            Algo::CitrusEbr => "Citrus (EBR reclamation)",
            Algo::Avl => "AVL",
            Algo::Skiplist => "Skiplist",
            Algo::LockFree => "Lock-Free",
            Algo::Rbtree => "Red-Black",
            Algo::Bonsai => "Bonsai",
        }
    }
}

impl fmt::Display for Algo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_add_to_100() {
        for pct in [100, 98, 50, 0] {
            let m = OpMix::with_contains(pct);
            assert_eq!(m.contains + m.insert + m.delete, 100);
        }
    }

    #[test]
    fn pick_respects_boundaries() {
        let m = OpMix::with_contains(50);
        assert_eq!(m.pick(0), OpKind::Contains);
        assert_eq!(m.pick(49), OpKind::Contains);
        assert_eq!(m.pick(50), OpKind::Insert);
        assert_eq!(m.pick(74), OpKind::Insert);
        assert_eq!(m.pick(75), OpKind::Delete);
        assert_eq!(m.pick(99), OpKind::Delete);
    }

    #[test]
    #[should_panic]
    fn odd_update_share_panics() {
        let _ = OpMix::with_contains(99);
    }

    #[test]
    fn spec_prefills_half_range() {
        let s = WorkloadSpec::new(1000, OpMix::read_only(), 4, Duration::from_millis(10));
        assert_eq!(s.prefill, 500);
        assert!(!s.single_writer);
        assert!(WorkloadSpec::single_writer(10, 2, Duration::from_millis(1)).single_writer);
    }

    #[test]
    fn serve_mix_pick_respects_boundaries() {
        let m = ServeMix::routing_table();
        assert_eq!(m.pick(0), ServeOp::Get);
        assert_eq!(m.pick(87), ServeOp::Get);
        assert_eq!(m.pick(88), ServeOp::Insert);
        assert_eq!(m.pick(92), ServeOp::Insert);
        assert_eq!(m.pick(93), ServeOp::Remove);
        assert_eq!(m.pick(97), ServeOp::Remove);
        assert_eq!(m.pick(98), ServeOp::Scan);
        assert_eq!(m.pick(99), ServeOp::Scan);
        assert_eq!(m.to_string(), "88g/5i/5r/2s");
    }

    #[test]
    #[should_panic(expected = "serve mix must sum to 100")]
    fn serve_mix_must_sum_to_100() {
        let _ = ServeMix::new(50, 20, 20, 20);
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let set: HashSet<_> = Algo::FIGURE_SET.iter().map(|a| a.label()).collect();
        assert_eq!(set.len(), Algo::FIGURE_SET.len());
    }
}
