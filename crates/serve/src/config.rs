//! Server tuning knobs: queue depth, batch width, retry-after, and the
//! session-recycling churn knob.

use std::time::Duration;

/// Tuning for a [`Server`](crate::Server).
///
/// The defaults are sized for the test and smoke workloads; the
/// `serve_storm` load generator and the CI lane override them through the
/// `CITRUS_SERVE_*` environment knobs (see [`ServeConfig::from_env`]).
/// Per the repo convention, malformed knob values are hard errors — a
/// typo'd variable must not silently fall back to a default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission high-water mark: a shard queue at or above this depth
    /// rejects new requests with [`SubmitError::Rejected`]
    /// (`retry-after`) instead of growing without bound.
    ///
    /// [`SubmitError::Rejected`]: crate::SubmitError::Rejected
    pub high_water: usize,
    /// Maximum requests a shard worker drains per batch. Larger batches
    /// amortize queue locking; smaller ones bound per-request latency.
    pub batch_max: usize,
    /// The back-off hint returned with a rejection. Honoring it is the
    /// client's job; the blocking session API sleeps this long before
    /// resubmitting.
    pub retry_after: Duration,
    /// Worker-session churn: after every `recycle_ops` executed requests
    /// a shard worker drops its forest session (deregistering its RCU
    /// reader slots and reclamation bags) and opens a fresh one —
    /// mid-batch when this is smaller than the batch width. `0` (the
    /// default) never recycles. The churn stress suite uses small values
    /// to hammer the registry paths; production-shaped configs leave it
    /// off.
    pub recycle_ops: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            high_water: 1024,
            batch_max: 64,
            retry_after: Duration::from_micros(100),
            recycle_ops: 0,
        }
    }
}

/// Parses one `CITRUS_SERVE_*` integer knob, hard-erroring on malformed
/// values (repo convention: a typo must not silently shrink a limit).
fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid {name}={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("invalid {name}: {e}"),
    }
}

impl ServeConfig {
    /// Reads the environment knobs over the defaults:
    /// `CITRUS_SERVE_HIGH_WATER`, `CITRUS_SERVE_BATCH_MAX`, and
    /// `CITRUS_SERVE_RETRY_AFTER_US`.
    ///
    /// # Panics
    ///
    /// Panics on a malformed value, on a zero high-water mark, or on a
    /// zero batch width.
    #[must_use]
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let cfg = Self {
            high_water: usize::try_from(env_u64(
                "CITRUS_SERVE_HIGH_WATER",
                defaults.high_water as u64,
            ))
            .expect("CITRUS_SERVE_HIGH_WATER out of range"),
            batch_max: usize::try_from(env_u64(
                "CITRUS_SERVE_BATCH_MAX",
                defaults.batch_max as u64,
            ))
            .expect("CITRUS_SERVE_BATCH_MAX out of range"),
            retry_after: Duration::from_micros(env_u64(
                "CITRUS_SERVE_RETRY_AFTER_US",
                defaults.retry_after.as_micros() as u64,
            )),
            recycle_ops: 0,
        };
        assert!(cfg.high_water > 0, "CITRUS_SERVE_HIGH_WATER must be > 0");
        assert!(cfg.batch_max > 0, "CITRUS_SERVE_BATCH_MAX must be > 0");
        cfg
    }

    /// The same configuration with a different high-water mark.
    #[must_use]
    pub fn with_high_water(mut self, high_water: usize) -> Self {
        assert!(high_water > 0, "high_water must be > 0");
        self.high_water = high_water;
        self
    }

    /// The same configuration with a different batch width.
    #[must_use]
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        assert!(batch_max > 0, "batch_max must be > 0");
        self.batch_max = batch_max;
        self
    }

    /// The same configuration with a different retry-after hint.
    #[must_use]
    pub fn with_retry_after(mut self, retry_after: Duration) -> Self {
        self.retry_after = retry_after;
        self
    }

    /// The same configuration recycling worker sessions every
    /// `recycle_ops` executed requests (`0` disables).
    #[must_use]
    pub fn with_recycle_ops(mut self, recycle_ops: u64) -> Self {
        self.recycle_ops = recycle_ops;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.high_water > 0 && cfg.batch_max > 0);
        assert_eq!(cfg.recycle_ops, 0);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = ServeConfig::default()
            .with_high_water(7)
            .with_batch_max(3)
            .with_retry_after(Duration::from_millis(2))
            .with_recycle_ops(5);
        assert_eq!(cfg.high_water, 7);
        assert_eq!(cfg.batch_max, 3);
        assert_eq!(cfg.retry_after, Duration::from_millis(2));
        assert_eq!(cfg.recycle_ops, 5);
    }

    #[test]
    #[should_panic(expected = "high_water must be > 0")]
    fn zero_high_water_is_rejected() {
        let _ = ServeConfig::default().with_high_water(0);
    }
}
