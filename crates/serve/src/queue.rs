//! A bounded multi-producer batch queue: the per-shard mailbox between
//! client sessions and the shard's drain worker.
//!
//! Producers [`offer`](BatchQueue::offer) one item at a time and are
//! rejected (not blocked) once the queue reaches its high-water mark —
//! backpressure is the *caller's* problem, surfaced as a retry-after
//! hint by the server layer. The single consumer
//! [`take_batch`](BatchQueue::take_batch)es up to a configured number of
//! items at once, so one lock acquisition amortizes over a whole batch.
//!
//! Closing the queue ([`close`](BatchQueue::close)) stops admission
//! immediately but never drops queued items: the consumer keeps draining
//! until the queue is empty and only then observes an empty closing
//! batch — the mechanism behind the server's lose-nothing shutdown
//! drain.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why an [`offer`](BatchQueue::offer) was not accepted. The rejected
/// item is handed back so callers need no `Clone` bound to retry.
#[derive(Debug)]
pub enum OfferError<T> {
    /// The queue is at or above the high-water mark. Retry later.
    Rejected {
        /// The item, returned unconsumed.
        item: T,
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// The queue is closed; no further items will ever be accepted.
    Closed(T),
}

/// One drained batch.
#[derive(Debug)]
pub struct Batch<T> {
    /// The items, in arrival order.
    pub items: Vec<T>,
    /// `true` once the queue is closed: after the items above are
    /// processed (and any the next calls return), the consumer may stop.
    /// An *empty* closing batch means the drain is complete.
    pub closing: bool,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    paused: bool,
}

/// The bounded batch queue. One consumer, any number of producers.
pub struct BatchQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> Default for BatchQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BatchQueue<T> {
    /// An empty, open, unpaused queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                paused: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item` unless the queue is closed or at the high-water
    /// mark. On success returns the depth *after* the push.
    ///
    /// # Errors
    ///
    /// [`OfferError::Rejected`] at or above `high_water`,
    /// [`OfferError::Closed`] after [`close`](Self::close); both return
    /// the item unconsumed.
    pub fn offer(&self, item: T, high_water: usize) -> Result<usize, OfferError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(OfferError::Closed(item));
        }
        if st.items.len() >= high_water {
            let depth = st.items.len();
            return Err(OfferError::Rejected { item, depth });
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocks until items are available (or the queue closes), then
    /// drains up to `max` of them. While paused, nothing is handed out
    /// until [`resume`](Self::resume) — except that closing overrides
    /// pausing, so a shutdown drain can never hang on a paused server.
    pub fn take_batch(&self, max: usize) -> Batch<T> {
        let mut st = self.lock();
        loop {
            if st.closed || (!st.paused && !st.items.is_empty()) {
                let n = st.items.len().min(max.max(1));
                let items: Vec<T> = st.items.drain(..n).collect();
                return Batch {
                    items,
                    closing: st.closed,
                };
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes admission. Queued items remain drainable; the consumer
    /// sees `closing` batches until an empty one signals completion.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Stops the consumer from draining (admission continues): the
    /// deterministic way to fill a queue up to its high-water mark.
    pub fn pause(&self) {
        self.lock().paused = true;
    }

    /// Undoes [`pause`](Self::pause).
    pub fn resume(&self) {
        self.lock().paused = false;
        self.cv.notify_all();
    }

    /// Current depth (racy, for reporting).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy, for reporting).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for BatchQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("BatchQueue")
            .field("depth", &st.items.len())
            .field("closed", &st.closed)
            .field("paused", &st.paused)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offers_accumulate_and_drain_in_order() {
        let q = BatchQueue::new();
        for i in 0..5 {
            assert_eq!(q.offer(i, 16).unwrap(), i as usize + 1);
        }
        let b = q.take_batch(3);
        assert_eq!(b.items, vec![0, 1, 2]);
        assert!(!b.closing);
        let b = q.take_batch(16);
        assert_eq!(b.items, vec![3, 4]);
    }

    #[test]
    fn high_water_rejection_is_exact_and_returns_the_item() {
        let q = BatchQueue::new();
        q.pause();
        for i in 0..4 {
            q.offer(i, 4).unwrap();
        }
        match q.offer(99, 4) {
            Err(OfferError::Rejected { item, depth }) => {
                assert_eq!(item, 99);
                assert_eq!(depth, 4);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Draining one slot re-opens admission at the same mark.
        q.resume();
        assert_eq!(q.take_batch(1).items, vec![0]);
        assert!(q.offer(99, 4).is_ok());
    }

    #[test]
    fn close_stops_admission_but_not_draining() {
        let q = BatchQueue::new();
        q.offer(1, 8).unwrap();
        q.offer(2, 8).unwrap();
        q.close();
        assert!(matches!(q.offer(3, 8), Err(OfferError::Closed(3))));
        let b = q.take_batch(1);
        assert_eq!(b.items, vec![1]);
        assert!(b.closing, "batches after close must carry the flag");
        let b = q.take_batch(8);
        assert_eq!(b.items, vec![2]);
        let b = q.take_batch(8);
        assert!(
            b.items.is_empty() && b.closing,
            "empty closing batch ends the drain"
        );
    }

    #[test]
    fn pause_holds_items_until_resume() {
        let q = std::sync::Arc::new(BatchQueue::new());
        q.pause();
        q.offer(7, 8).unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.take_batch(8).items);
        // The consumer must be parked; give it a moment then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!h.is_finished(), "take_batch must block while paused");
        q.resume();
        assert_eq!(h.join().unwrap(), vec![7]);
    }

    #[test]
    fn close_overrides_pause() {
        let q = BatchQueue::<u32>::new();
        q.pause();
        q.close();
        let b = q.take_batch(8);
        assert!(b.items.is_empty() && b.closing);
    }
}
