//! Server-side instruments: per-op-class latency histograms, batch-size
//! distribution, and the queue-depth high-water mark.
//!
//! Everything here is `citrus-obs`-backed and therefore zero-sized (and
//! free) unless the `stats` feature is on. Counters the *tests* assert on
//! (accepted/rejected/acked writes) live as plain atomics on the server
//! itself, so correctness checks never depend on a feature flag.

use citrus_obs::{HighWaterMark, HistogramSnapshot, Log2Histogram, MetricsRegistry};

use crate::server::OpClass;

/// The server's feature-gated instruments. Cloning shares state.
#[derive(Clone, Debug, Default)]
pub struct ServeMetrics {
    /// End-to-end latency (submit to response received) for point reads.
    pub read_ns: Log2Histogram,
    /// End-to-end latency for point writes.
    pub write_ns: Log2Histogram,
    /// End-to-end latency for ordered ops (scans, successor/predecessor).
    pub scan_ns: Log2Histogram,
    /// Number of requests per drained batch.
    pub batch_size: Log2Histogram,
    /// Deepest shard queue ever observed at admission time.
    pub depth_hwm: HighWaterMark,
}

impl ServeMetrics {
    /// Fresh, empty instruments.
    #[must_use]
    pub fn new() -> Self {
        Self {
            read_ns: Log2Histogram::new(),
            write_ns: Log2Histogram::new(),
            scan_ns: Log2Histogram::new(),
            batch_size: Log2Histogram::new(),
            depth_hwm: HighWaterMark::new(),
        }
    }

    /// The latency histogram for one op class.
    #[must_use]
    pub fn latency(&self, class: OpClass) -> &Log2Histogram {
        match class {
            OpClass::Read => &self.read_ns,
            OpClass::Write => &self.write_ns,
            OpClass::Scan => &self.scan_ns,
        }
    }

    /// A point-in-time copy of one class's latency distribution.
    #[must_use]
    pub fn latency_snapshot(&self, class: OpClass) -> HistogramSnapshot {
        self.latency(class).snapshot()
    }

    /// Registers every instrument under `component` (e.g. `"serve"`).
    pub fn register(&self, registry: &MetricsRegistry, component: &str) {
        registry.register_histogram(component, "read_ns", &self.read_ns);
        registry.register_histogram(component, "write_ns", &self.write_ns);
        registry.register_histogram(component, "scan_ns", &self.scan_ns);
        registry.register_histogram(component, "batch_size", &self.batch_size);
        registry.register_hwm(component, "queue_depth_hwm", &self.depth_hwm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_routes_by_class() {
        let m = ServeMetrics::new();
        m.latency(OpClass::Read).record(10);
        m.latency(OpClass::Write).record(20);
        m.latency(OpClass::Write).record(30);
        m.latency(OpClass::Scan).record(40);
        #[cfg(feature = "stats")]
        {
            assert_eq!(m.latency_snapshot(OpClass::Read).count, 1);
            assert_eq!(m.latency_snapshot(OpClass::Write).count, 2);
            assert_eq!(m.latency_snapshot(OpClass::Scan).count, 1);
        }
        #[cfg(not(feature = "stats"))]
        assert_eq!(m.latency_snapshot(OpClass::Write).count, 0);
    }

    #[test]
    fn register_is_callable_in_both_modes() {
        let m = ServeMetrics::new();
        let reg = MetricsRegistry::new();
        m.register(&reg, "serve");
        let snap = reg.snapshot();
        #[cfg(feature = "stats")]
        assert!(snap.histogram("serve", "batch_size").is_some());
        #[cfg(not(feature = "stats"))]
        assert!(snap.is_empty());
    }
}
