//! `citrus-serve`: a batched, backpressured ordered-KV request layer over
//! [`CitrusForest`](citrus::CitrusForest).
//!
//! The forest gives linearizable point ops and ordered scans per shard;
//! this crate puts a serving front end on it:
//!
//! - **Thread-per-core drain workers** — one worker thread per shard owns
//!   a long-lived forest session and a bounded mailbox
//!   ([`BatchQueue`]); requests route to shards with the forest's own
//!   router, so data and execution stay colocated.
//! - **Per-shard batching** — workers drain up to `batch_max` requests
//!   per queue-lock acquisition and execute them in arrival order.
//! - **Admission control** — a shard queue at its `high_water` mark
//!   rejects with [`SubmitError::Rejected`] carrying a `retry_after`
//!   hint instead of queueing unboundedly; the blocking
//!   [`ServeSession`] honors the hint automatically.
//! - **Graceful shutdown** — closing the server drains every queued
//!   request and delivers its response before the forest is dropped:
//!   an acknowledged write is never lost.
//!
//! Correctness is proven *at this boundary*: [`Server`] implements
//! [`ConcurrentMap`](citrus_api::ConcurrentMap), so the WGL
//! linearizability checker and the oracle-conformance harness drive the
//! full submit → queue → batch → respond pipeline, not just the
//! underlying map. A planted `serve/drain/ack-before-apply` mutant
//! (acknowledge a write with a predicted result before executing it)
//! exists purely so the test suite can demonstrate the checker rejects a
//! server that reorders responses.
//!
//! # Example
//!
//! ```
//! use citrus::{CitrusForest, ReclaimMode};
//! use citrus_api::{ConcurrentMap, MapSession, OrderedMapSession};
//! use citrus_serve::Server;
//!
//! let server = Server::new(CitrusForest::with_config(2, 42, ReclaimMode::Epoch));
//! let mut client = server.session();
//! client.insert(7, 700);
//! client.insert(9, 900);
//! assert_eq!(client.get(&7), Some(700));
//! assert_eq!(client.range_scan(&0, &10), vec![(7, 700), (9, 900)]);
//! server.shutdown(); // drains in-flight batches, then joins workers
//! ```

#![warn(missing_docs)]

mod config;
mod metrics;
mod queue;
mod server;

pub use config::ServeConfig;
pub use metrics::ServeMetrics;
pub use queue::{Batch, BatchQueue, OfferError};
pub use server::{
    OpClass, Request, Response, ServeCounters, ServeSession, Server, ServerClosed, SubmitError,
    Ticket,
};
