//! The server proper: shard-owned drain workers over a [`CitrusForest`],
//! plus the client-side [`ServeSession`] that makes the whole pipeline
//! look like an ordinary [`MapSession`].
//!
//! # Shape
//!
//! One worker thread per forest shard (the thread-per-core layout) owns a
//! [`BatchQueue`] mailbox and a long-lived `ForestSession`. Clients route
//! each request to its shard with the forest's own router
//! ([`CitrusForest::shard_for`]), so a request and the data it touches
//! always meet on the same worker; the worker drains up to
//! `batch_max` requests per queue-lock acquisition and executes them in
//! arrival order against its session.
//!
//! # Correctness at this boundary
//!
//! Each response is delivered *after* its request executes, so every
//! operation's linearization point falls inside its invocation/response
//! window and the server composition preserves the forest's
//! linearizability — that is exactly what the end-to-end lincheck suite
//! verifies, and what the planted `serve/drain/ack-before-apply` mutant
//! (which acknowledges a write with a predicted result before executing
//! it) deliberately breaks.

use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use citrus::{CitrusForest, RcuFlavor, ScalableRcu};
use citrus_api::{ConcurrentMap, MapSession, OrderedMapSession};
use citrus_chaos as chaos;
use citrus_obs::Stopwatch;

use crate::config::ServeConfig;
use crate::metrics::ServeMetrics;
use crate::queue::{BatchQueue, OfferError};

/// The three latency classes a request falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Point reads: `get`, `contains`.
    Read,
    /// Point writes: `insert`, `remove`.
    Write,
    /// Ordered traversals: `range_scan`, `successor`, `predecessor`.
    Scan,
}

impl OpClass {
    /// Stable label used in benchmark rows and metric names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Read => "get",
            OpClass::Write => "write",
            OpClass::Scan => "scan",
        }
    }

    /// All classes, in report order.
    pub const ALL: [OpClass; 3] = [OpClass::Read, OpClass::Write, OpClass::Scan];
}

/// One client request. Scans route by their low bound, every other op by
/// its key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request<K, V> {
    /// `get(key)`.
    Get(K),
    /// `contains(key)`.
    Contains(K),
    /// `insert(key, value)`.
    Insert(K, V),
    /// `remove(key)`.
    Remove(K),
    /// `range_scan(lo, hi)` (inclusive bounds).
    Scan(K, K),
    /// `successor(key)`.
    Successor(K),
    /// `predecessor(key)`.
    Predecessor(K),
}

impl<K, V> Request<K, V> {
    /// The latency class this request is accounted under.
    #[must_use]
    pub fn class(&self) -> OpClass {
        match self {
            Request::Get(_) | Request::Contains(_) => OpClass::Read,
            Request::Insert(..) | Request::Remove(_) => OpClass::Write,
            Request::Scan(..) | Request::Successor(_) | Request::Predecessor(_) => OpClass::Scan,
        }
    }

    /// `true` for the mutating requests (insert/remove).
    #[must_use]
    pub fn is_write(&self) -> bool {
        self.class() == OpClass::Write
    }

    /// The key the request routes by.
    #[must_use]
    pub fn route_key(&self) -> &K {
        match self {
            Request::Get(k)
            | Request::Contains(k)
            | Request::Insert(k, _)
            | Request::Remove(k)
            | Request::Scan(k, _)
            | Request::Successor(k)
            | Request::Predecessor(k) => k,
        }
    }
}

/// The result of one [`Request`], with one variant per result shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response<K, V> {
    /// `get` → the value, if present.
    Value(Option<V>),
    /// `contains` / `insert` / `remove` → the boolean outcome.
    Flag(bool),
    /// `range_scan` → the matching entries in ascending key order.
    Entries(Vec<(K, V)>),
    /// `successor` / `predecessor` → the neighbouring entry, if any.
    Entry(Option<(K, V)>),
}

/// Why a submission did not produce a [`Ticket`]. Both variants hand the
/// request back so the caller can retry without cloning.
#[derive(Debug)]
pub enum SubmitError<K, V> {
    /// The target shard queue is at its high-water mark. Back off for
    /// `retry_after`, then resubmit.
    Rejected {
        /// The request, returned unconsumed.
        req: Request<K, V>,
        /// How long the server suggests waiting before the retry.
        retry_after: Duration,
        /// Shard queue depth observed at rejection time.
        depth: usize,
    },
    /// The server is shutting down (or has shut down); the request was
    /// not enqueued and never will be.
    Closed(Request<K, V>),
}

/// The session-level terminal error: the server closed underneath us.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerClosed;

impl std::fmt::Display for ServerClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("citrus-serve: server is shut down")
    }
}

impl std::error::Error for ServerClosed {}

/// The response rendezvous: the worker delivers into it, the client waits
/// on it.
struct Slot<K, V> {
    resp: Mutex<Option<Response<K, V>>>,
    cv: Condvar,
}

impl<K, V> Slot<K, V> {
    fn new() -> Self {
        Self {
            resp: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn deliver(&self, resp: Response<K, V>) {
        let mut g = self.resp.lock().unwrap_or_else(PoisonError::into_inner);
        *g = Some(resp);
        drop(g);
        self.cv.notify_one();
    }
}

/// A claim check for one accepted request. Every accepted request is
/// eventually delivered — including during a shutdown drain — so
/// [`wait`](Ticket::wait) always returns. Dropping a ticket abandons the
/// response harmlessly (the worker still executes the request).
pub struct Ticket<K, V> {
    slot: Arc<Slot<K, V>>,
}

impl<K, V> std::fmt::Debug for Ticket<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<K, V> Ticket<K, V> {
    /// Blocks until the worker delivers this request's response.
    #[must_use]
    pub fn wait(self) -> Response<K, V> {
        let mut g = self
            .slot
            .resp
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self.slot.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// `true` once the response has been delivered (non-blocking).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.slot
            .resp
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }
}

struct Envelope<K, V> {
    req: Request<K, V>,
    slot: Arc<Slot<K, V>>,
}

/// Always-on counters (plain atomics, *not* `stats`-gated): the
/// correctness suites assert on these, so they must exist in every build.
#[derive(Debug, Default)]
pub struct ServeCounters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    executed: AtomicU64,
    acked_writes: AtomicU64,
    recycled_sessions: AtomicU64,
}

impl ServeCounters {
    /// Requests admitted into a shard queue.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Requests turned away at the high-water mark.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Batches drained by shard workers.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Requests executed against the forest.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Write responses delivered to clients. The shutdown-drain contract
    /// is about exactly these: every one of them is visible in the final
    /// forest state.
    #[must_use]
    pub fn acked_writes(&self) -> u64 {
        self.acked_writes.load(Ordering::Relaxed)
    }

    /// Worker forest-sessions dropped and reopened by the
    /// `recycle_ops` churn knob.
    #[must_use]
    pub fn recycled_sessions(&self) -> u64 {
        self.recycled_sessions.load(Ordering::Relaxed)
    }
}

struct ServerInner<K, V, F: RcuFlavor> {
    forest: CitrusForest<K, V, F>,
    queues: Vec<BatchQueue<Envelope<K, V>>>,
    config: ServeConfig,
    counters: ServeCounters,
    metrics: ServeMetrics,
}

/// The batched, backpressured request layer over a [`CitrusForest`].
///
/// Construction spawns one named worker thread per shard; [`Drop`] (or an
/// explicit [`shutdown`](Server::shutdown)) closes admission, drains every
/// queued request, and joins the workers — no acknowledged write is ever
/// lost to a shutdown.
pub struct Server<K, V, F: RcuFlavor = ScalableRcu>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    inner: Arc<ServerInner<K, V, F>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    closed: AtomicBool,
}

/// Executes one request against a forest session, consuming the request.
fn exec<K, V, S>(session: &mut S, req: Request<K, V>) -> Response<K, V>
where
    S: MapSession<K, V> + OrderedMapSession<K, V>,
{
    match req {
        Request::Get(k) => Response::Value(session.get(&k)),
        Request::Contains(k) => Response::Flag(session.contains(&k)),
        Request::Insert(k, v) => Response::Flag(session.insert(k, v)),
        Request::Remove(k) => Response::Flag(session.remove(&k)),
        Request::Scan(lo, hi) => Response::Entries(session.range_scan(&lo, &hi)),
        Request::Successor(k) => Response::Entry(session.successor(&k)),
        Request::Predecessor(k) => Response::Entry(session.predecessor(&k)),
    }
}

fn worker_loop<K, V, F>(inner: &ServerInner<K, V, F>, shard: usize)
where
    K: Ord + Hash + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    let mut session = inner.forest.session();
    let mut since_recycle = 0u64;
    // The `serve/drain/ack-before-apply` mutant stashes at most one
    // acknowledged-but-unexecuted write here. The stash is applied after
    // the *next* request executes (that misordering is the planted bug),
    // before a session recycle, and at worker exit — so even the mutant
    // never loses an acknowledged write, it only reorders it.
    let mut stashed: Option<Request<K, V>> = None;
    loop {
        let batch = inner.queues[shard].take_batch(inner.config.batch_max);
        if batch.closing {
            chaos::point!("serve/shutdown/drain");
            if batch.items.is_empty() {
                break;
            }
        }
        if batch.items.is_empty() {
            continue;
        }
        chaos::point!("serve/batch/drain");
        inner.counters.batches.fetch_add(1, Ordering::Relaxed);
        inner.metrics.batch_size.record(batch.items.len() as u64);
        for env in batch.items {
            if chaos::mutant_enabled("serve/drain/ack-before-apply") && env.req.is_write() {
                if let Some(prev) = stashed.take() {
                    let _ = exec(&mut session, prev);
                }
                let predicted = match &env.req {
                    Request::Insert(k, _) => Response::Flag(!session.contains(k)),
                    Request::Remove(k) => Response::Flag(session.contains(k)),
                    _ => unreachable!("is_write() covers exactly insert/remove"),
                };
                // Count before delivering: once a client sees its
                // response, the counter must already include it.
                inner.counters.acked_writes.fetch_add(1, Ordering::Relaxed);
                env.slot.deliver(predicted);
                stashed = Some(env.req);
                continue;
            }
            let is_write = env.req.is_write();
            let resp = exec(&mut session, env.req);
            // Count before delivering: once a client sees its response,
            // the counters must already include it.
            inner.counters.executed.fetch_add(1, Ordering::Relaxed);
            if is_write {
                inner.counters.acked_writes.fetch_add(1, Ordering::Relaxed);
            }
            env.slot.deliver(resp);
            if let Some(prev) = stashed.take() {
                let _ = exec(&mut session, prev);
            }
            since_recycle += 1;
            if inner.config.recycle_ops > 0 && since_recycle >= inner.config.recycle_ops {
                if let Some(prev) = stashed.take() {
                    let _ = exec(&mut session, prev);
                }
                session = inner.forest.session();
                inner
                    .counters
                    .recycled_sessions
                    .fetch_add(1, Ordering::Relaxed);
                since_recycle = 0;
            }
        }
    }
    if let Some(prev) = stashed.take() {
        let _ = exec(&mut session, prev);
    }
}

impl<K, V> Server<K, V, ScalableRcu>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Serves `forest` with the default [`ServeConfig`].
    #[must_use]
    pub fn new(forest: CitrusForest<K, V>) -> Self {
        Self::with_config(forest, ServeConfig::default())
    }
}

impl<K, V, F> Server<K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    F: RcuFlavor,
{
    /// Takes ownership of `forest` and spawns one drain worker per shard
    /// (threads named `citrus-serve-<shard>`).
    #[must_use]
    pub fn with_config(forest: CitrusForest<K, V, F>, config: ServeConfig) -> Self {
        let shards = forest.shard_count();
        let inner = Arc::new(ServerInner {
            forest,
            queues: (0..shards).map(|_| BatchQueue::new()).collect(),
            config,
            counters: ServeCounters::default(),
            metrics: ServeMetrics::new(),
        });
        let workers = (0..shards)
            .map(|shard| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("citrus-serve-{shard}"))
                    .spawn(move || worker_loop(&inner, shard))
                    .expect("spawn citrus-serve worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(workers),
            closed: AtomicBool::new(false),
        }
    }

    /// Routes `req` to its shard queue. On success the returned
    /// [`Ticket`] will always resolve; on rejection the caller owns the
    /// back-off (the blocking [`ServeSession`] API does it for you).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] past the high-water mark,
    /// [`SubmitError::Closed`] after shutdown began.
    pub fn submit(&self, req: Request<K, V>) -> Result<Ticket<K, V>, SubmitError<K, V>> {
        let shard = self.inner.forest.shard_for(req.route_key());
        chaos::point!("serve/batch/enqueue");
        let slot = Arc::new(Slot::new());
        let env = Envelope {
            req,
            slot: Arc::clone(&slot),
        };
        match self.inner.queues[shard].offer(env, self.inner.config.high_water) {
            Ok(depth) => {
                self.inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.depth_hwm.observe(depth as u64);
                Ok(Ticket { slot })
            }
            Err(OfferError::Rejected { item, depth }) => {
                chaos::point!("serve/admission/reject");
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Rejected {
                    req: item.req,
                    retry_after: self.inner.config.retry_after,
                    depth,
                })
            }
            Err(OfferError::Closed(item)) => Err(SubmitError::Closed(item.req)),
        }
    }

    /// Number of shards (== worker threads, == queues).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.queues.len()
    }

    /// The shard `key` routes to (the forest router's verdict).
    #[must_use]
    pub fn shard_for(&self, key: &K) -> usize {
        self.inner.forest.shard_for(key)
    }

    /// Current depth of one shard queue (racy, for reporting/tests).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    #[must_use]
    pub fn queue_len(&self, shard: usize) -> usize {
        self.inner.queues[shard].len()
    }

    /// The always-on request counters.
    #[must_use]
    pub fn counters(&self) -> &ServeCounters {
        &self.inner.counters
    }

    /// The `stats`-gated latency/batch instruments.
    #[must_use]
    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// Freezes every shard worker (admission continues): the
    /// deterministic way to fill queues up to the high-water mark in
    /// tests. Shutdown overrides a pause, so a paused server still drains
    /// cleanly.
    pub fn pause(&self) {
        for q in &self.inner.queues {
            q.pause();
        }
    }

    /// Undoes [`pause`](Server::pause).
    pub fn resume(&self) {
        for q in &self.inner.queues {
            q.resume();
        }
    }

    /// Graceful shutdown: closes admission, lets every worker drain its
    /// queue to empty (delivering all outstanding responses), and joins
    /// the worker threads. Idempotent; also run by [`Drop`].
    pub fn shutdown(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        for q in &self.inner.queues {
            // A paused worker must still drain: resume before closing.
            q.resume();
            q.close();
        }
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for w in workers {
            // A worker that panicked already delivered or abandoned its
            // batch; surface the panic instead of hiding it.
            if let Err(e) = w.join() {
                std::panic::resume_unwind(e);
            }
        }
    }

    /// Shuts down (draining as above) and hands back the forest, e.g. for
    /// `validate_structure` / `to_vec_quiescent` replay checks.
    #[must_use]
    pub fn into_forest(self) -> CitrusForest<K, V, F> {
        self.shutdown();
        let inner = Arc::clone(&self.inner);
        drop(self);
        match Arc::try_unwrap(inner) {
            Ok(inner) => inner.forest,
            Err(_) => unreachable!("workers are joined; no other owners remain"),
        }
    }
}

impl<K, V, F> Drop for Server<K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    F: RcuFlavor,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<K, V, F> std::fmt::Debug for Server<K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    F: RcuFlavor,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("shards", &self.shard_count())
            .field("config", &self.inner.config)
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

/// A client handle: submits through the full queue/batch/response path
/// and blocks for each response, honoring `retry-after` back-off on
/// rejection. This is the adapter the end-to-end lincheck and conformance
/// suites drive — through it, `citrus-serve` *is* a [`ConcurrentMap`].
pub struct ServeSession<'s, K, V, F: RcuFlavor = ScalableRcu>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    server: &'s Server<K, V, F>,
    rejections: u64,
}

impl<'s, K, V, F> ServeSession<'s, K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    F: RcuFlavor,
{
    fn new(server: &'s Server<K, V, F>) -> Self {
        Self {
            server,
            rejections: 0,
        }
    }

    /// How many times this session has been turned away at the high-water
    /// mark (and backed off as told).
    #[must_use]
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Submits `req`, sleeping `retry_after` and resubmitting on each
    /// rejection, and blocks for the response.
    ///
    /// # Errors
    ///
    /// [`ServerClosed`] if the server shut down before the request was
    /// admitted.
    pub fn try_call(&mut self, mut req: Request<K, V>) -> Result<Response<K, V>, ServerClosed> {
        let class = req.class();
        let sw = Stopwatch::start();
        loop {
            match self.server.submit(req) {
                Ok(ticket) => {
                    let resp = ticket.wait();
                    self.server
                        .inner
                        .metrics
                        .latency(class)
                        .record(sw.elapsed_ns());
                    return Ok(resp);
                }
                Err(SubmitError::Rejected {
                    req: returned,
                    retry_after,
                    ..
                }) => {
                    self.rejections += 1;
                    std::thread::sleep(retry_after);
                    req = returned;
                }
                Err(SubmitError::Closed(_)) => return Err(ServerClosed),
            }
        }
    }

    fn call(&mut self, req: Request<K, V>) -> Response<K, V> {
        self.try_call(req)
            .expect("citrus-serve: server shut down under a live session")
    }
}

impl<K, V, F> MapSession<K, V> for ServeSession<'_, K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    F: RcuFlavor,
{
    fn get(&mut self, key: &K) -> Option<V> {
        match self.call(Request::Get(key.clone())) {
            Response::Value(v) => v,
            _ => unreachable!("Get always yields Value"),
        }
    }

    fn contains(&mut self, key: &K) -> bool {
        match self.call(Request::Contains(key.clone())) {
            Response::Flag(b) => b,
            _ => unreachable!("Contains always yields Flag"),
        }
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        match self.call(Request::Insert(key, value)) {
            Response::Flag(b) => b,
            _ => unreachable!("Insert always yields Flag"),
        }
    }

    fn remove(&mut self, key: &K) -> bool {
        match self.call(Request::Remove(key.clone())) {
            Response::Flag(b) => b,
            _ => unreachable!("Remove always yields Flag"),
        }
    }
}

impl<K, V, F> OrderedMapSession<K, V> for ServeSession<'_, K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    F: RcuFlavor,
{
    fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, V)> {
        match self.call(Request::Scan(lo.clone(), hi.clone())) {
            Response::Entries(entries) => entries,
            _ => unreachable!("Scan always yields Entries"),
        }
    }

    fn successor(&mut self, key: &K) -> Option<(K, V)> {
        match self.call(Request::Successor(key.clone())) {
            Response::Entry(e) => e,
            _ => unreachable!("Successor always yields Entry"),
        }
    }

    fn predecessor(&mut self, key: &K) -> Option<(K, V)> {
        match self.call(Request::Predecessor(key.clone())) {
            Response::Entry(e) => e,
            _ => unreachable!("Predecessor always yields Entry"),
        }
    }
}

impl<K, V, F> ConcurrentMap<K, V> for Server<K, V, F>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    F: RcuFlavor,
{
    type Session<'a>
        = ServeSession<'a, K, V, F>
    where
        Self: 'a;

    const NAME: &'static str = "citrus-serve";

    fn session(&self) -> Self::Session<'_> {
        ServeSession::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus::ReclaimMode;

    fn small_server() -> Server<u64, u64> {
        let forest = CitrusForest::with_options(4, 7, ReclaimMode::Epoch, false);
        Server::new(forest)
    }

    #[test]
    fn point_ops_round_trip_through_the_pipeline() {
        let server = small_server();
        let mut s = server.session();
        assert!(s.insert(5, 50));
        assert!(
            !s.insert(5, 51),
            "duplicate insert must report absent=false"
        );
        assert_eq!(s.get(&5), Some(50));
        assert!(s.contains(&5));
        assert!(s.remove(&5));
        assert_eq!(s.get(&5), None);
        assert!(server.counters().accepted() >= 6);
        assert_eq!(server.counters().acked_writes(), 3);
    }

    #[test]
    fn ordered_ops_cross_shards() {
        let server = small_server();
        let mut s = server.session();
        for k in 0..64u64 {
            s.insert(k, k * 10);
        }
        let entries = s.range_scan(&10, &13);
        assert_eq!(entries, vec![(10, 100), (11, 110), (12, 120), (13, 130)]);
        assert_eq!(s.successor(&13), Some((14, 140)));
        assert_eq!(s.predecessor(&10), Some((9, 90)));
    }

    #[test]
    fn shutdown_then_submit_is_closed() {
        let server = small_server();
        {
            let mut s = server.session();
            s.insert(1, 1);
        }
        server.shutdown();
        server.shutdown(); // idempotent
        match server.submit(Request::Get(1)) {
            Err(SubmitError::Closed(Request::Get(1))) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn into_forest_reflects_acked_writes() {
        let server = small_server();
        {
            let mut s = server.session();
            for k in 0..32u64 {
                assert!(s.insert(k, k + 1000));
            }
            assert!(s.remove(&7));
        }
        let acked = server.counters().acked_writes();
        assert_eq!(acked, 33);
        let mut forest = server.into_forest();
        forest.validate_structure().expect("forest invariants hold");
        let contents = forest.to_vec_quiescent();
        assert_eq!(contents.len(), 31);
        assert!(!contents.iter().any(|(k, _)| *k == 7));
    }

    #[test]
    fn pause_defers_execution_until_resume() {
        let server = small_server();
        server.pause();
        let ticket = server.submit(Request::Insert(3, 30)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(!ticket.is_ready(), "paused workers must not execute");
        server.resume();
        assert_eq!(ticket.wait(), Response::Flag(true));
    }

    #[test]
    fn request_classes_and_routing_keys() {
        let req: Request<u64, u64> = Request::Scan(4, 9);
        assert_eq!(req.class(), OpClass::Scan);
        assert_eq!(*req.route_key(), 4, "scans route by their low bound");
        assert!(Request::<u64, u64>::Insert(1, 2).is_write());
        assert!(!Request::<u64, u64>::Contains(1).is_write());
        assert_eq!(OpClass::Write.label(), "write");
    }
}
