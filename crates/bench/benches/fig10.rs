//! `cargo bench --bench fig10` — regenerates the paper's Figure 10.

use citrus_bench::{banner, emit};
use citrus_harness::{experiments, BenchConfig};

fn main() {
    banner("Figure 10 (bench) — operation-mix grid");
    let cfg = BenchConfig::from_env();
    for (i, report) in experiments::fig10(&cfg).iter().enumerate() {
        emit(report, &format!("fig10_panel{i}"));
    }
}
