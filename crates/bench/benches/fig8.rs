//! `cargo bench --bench fig8` — regenerates the paper's Figure 8.
//! Plain-main bench target (no criterion harness): the measurement *is*
//! the throughput table.

use citrus_bench::{banner, emit};
use citrus_harness::{experiments, BenchConfig};

fn main() {
    banner("Figure 8 (bench) — Citrus over standard vs scalable RCU");
    let cfg = BenchConfig::from_env();
    let report = experiments::fig8(&cfg);
    emit(&report, "fig8");
}
