//! `cargo bench --bench rcu_micro` — micro-benchmarks for the RCU
//! primitives: read-side enter/exit cost and solo `synchronize_rcu`
//! latency, per flavor. Plain-main bench target (no external harness);
//! the binary `rcu_micro` additionally measures contended synchronize
//! rates.

use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};
use std::time::Instant;

fn bench_ns(label: &str, iters: u32, mut f: impl FnMut()) {
    // One warmup pass, then the timed pass.
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("  {label:<42} {ns:>8.1} ns/op");
}

fn bench_flavor<F: RcuFlavor>() {
    let rcu = F::new();
    let h = rcu.register();
    bench_ns(&format!("{} read_lock+unlock", F::NAME), 2_000_000, || {
        let g = h.read_lock();
        std::hint::black_box(&g);
    });
    bench_ns(&format!("{} synchronize (solo)", F::NAME), 200_000, || {
        h.synchronize();
    });
}

fn main() {
    println!("=== RCU micro-benchmarks (bench target) ===\n");
    bench_flavor::<ScalableRcu>();
    bench_flavor::<GlobalLockRcu>();
}
