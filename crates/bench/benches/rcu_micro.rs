//! Criterion micro-benchmarks for the RCU primitives: read-side
//! enter/exit cost and solo `synchronize_rcu` latency, per flavor.

use criterion::{criterion_group, criterion_main, Criterion};
use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};

fn bench_read_side(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcu_read_side");
    {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        group.bench_function(ScalableRcu::NAME, |b| {
            b.iter(|| {
                let g = h.read_lock();
                std::hint::black_box(&g);
            })
        });
    }
    {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        group.bench_function(GlobalLockRcu::NAME, |b| {
            b.iter(|| {
                let g = h.read_lock();
                std::hint::black_box(&g);
            })
        });
    }
    group.finish();
}

fn bench_synchronize_solo(c: &mut Criterion) {
    let mut group = c.benchmark_group("rcu_synchronize_solo");
    {
        let rcu = ScalableRcu::new();
        let h = rcu.register();
        group.bench_function(ScalableRcu::NAME, |b| b.iter(|| h.synchronize()));
    }
    {
        let rcu = GlobalLockRcu::new();
        let h = rcu.register();
        group.bench_function(GlobalLockRcu::NAME, |b| b.iter(|| h.synchronize()));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_read_side, bench_synchronize_solo
}
criterion_main!(benches);
