//! `cargo bench --bench fig9` — regenerates the paper's Figure 9.

use citrus_bench::{banner, emit};
use citrus_harness::{experiments, BenchConfig};

fn main() {
    banner("Figure 9 (bench) — single-writer workload");
    let cfg = BenchConfig::from_env();
    for (i, report) in experiments::fig9(&cfg).iter().enumerate() {
        emit(report, &format!("fig9_panel{i}"));
    }
}
