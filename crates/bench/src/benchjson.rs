//! Minimal JSON emission for the persisted `BENCH_<name>.json` perf
//! trajectory files.
//!
//! The workspace is std-only (no serde), and the documents we write are
//! small and flat, so the binaries assemble them from string fragments;
//! this module owns the two fiddly parts — string escaping and non-finite
//! floats — plus the output-path convention.
//!
//! Files land in `CITRUS_BENCH_DIR` (default: the current directory, i.e.
//! the repo root under `cargo run`), so successive runs overwrite in place
//! and the checked-in copy records the trajectory across commits.

use std::io;
use std::path::{Path, PathBuf};

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
#[must_use]
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `v` as a JSON number token; non-finite values (which JSON
/// cannot represent) become `null`.
#[must_use]
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Writes `body` (a complete JSON document) as `BENCH_<name>.json` under
/// `CITRUS_BENCH_DIR` (default: current directory) and returns the path.
pub fn write(name: &str, body: &str) -> io::Result<PathBuf> {
    let dir =
        std::env::var_os("CITRUS_BENCH_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from);
    write_to(&dir, name, body)
}

/// Writes `body` as `BENCH_<name>.json` under `dir` (created if missing)
/// and returns the path. [`write`] is the env-reading wrapper; taking the
/// directory explicitly keeps tests off the process-global environment.
pub fn write_to(dir: &Path, name: &str, body: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(esc(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(esc("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn numbers_stay_plain_and_nonfinite_becomes_null() {
        assert_eq!(num(12.5), "12.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn write_to_creates_dir_and_names_file() {
        let dir = std::env::temp_dir().join("citrus_benchjson_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_to(&dir, "probe", "{\"ok\": true}\n").unwrap();
        assert_eq!(path, dir.join("BENCH_probe.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\": true}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
