//! Minimal JSON emission for the persisted `BENCH_<name>.json` perf
//! trajectory files.
//!
//! The workspace is std-only (no serde), and the documents we write are
//! small and flat, so the binaries assemble them from string fragments;
//! this module owns the two fiddly parts — string escaping and non-finite
//! floats — plus the output-path convention.
//!
//! Files land in `CITRUS_BENCH_DIR` (default: the current directory, i.e.
//! the repo root under `cargo run`), so successive runs overwrite in place
//! and the checked-in copy records the trajectory across commits.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A parsed JSON value (see [`parse`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what [`num`] emits for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse error: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (std-only recursive descent — the
/// read-side counterpart of [`esc`]/[`num`], so tests can round-trip
/// every `BENCH_*.json` writer instead of trusting string assembly).
///
/// # Errors
///
/// Returns a [`ParseError`] (with byte offset) on malformed input,
/// including trailing garbage after the document.
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_word("true", Json::Bool(true)),
            Some(b'f') => self.eat_word("false", Json::Bool(false)),
            Some(b'n') => self.eat_word("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.at += 4;
                            // Surrogates never appear in our writers;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always well-formed).
                    let rest = &self.bytes[self.at..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII slice");
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
#[must_use]
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `v` as a JSON number token; non-finite values (which JSON
/// cannot represent) become `null`.
#[must_use]
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Writes `body` (a complete JSON document) as `BENCH_<name>.json` under
/// `CITRUS_BENCH_DIR` (default: current directory) and returns the path.
pub fn write(name: &str, body: &str) -> io::Result<PathBuf> {
    let dir =
        std::env::var_os("CITRUS_BENCH_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from);
    write_to(&dir, name, body)
}

/// Writes `body` as `BENCH_<name>.json` under `dir` (created if missing)
/// and returns the path. [`write`] is the env-reading wrapper; taking the
/// directory explicitly keeps tests off the process-global environment.
pub fn write_to(dir: &Path, name: &str, body: &str) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(esc(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(esc("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn numbers_stay_plain_and_nonfinite_becomes_null() {
        assert_eq!(num(12.5), "12.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn parse_round_trips_a_written_document() {
        // serialize (esc/num) → write_to → read back → parse → compare.
        let body = format!(
            "{{\"name\": \"{}\", \"nan\": {}, \"points\": [{}, {}, {}], \"ok\": true}}\n",
            esc("quote\" back\\slash\nnewline"),
            num(f64::NAN),
            num(1.5),
            num(0.0),
            num(-3.25e3),
        );
        let dir = std::env::temp_dir().join("citrus_benchjson_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_to(&dir, "roundtrip", &body).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        let doc = parse(&read).expect("written document must parse");
        assert_eq!(
            doc.get("name").and_then(Json::as_str),
            Some("quote\" back\\slash\nnewline"),
            "escapes must decode back to the original string"
        );
        assert_eq!(doc.get("nan"), Some(&Json::Null), "NaN serializes as null");
        let points: Vec<f64> = doc
            .get("points")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|p| p.as_f64().unwrap())
            .collect();
        assert_eq!(points, vec![1.5, 0.0, -3250.0]);
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_decodes_unicode_escapes_and_nesting() {
        let doc = parse(r#"{"a": [{"b": "A\t"}, null, -0.5]}"#).unwrap();
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].get("b").and_then(Json::as_str), Some("A\t"));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_f64(), Some(-0.5));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for (input, why) in [
            ("{\"a\": 1", "unterminated object"),
            ("[1, 2,]", "dangling comma"),
            ("\"unterminated", "unterminated string"),
            ("{\"a\": 1} trailing", "trailing garbage"),
            ("nul", "truncated keyword"),
            ("{\"a\" 1}", "missing colon"),
            ("1.2.3", "malformed number"),
            ("", "empty input"),
        ] {
            assert!(parse(input).is_err(), "{why}: `{input}` must not parse");
        }
    }

    #[test]
    fn write_to_creates_dir_and_names_file() {
        let dir = std::env::temp_dir().join("citrus_benchjson_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_to(&dir, "probe", "{\"ok\": true}\n").unwrap();
        assert_eq!(path, dir.join("BENCH_probe.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\": true}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
