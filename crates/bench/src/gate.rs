//! Bench-regression gate: diffs a freshly generated `BENCH_*.json`
//! document against the committed baseline and flags throughput drops.
//!
//! The persisted bench documents have different shapes (figure reports
//! carry `series[].ops_per_s` arrays, the forest sweep and the RCU micro
//! carry `cells[]` rows), so the gate does not hard-code any one schema.
//! Instead it walks both documents and treats every object that carries a
//! throughput field ([`METRIC_KEYS`]) as a *row*, identified by its
//! position-independent fingerprint: the JSON path of object keys leading
//! to it plus its configuration fields ([`IDENTITY_KEYS`]: `flavor`,
//! `shards`, `deferred`, `label`, …). Measured side-channel fields
//! (`piggybacks`, `grace_periods`) are neither identity nor metric, so
//! run-to-run noise in them cannot unmatch a row. Rows are matched by
//! fingerprint — reordering cells or appending new ones never confuses
//! the gate — and a matched row regresses when a fresh metric falls more
//! than the threshold below its baseline value.
//!
//! Used by the `bench_gate` binary, which CI runs after the smoke
//! benchmarks regenerate `BENCH_rcu_micro.json` and `BENCH_forest.json`.

use crate::benchjson::Json;
use std::collections::BTreeMap;
use std::fmt;

/// Object fields the gate treats as throughput metrics (higher is
/// better). Everything else in a row is identity.
pub const METRIC_KEYS: [&str; 5] = [
    "ops_per_s",
    "synchronize_per_s",
    "retires_per_s",
    "scans_per_s",
    "per_sec",
];

/// Object fields that identify a row (workload configuration). Scalar
/// fields outside this list — measured counters like `piggybacks` — are
/// ignored entirely, so their run-to-run noise cannot unmatch a row.
pub const IDENTITY_KEYS: [&str; 20] = [
    "bench",
    "label",
    "flavor",
    "sharing",
    "syncers",
    "updaters",
    "readers",
    "shards",
    "contains_pct",
    "threads",
    "deferred",
    "mode",
    "scanners",
    "span",
    "router",
    "key_dist",
    "scenario",
    "op",
    "clients",
    "target_rps",
];

/// Default tolerated drop before a row fails the gate, in percent.
pub const DEFAULT_MAX_DROP_PCT: f64 = 30.0;

/// One failed comparison: a fresh metric fell below the allowed fraction
/// of its baseline value.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The row's fingerprint (path plus identity fields).
    pub row: String,
    /// Which metric regressed (`ops_per_s[2]`, `synchronize_per_s`, …).
    pub metric: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
}

impl Regression {
    /// The relative drop, in percent of the baseline.
    #[must_use]
    pub fn drop_pct(&self) -> f64 {
        (1.0 - self.fresh / self.baseline) * 100.0
    }
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {:.3e} -> {:.3e} ({:.1}% drop)",
            self.row,
            self.metric,
            self.baseline,
            self.fresh,
            self.drop_pct()
        )
    }
}

/// The outcome of [`check`].
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Metric values compared (rows matched in both documents).
    pub compared: usize,
    /// Comparisons that exceeded the allowed drop.
    pub regressions: Vec<Regression>,
    /// Baseline rows with no fresh counterpart (reported, not fatal:
    /// bench documents are allowed to change shape across PRs).
    pub missing: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes (no regression beyond the threshold).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `fresh` against `baseline`, failing any matched row whose
/// throughput dropped by more than `max_drop_pct` percent.
#[must_use]
pub fn check(baseline: &Json, fresh: &Json, max_drop_pct: f64) -> GateReport {
    let base_rows = collect_rows(baseline);
    let fresh_rows = collect_rows(fresh);
    let mut report = GateReport::default();
    let allowed = 1.0 - max_drop_pct / 100.0;
    for (row, base_metrics) in &base_rows {
        let Some(fresh_metrics) = fresh_rows.get(row) else {
            report.missing.push(row.clone());
            continue;
        };
        for (metric, base_value) in base_metrics {
            // A metric absent or null (NaN) on either side is skipped:
            // there is nothing sound to compare.
            let Some(&fresh_value) = fresh_metrics.get(metric) else {
                continue;
            };
            report.compared += 1;
            if *base_value > 0.0 && fresh_value < base_value * allowed {
                report.regressions.push(Regression {
                    row: row.clone(),
                    metric: metric.clone(),
                    baseline: *base_value,
                    fresh: fresh_value,
                });
            }
        }
    }
    report
}

/// Flattens a document into `fingerprint -> {metric name -> value}`.
///
/// Duplicate fingerprints (two rows with identical identity fields — not
/// produced by our writers, but possible) get a `#n` suffix in document
/// order so nothing is silently dropped.
fn collect_rows(doc: &Json) -> BTreeMap<String, BTreeMap<String, f64>> {
    let mut rows = BTreeMap::new();
    walk(doc, "", &mut rows);
    rows
}

fn walk(node: &Json, path: &str, rows: &mut BTreeMap<String, BTreeMap<String, f64>>) {
    match node {
        Json::Obj(members) => {
            let mut metrics = BTreeMap::new();
            let mut identity: Vec<String> = Vec::new();
            for (key, value) in members {
                if METRIC_KEYS.contains(&key.as_str()) {
                    match value {
                        Json::Num(n) => {
                            metrics.insert(key.clone(), *n);
                        }
                        Json::Arr(items) => {
                            for (i, item) in items.iter().enumerate() {
                                if let Some(n) = item.as_f64() {
                                    metrics.insert(format!("{key}[{i}]"), n);
                                }
                            }
                        }
                        _ => {}
                    }
                } else if IDENTITY_KEYS.contains(&key.as_str()) {
                    match value {
                        Json::Str(s) => identity.push(format!("{key}={s}")),
                        Json::Num(n) => identity.push(format!("{key}={n}")),
                        Json::Bool(b) => identity.push(format!("{key}={b}")),
                        _ => {}
                    }
                }
            }
            if !metrics.is_empty() {
                identity.sort();
                let mut fingerprint = format!("{path}{{{}}}", identity.join(", "));
                if rows.contains_key(&fingerprint) {
                    let mut n = 2;
                    while rows.contains_key(&format!("{fingerprint}#{n}")) {
                        n += 1;
                    }
                    fingerprint = format!("{fingerprint}#{n}");
                }
                rows.insert(fingerprint, metrics);
            }
            for (key, value) in members {
                if METRIC_KEYS.contains(&key.as_str()) {
                    continue;
                }
                if matches!(value, Json::Obj(_) | Json::Arr(_)) {
                    walk(value, &format!("{path}{key}."), rows);
                }
            }
        }
        // Array position is deliberately NOT part of the path: rows keep
        // their fingerprint when cells are reordered or new ones are
        // appended between them.
        Json::Arr(items) => {
            for item in items {
                walk(item, path, rows);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchjson::parse;

    fn doc(s: &str) -> Json {
        parse(s).expect("test document must parse")
    }

    #[test]
    fn matched_rows_within_threshold_pass() {
        let base = doc(r#"{"cells": [
                {"flavor": "a", "shards": 2, "ops_per_s": 1000.0},
                {"flavor": "b", "shards": 2, "ops_per_s": 2000.0}
            ]}"#);
        let fresh = doc(r#"{"cells": [
                {"flavor": "b", "shards": 2, "ops_per_s": 1500.0},
                {"flavor": "a", "shards": 2, "ops_per_s": 900.0}
            ]}"#);
        // Reordered cells still match; 10% and 25% drops are tolerated.
        let report = check(&base, &fresh, 30.0);
        assert_eq!(report.compared, 2);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report.missing.is_empty());
    }

    #[test]
    fn drop_beyond_threshold_regresses() {
        let base = doc(r#"{"cells": [{"flavor": "a", "ops_per_s": 1000.0}]}"#);
        let fresh = doc(r#"{"cells": [{"flavor": "a", "ops_per_s": 650.0}]}"#);
        let report = check(&base, &fresh, 30.0);
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.metric, "ops_per_s");
        assert!(r.row.contains("flavor=a"), "row was {}", r.row);
        assert!((r.drop_pct() - 35.0).abs() < 1e-9);
        // A looser threshold lets the same drop through.
        assert!(check(&base, &fresh, 40.0).passed());
    }

    #[test]
    fn series_arrays_compare_per_index() {
        let base = doc(r#"{"series": [{"label": "citrus", "ops_per_s": [100.0, 200.0, 400.0]}]}"#);
        let fresh = doc(r#"{"series": [{"label": "citrus", "ops_per_s": [95.0, 120.0, 410.0]}]}"#);
        let report = check(&base, &fresh, 30.0);
        assert_eq!(report.compared, 3);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "ops_per_s[1]");
    }

    #[test]
    fn identity_uses_config_fields_and_path() {
        // Same flavor but different `deferred` flag: distinct rows, so the
        // fast deferred cell must not mask the slow inline one.
        let base = doc(r#"{"cells": [
                {"flavor": "a", "deferred": false, "ops_per_s": 1000.0},
                {"flavor": "a", "deferred": true, "ops_per_s": 3000.0}
            ]}"#);
        let fresh = doc(r#"{"cells": [
                {"flavor": "a", "deferred": false, "ops_per_s": 100.0},
                {"flavor": "a", "deferred": true, "ops_per_s": 3000.0}
            ]}"#);
        let report = check(&base, &fresh, 30.0);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].row.contains("deferred=false"));

        // Same identity fields under different parents: distinct rows.
        let nested_base = doc(r#"{"storm": {"cells": [{"syncers": 1, "per_sec": 100.0}]},
                "retire": {"cells": [{"syncers": 1, "per_sec": 500.0}]}}"#);
        let rows = collect_rows(&nested_base);
        assert_eq!(rows.len(), 2, "rows: {:?}", rows.keys().collect::<Vec<_>>());
    }

    #[test]
    fn missing_rows_are_reported_but_not_fatal() {
        let base = doc(r#"{"cells": [
                {"flavor": "a", "ops_per_s": 1000.0},
                {"flavor": "gone", "ops_per_s": 1000.0}
            ]}"#);
        let fresh = doc(r#"{"cells": [{"flavor": "a", "ops_per_s": 1000.0}]}"#);
        let report = check(&base, &fresh, 30.0);
        assert!(report.passed());
        assert_eq!(report.missing.len(), 1);
        assert!(report.missing[0].contains("flavor=gone"));
    }

    #[test]
    fn null_metrics_are_skipped() {
        // NaN serializes as null; neither side can be compared soundly.
        let base = doc(r#"{"s": [{"label": "x", "ops_per_s": [100.0, null]}]}"#);
        let fresh = doc(r#"{"s": [{"label": "x", "ops_per_s": [100.0, 5.0]}]}"#);
        let report = check(&base, &fresh, 30.0);
        assert_eq!(report.compared, 1);
        assert!(report.passed());
    }

    #[test]
    fn real_writer_output_produces_rows() {
        // The actual forest/rcu_micro writer shapes must be visible to the
        // gate — if a writer renames its throughput field, this fails.
        let forest = doc(r#"{"bench": "forest", "cells": [
                {"flavor": "rcu-scalable", "shards": 4, "contains_pct": 0,
                 "threads": 8, "deferred": true, "ops_per_s": 2.5e6,
                 "sync_calls_per_shard": [0, 0, 0, 0],
                 "grace_periods_per_shard": [3, 1, 2, 2], "occupancy": [10, 11, 9, 12]}
            ]}"#);
        let rows = collect_rows(&forest);
        assert_eq!(rows.len(), 1);
        let (row, metrics) = rows.iter().next().unwrap();
        assert!(row.contains("deferred=true") && row.contains("shards=4"));
        assert_eq!(metrics.get("ops_per_s"), Some(&2.5e6));

        let micro = doc(
            r#"{"bench": "rcu_micro", "read_side_ns": {"rcu-scalable": 18.0},
                "storm": {"duration_ms": 200, "readers": 2, "cells": [
                    {"flavor": "rcu-scalable", "sharing": true, "syncers": 8,
                     "synchronize_per_s": 1.2e5, "piggybacks": 900, "grace_periods": 80}
                ]}}"#,
        );
        let rows = collect_rows(&micro);
        assert_eq!(rows.len(), 1);
        let row = rows.keys().next().unwrap();
        assert!(row.contains("sharing=true"));
        assert!(
            !row.contains("piggybacks"),
            "measured counters must not be identity (they change every run): {row}"
        );

        let scan = doc(
            r#"{"bench": "rcu_micro", "scan": {"duration_ms": 200, "scanners": 2, "cells": [
                    {"flavor": "rcu-scalable", "updaters": 4, "span": 256,
                     "scans_per_s": 3.0e4, "entries_per_scan": 128.0, "restarts": 17}
                ]}}"#,
        );
        let rows = collect_rows(&scan);
        assert_eq!(rows.len(), 1);
        let (row, metrics) = rows.iter().next().unwrap();
        assert!(
            row.contains("updaters=4") && row.contains("span=256"),
            "row was {row}"
        );
        assert_eq!(metrics.get("scans_per_s"), Some(&3.0e4));
        assert!(
            !row.contains("restarts"),
            "restart counts are measured noise, not identity: {row}"
        );
    }

    #[test]
    fn serve_scenario_and_op_class_are_identity() {
        // Serve rows are keyed per scenario × op class × load shape; a
        // healthy scan row must not mask a regressed get row, and the
        // latency percentiles ride along as plain (non-gated) fields.
        let base = doc(r#"{"bench": "serve", "cells": [
                {"scenario": "routing-table", "op": "get", "router": "hash",
                 "clients": 4, "target_rps": 4000, "ops_per_s": 3500.0,
                 "p50_ns": 8191, "p99_ns": 65535, "p999_ns": 131071},
                {"scenario": "routing-table", "op": "scan", "router": "hash",
                 "clients": 4, "target_rps": 4000, "ops_per_s": 90.0,
                 "p50_ns": 16383, "p99_ns": 131071, "p999_ns": 262143}
            ]}"#);
        let fresh = doc(r#"{"bench": "serve", "cells": [
                {"scenario": "routing-table", "op": "get", "router": "hash",
                 "clients": 4, "target_rps": 4000, "ops_per_s": 350.0,
                 "p50_ns": 8191, "p99_ns": 65535, "p999_ns": 131071},
                {"scenario": "routing-table", "op": "scan", "router": "hash",
                 "clients": 4, "target_rps": 4000, "ops_per_s": 90.0,
                 "p50_ns": 16383, "p99_ns": 131071, "p999_ns": 262143}
            ]}"#);
        let report = check(&base, &fresh, 30.0);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].row.contains("op=get"));

        let rows = collect_rows(&base);
        let row = rows.keys().next().unwrap();
        assert!(
            row.contains("scenario=") && row.contains("op=") && row.contains("target_rps="),
            "row was {row}"
        );
        assert!(
            !row.contains("p99_ns"),
            "latency percentiles are reported fields, not identity: {row}"
        );
    }

    #[test]
    fn router_and_key_dist_are_identity() {
        // Forest cells carry the routing policy and key distribution; the
        // same shard count under different routers must be distinct rows,
        // so a fast range cell cannot mask a regressed hash cell.
        let base = doc(r#"{"cells": [
                {"flavor": "a", "shards": 4, "router": "hash", "key_dist": "uniform", "ops_per_s": 1000.0},
                {"flavor": "a", "shards": 4, "router": "range", "key_dist": "uniform", "ops_per_s": 3000.0}
            ]}"#);
        let fresh = doc(r#"{"cells": [
                {"flavor": "a", "shards": 4, "router": "hash", "key_dist": "uniform", "ops_per_s": 100.0},
                {"flavor": "a", "shards": 4, "router": "range", "key_dist": "uniform", "ops_per_s": 3000.0}
            ]}"#);
        let report = check(&base, &fresh, 30.0);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].row.contains("router=hash"));

        let rows = collect_rows(&base);
        let row = rows.keys().next().unwrap();
        assert!(
            row.contains("router=") && row.contains("key_dist="),
            "row was {row}"
        );
    }
}
