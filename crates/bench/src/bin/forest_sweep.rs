//! Forest shard sweep (beyond-paper): quantifies what breaking
//! grace-period serialization buys.
//!
//! A single Citrus tree funnels every two-child delete's
//! `synchronize_rcu` through one RCU domain; a [`CitrusForest`] gives each
//! key shard a private domain, so grace periods in one shard never wait on
//! readers or updaters of another. This sweep measures throughput over
//! `shards ∈ CITRUS_SHARDS (default 1,2,4,8) × update ratio {50%, 100%} ×
//! router {hash, range} × RCU flavor {scalable, global-lock} × unlink
//! mode {inline, deferred}` at the configured maximum thread count, and
//! persists the grid — including per-shard `synchronize_rcu` and
//! grace-period counters, the direct evidence of shard-local grace
//! periods — to `BENCH_forest.json`. The deferred axis takes the
//! grace-period wait off the delete path entirely (per-shard `call_rcu`
//! batches, DESIGN.md §6g); the router axis establishes that point-op
//! throughput is router-agnostic under uniform keys.
//!
//! A second grid measures whole-forest validated `range_scan` throughput
//! per shard count and router (`scan_cells` in the JSON), at a narrow and
//! a full-range span. Hash routing scatters every span over every shard,
//! so an ordered read must fan out to all of them and validate the
//! traversals together — scans/s falls as shards grow. Range routing
//! enters only the shards whose key ranges overlap the span, so
//! narrow-span scans stay (near) shard-count-independent — the cost model
//! of DESIGN.md §6i/§6j.
//!
//! A third grid (`skew_cells`) runs a YCSB-style `zipf:0.99` hot-key
//! point workload per router: the tradeoff range routing pays for its
//! scan locality is that adjacent hot keys pile into one shard, while
//! hash routing scatters them.
//!
//! Flags: `--shards N[,M,...]` overrides the shard sweep, `--metrics` is
//! accepted for uniformity with the fig binaries.
//!
//! [`CitrusForest`]: citrus::CitrusForest

use citrus_bench::{banner, benchjson, config_from_env_and_args};
use citrus_harness::experiments::{forest_scan_sweep, forest_skew_sweep, forest_sweep};
use citrus_harness::{ForestCell, ForestScanCell, ForestSkewCell};
use std::fmt::Write as _;

/// Satellite record: the `Node` hot-head cache-alignment change that rode
/// along with the forest (fig8, scalable flavor, 8 threads, range
/// [0,20000], 1 physical core). Alignment doubles the `u64`-node footprint
/// (72 → 128 bytes), which on a single core costs cache capacity with no
/// false-sharing to win back; the layout pays off only with true
/// multi-core lock traffic. Recorded per the measurement box so the
/// trade-off is explicit.
const ALIGNMENT_NOTE: &str = "node hot-head cache alignment (repr(C, align(64))): \
     fig8 scalable flavor at 8 threads on a 1-core host went 3.35e6 -> 2.64e6 ops/s \
     (node size 72 -> 128 bytes; single-core capacity cost, multi-core false-sharing win). \
     Measurement host caveat: 1 hardware thread, so grace periods in one shard already \
     overlap other threads' work via yield; the committed sweep shows the shard trend \
     but understates the multi-core speedup, where a stalled synchronize_rcu would \
     otherwise idle whole cores. The same caveat applies to the deferred rows: an \
     inline synchronize_rcu blocks one thread while the other seven fill the core, so \
     its aggregate cost here is near zero and deferred unlinking can only show its \
     bookkeeping overhead (one heap record per two-child delete, two locks frozen \
     until the batch flushes) -- the rows land within ~10% of inline, with \
     grace_periods_per_shard collapsed ~50x as the mechanism evidence. The isolated \
     retire path (BENCH_rcu_micro.json, retire cells) shows the win the forest mix \
     dilutes: deferred beats inline-synchronize retirement ~4x at every updater count \
     even on this host. Router axis: point cells are expected router-agnostic under \
     uniform keys; scan cells pay the all-shard fan-out tax under hash routing but \
     only enter overlapping shards under range routing, so narrow-span range-routed \
     scans should not fall as shards grow; skew cells record the converse tradeoff \
     (zipf hot keys concentrate into one range-routed shard, see occupancy).";

fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn print_grid(cells: &[ForestCell], contains_pct: u32, router: &str, shards: &[usize]) {
    let threads = cells.first().map_or(0, |c| c.threads);
    println!(
        "== {}% contains / {}% updates, {} threads, {} router ==",
        contains_pct,
        100 - contains_pct,
        threads,
        router
    );
    print!("{:<22}", "flavor \\ shards");
    for s in shards {
        print!("{s:>10}");
    }
    println!();
    for flavor in ["rcu-scalable", "rcu-global-lock"] {
        for deferred in [false, true] {
            let label = format!(
                "{flavor} [{}]",
                if deferred { "deferred" } else { "inline" }
            );
            print!("{label:<22}");
            for &s in shards {
                let cell = cells.iter().find(|c| {
                    c.flavor == flavor
                        && c.router == router
                        && c.shards == s
                        && c.contains_pct == contains_pct
                        && c.deferred == deferred
                });
                match cell {
                    Some(c) => print!("{:>10}", fmt_ops(c.run.ops_per_s)),
                    None => print!("{:>10}", "-"),
                }
            }
            println!();
        }
    }
    // Per-shard synchronize calls at the widest sweep point: all-zero
    // tails would mean grace periods are not actually spreading (and
    // deferred mode must show near-zero inline synchronize calls).
    for deferred in [false, true] {
        if let Some(c) = cells.iter().find(|c| {
            c.flavor == "rcu-scalable"
                && c.router == router
                && c.contains_pct == contains_pct
                && c.deferred == deferred
                && c.shards == shards.iter().copied().max().unwrap_or(1)
        }) {
            println!(
                "scalable [{}] @ {} shards: sync calls/shard {:?}, grace periods/shard {:?}",
                if deferred { "deferred" } else { "inline" },
                c.shards,
                c.run.sync_calls_per_shard,
                c.run.grace_periods_per_shard
            );
        }
    }
    println!();
}

fn cell_json(c: &ForestCell) -> String {
    let vec_u64 = |v: &[u64]| {
        v.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let occupancy = c
        .run
        .occupancy
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"flavor\": \"{}\", \"router\": \"{}\", \"shards\": {}, \"contains_pct\": {}, \
         \"threads\": {}, \"deferred\": {}, \"key_dist\": \"{}\", \"ops_per_s\": {}, \
         \"sync_calls_per_shard\": [{}], \"grace_periods_per_shard\": [{}], \
         \"occupancy\": [{}]}}",
        benchjson::esc(c.flavor),
        benchjson::esc(c.router),
        c.shards,
        c.contains_pct,
        c.threads,
        c.deferred,
        benchjson::esc(&c.key_dist),
        benchjson::num(c.run.ops_per_s),
        vec_u64(&c.run.sync_calls_per_shard),
        vec_u64(&c.run.grace_periods_per_shard),
        occupancy
    )
}

fn print_scan_grid(cells: &[ForestScanCell], router: &str, span: u64, shards: &[usize]) {
    let (scanners, updaters) = cells.first().map_or((0, 0), |c| (c.scanners, c.updaters));
    println!(
        "== range scans, {scanners} scanners vs {updaters} updaters, span {span}, {router} router =="
    );
    print!("{:<22}", "flavor \\ shards");
    for s in shards {
        print!("{s:>10}");
    }
    println!();
    for flavor in ["rcu-scalable", "rcu-global-lock"] {
        print!("{flavor:<22}");
        for &s in shards {
            let cell = cells.iter().find(|c| {
                c.flavor == flavor && c.router == router && c.span == span && c.shards == s
            });
            match cell {
                Some(c) => print!("{:>10}", fmt_ops(c.scans_per_s)),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }
    if router == "hash" {
        println!(
            "(expected: scans/s falls with shard count — hash routing scatters every\n\
             span over every shard, so each scan fans out to all of them and\n\
             validates the traversals together)\n"
        );
    } else {
        println!(
            "(expected: narrow spans stay flat or rise with shard count — range\n\
             routing enters only the shards whose key ranges overlap the span;\n\
             full-range spans still touch every shard and behave like hash)\n"
        );
    }
}

fn scan_cell_json(c: &ForestScanCell) -> String {
    format!(
        "{{\"flavor\": \"{}\", \"router\": \"{}\", \"shards\": {}, \"scanners\": {}, \
         \"updaters\": {}, \"span\": {}, \"scans_per_s\": {}, \"restarts\": {}}}",
        benchjson::esc(c.flavor),
        benchjson::esc(c.router),
        c.shards,
        c.scanners,
        c.updaters,
        c.span,
        benchjson::num(c.scans_per_s),
        c.restarts
    )
}

fn print_skew_grid(cells: &[ForestSkewCell], shards: &[usize]) {
    let (threads, dist) = cells
        .first()
        .map_or((0, String::new()), |c| (c.threads, c.key_dist.clone()));
    println!("== hot-key point ops ({dist}), {threads} threads, 50% contains ==");
    print!("{:<22}", "router \\ shards");
    for s in shards {
        print!("{s:>10}");
    }
    println!();
    for router in ["hash", "range"] {
        print!("{router:<22}");
        for &s in shards {
            match cells.iter().find(|c| c.router == router && c.shards == s) {
                Some(c) => print!("{:>10}", fmt_ops(c.run.ops_per_s)),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }
    // Per-shard synchronize calls at the widest point are the skew
    // evidence: occupancy stays prefill-uniform (hot-key inserts and
    // deletes cancel out), but the two-child deletes behind those calls
    // follow the hot keys — into one shard under range routing, spread
    // under hash.
    let widest = shards.iter().copied().max().unwrap_or(1);
    for router in ["hash", "range"] {
        if let Some(c) = cells
            .iter()
            .find(|c| c.router == router && c.shards == widest)
        {
            println!(
                "{router} @ {} shards: sync calls/shard {:?}",
                c.shards, c.run.sync_calls_per_shard
            );
        }
    }
    println!(
        "(the tradeoff bought by scan locality: zipf traffic is adjacent-key\n\
         traffic, so range routing funnels it into one shard's grace-period\n\
         domain while hash routing spreads it)\n"
    );
}

fn skew_cell_json(c: &ForestSkewCell) -> String {
    let vec_u64 = |v: &[u64]| {
        v.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let occupancy = c
        .run
        .occupancy
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"flavor\": \"{}\", \"router\": \"{}\", \"shards\": {}, \"key_dist\": \"{}\", \
         \"contains_pct\": {}, \"threads\": {}, \"ops_per_s\": {}, \
         \"sync_calls_per_shard\": [{}], \"occupancy\": [{}]}}",
        benchjson::esc(c.flavor),
        benchjson::esc(c.router),
        c.shards,
        benchjson::esc(&c.key_dist),
        c.contains_pct,
        c.threads,
        benchjson::num(c.run.ops_per_s),
        vec_u64(&c.run.sync_calls_per_shard),
        occupancy
    )
}

fn main() {
    banner("Forest shard sweep — per-shard RCU/EBR grace-period domains");
    let cfg = config_from_env_and_args();
    let shards: Vec<usize> = cfg.shards.iter().map(|&n| n.next_power_of_two()).collect();
    let cells = forest_sweep(&cfg);

    for contains_pct in [50u32, 0] {
        for router in ["hash", "range"] {
            print_grid(&cells, contains_pct, router, &shards);
        }
    }

    let scan_cells = forest_scan_sweep(&cfg);
    let mut spans: Vec<u64> = scan_cells.iter().map(|c| c.span).collect();
    spans.sort_unstable();
    spans.dedup();
    for router in ["hash", "range"] {
        for &span in &spans {
            print_scan_grid(&scan_cells, router, span, &shards);
        }
    }

    let skew_cells = forest_skew_sweep(&cfg);
    print_skew_grid(&skew_cells, &shards);

    let mut body = String::new();
    let _ = write!(
        body,
        "{{\n  \"bench\": \"forest\",\n  \"title\": \"CitrusForest shard sweep, key range [0,{}]\",\n  \
         \"notes\": \"{}\",\n  \"cells\": [",
        cfg.range_small,
        benchjson::esc(ALIGNMENT_NOTE)
    );
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            body,
            "{}\n    {}",
            if i == 0 { "" } else { "," },
            cell_json(c)
        );
    }
    body.push_str("\n  ],\n  \"scan_cells\": [");
    for (i, c) in scan_cells.iter().enumerate() {
        let _ = write!(
            body,
            "{}\n    {}",
            if i == 0 { "" } else { "," },
            scan_cell_json(c)
        );
    }
    body.push_str("\n  ],\n  \"skew_cells\": [");
    for (i, c) in skew_cells.iter().enumerate() {
        let _ = write!(
            body,
            "{}\n    {}",
            if i == 0 { "" } else { "," },
            skew_cell_json(c)
        );
    }
    body.push_str("\n  ]\n}\n");
    match benchjson::write("forest", &body) {
        Ok(path) => println!("(bench json: {})", path.display()),
        Err(e) => eprintln!("(bench json write failed: {e})"),
    }
}
