//! Forest shard sweep (beyond-paper): quantifies what breaking
//! grace-period serialization buys.
//!
//! A single Citrus tree funnels every two-child delete's
//! `synchronize_rcu` through one RCU domain; a [`CitrusForest`] gives each
//! key shard a private domain, so grace periods in one shard never wait on
//! readers or updaters of another. This sweep measures throughput over
//! `shards ∈ CITRUS_SHARDS (default 1,2,4,8) × update ratio {50%, 100%} ×
//! RCU flavor {scalable, global-lock} × unlink mode {inline, deferred}`
//! at the configured maximum thread count, and persists the grid —
//! including per-shard `synchronize_rcu` and grace-period counters, the
//! direct evidence of shard-local grace periods — to `BENCH_forest.json`.
//! The deferred axis takes the grace-period wait off the delete path
//! entirely (per-shard `call_rcu` batches, DESIGN.md §6g).
//!
//! A second grid measures whole-forest validated `range_scan` throughput
//! per shard count (`scan_cells` in the JSON): hash routing makes point
//! operations shard-local, but an ordered read must fan out to every
//! shard and validate all the per-shard traversals together, so its
//! throughput is expected to fall as shards grow — the documented cost
//! model of DESIGN.md §6i.
//!
//! Flags: `--shards N[,M,...]` overrides the shard sweep, `--metrics` is
//! accepted for uniformity with the fig binaries.
//!
//! [`CitrusForest`]: citrus::CitrusForest

use citrus_bench::{banner, benchjson, config_from_env_and_args};
use citrus_harness::experiments::{forest_scan_sweep, forest_sweep};
use citrus_harness::{ForestCell, ForestScanCell};
use std::fmt::Write as _;

/// Satellite record: the `Node` hot-head cache-alignment change that rode
/// along with the forest (fig8, scalable flavor, 8 threads, range
/// [0,20000], 1 physical core). Alignment doubles the `u64`-node footprint
/// (72 → 128 bytes), which on a single core costs cache capacity with no
/// false-sharing to win back; the layout pays off only with true
/// multi-core lock traffic. Recorded per the measurement box so the
/// trade-off is explicit.
const ALIGNMENT_NOTE: &str = "node hot-head cache alignment (repr(C, align(64))): \
     fig8 scalable flavor at 8 threads on a 1-core host went 3.35e6 -> 2.64e6 ops/s \
     (node size 72 -> 128 bytes; single-core capacity cost, multi-core false-sharing win). \
     Measurement host caveat: 1 hardware thread, so grace periods in one shard already \
     overlap other threads' work via yield; the committed sweep shows the shard trend \
     but understates the multi-core speedup, where a stalled synchronize_rcu would \
     otherwise idle whole cores. The same caveat applies to the deferred rows: an \
     inline synchronize_rcu blocks one thread while the other seven fill the core, so \
     its aggregate cost here is near zero and deferred unlinking can only show its \
     bookkeeping overhead (one heap record per two-child delete, two locks frozen \
     until the batch flushes) -- the rows land within ~10% of inline, with \
     grace_periods_per_shard collapsed ~50x as the mechanism evidence. The isolated \
     retire path (BENCH_rcu_micro.json, retire cells) shows the win the forest mix \
     dilutes: deferred beats inline-synchronize retirement ~4x at every updater count \
     even on this host.";

fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn print_grid(cells: &[ForestCell], contains_pct: u32, shards: &[usize]) {
    let threads = cells.first().map_or(0, |c| c.threads);
    println!(
        "== {}% contains / {}% updates, {} threads ==",
        contains_pct,
        100 - contains_pct,
        threads
    );
    print!("{:<22}", "flavor \\ shards");
    for s in shards {
        print!("{s:>10}");
    }
    println!();
    for flavor in ["rcu-scalable", "rcu-global-lock"] {
        for deferred in [false, true] {
            let label = format!(
                "{flavor} [{}]",
                if deferred { "deferred" } else { "inline" }
            );
            print!("{label:<22}");
            for &s in shards {
                let cell = cells.iter().find(|c| {
                    c.flavor == flavor
                        && c.shards == s
                        && c.contains_pct == contains_pct
                        && c.deferred == deferred
                });
                match cell {
                    Some(c) => print!("{:>10}", fmt_ops(c.run.ops_per_s)),
                    None => print!("{:>10}", "-"),
                }
            }
            println!();
        }
    }
    // Per-shard synchronize calls at the widest sweep point: all-zero
    // tails would mean grace periods are not actually spreading (and
    // deferred mode must show near-zero inline synchronize calls).
    for deferred in [false, true] {
        if let Some(c) = cells.iter().find(|c| {
            c.flavor == "rcu-scalable"
                && c.contains_pct == contains_pct
                && c.deferred == deferred
                && c.shards == shards.iter().copied().max().unwrap_or(1)
        }) {
            println!(
                "scalable [{}] @ {} shards: sync calls/shard {:?}, grace periods/shard {:?}",
                if deferred { "deferred" } else { "inline" },
                c.shards,
                c.run.sync_calls_per_shard,
                c.run.grace_periods_per_shard
            );
        }
    }
    println!();
}

fn cell_json(c: &ForestCell) -> String {
    let vec_u64 = |v: &[u64]| {
        v.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let occupancy = c
        .run
        .occupancy
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"flavor\": \"{}\", \"shards\": {}, \"contains_pct\": {}, \"threads\": {}, \
         \"deferred\": {}, \"ops_per_s\": {}, \"sync_calls_per_shard\": [{}], \
         \"grace_periods_per_shard\": [{}], \"occupancy\": [{}]}}",
        benchjson::esc(c.flavor),
        c.shards,
        c.contains_pct,
        c.threads,
        c.deferred,
        benchjson::num(c.run.ops_per_s),
        vec_u64(&c.run.sync_calls_per_shard),
        vec_u64(&c.run.grace_periods_per_shard),
        occupancy
    )
}

fn print_scan_grid(cells: &[ForestScanCell], shards: &[usize]) {
    let (scanners, updaters, span) = cells
        .first()
        .map_or((0, 0, 0), |c| (c.scanners, c.updaters, c.span));
    println!(
        "== whole-forest range scans, {scanners} scanners vs {updaters} updaters, span {span} =="
    );
    print!("{:<22}", "flavor \\ shards");
    for s in shards {
        print!("{s:>10}");
    }
    println!();
    for flavor in ["rcu-scalable", "rcu-global-lock"] {
        print!("{flavor:<22}");
        for &s in shards {
            match cells.iter().find(|c| c.flavor == flavor && c.shards == s) {
                Some(c) => print!("{:>10}", fmt_ops(c.scans_per_s)),
                None => print!("{:>10}", "-"),
            }
        }
        println!();
    }
    println!(
        "(expected: scans/s falls with shard count — every scan must fan out to\n\
         all shards and validate them together, the price of hash routing for\n\
         ordered reads; point ops in the grid above pay no such tax)\n"
    );
}

fn scan_cell_json(c: &ForestScanCell) -> String {
    format!(
        "{{\"flavor\": \"{}\", \"shards\": {}, \"scanners\": {}, \"updaters\": {}, \
         \"span\": {}, \"scans_per_s\": {}, \"restarts\": {}}}",
        benchjson::esc(c.flavor),
        c.shards,
        c.scanners,
        c.updaters,
        c.span,
        benchjson::num(c.scans_per_s),
        c.restarts
    )
}

fn main() {
    banner("Forest shard sweep — per-shard RCU/EBR grace-period domains");
    let cfg = config_from_env_and_args();
    let shards: Vec<usize> = cfg.shards.iter().map(|&n| n.next_power_of_two()).collect();
    let cells = forest_sweep(&cfg);

    for contains_pct in [50u32, 0] {
        print_grid(&cells, contains_pct, &shards);
    }

    let scan_cells = forest_scan_sweep(&cfg);
    print_scan_grid(&scan_cells, &shards);

    let mut body = String::new();
    let _ = write!(
        body,
        "{{\n  \"bench\": \"forest\",\n  \"title\": \"CitrusForest shard sweep, key range [0,{}]\",\n  \
         \"notes\": \"{}\",\n  \"cells\": [",
        cfg.range_small,
        benchjson::esc(ALIGNMENT_NOTE)
    );
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            body,
            "{}\n    {}",
            if i == 0 { "" } else { "," },
            cell_json(c)
        );
    }
    body.push_str("\n  ],\n  \"scan_cells\": [");
    for (i, c) in scan_cells.iter().enumerate() {
        let _ = write!(
            body,
            "{}\n    {}",
            if i == 0 { "" } else { "," },
            scan_cell_json(c)
        );
    }
    body.push_str("\n  ]\n}\n");
    match benchjson::write("forest", &body) {
        Ok(path) => println!("(bench json: {})", path.display()),
        Err(e) => eprintln!("(bench json write failed: {e})"),
    }
}
