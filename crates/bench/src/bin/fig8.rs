//! Regenerates **Figure 8**: impact of concurrent updates on the standard
//! (global-lock) RCU implementation vs. the paper's scalable one, under
//! Citrus with 50% contains on the small key range.

use citrus_bench::{banner, config_from_env_and_args, emit};
use citrus_harness::experiments;

fn main() {
    banner("Figure 8 — Citrus over standard vs scalable RCU");
    let cfg = config_from_env_and_args();
    let report = experiments::fig8(&cfg);
    emit(&report, "fig8");
    println!(
        "expected shape: the standard-RCU line collapses as update threads grow;\n\
         the scalable-RCU line does not (paper: Fig. 8)."
    );
}
