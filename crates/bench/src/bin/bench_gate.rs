//! CI bench-regression gate: compares a freshly generated `BENCH_*.json`
//! against the committed baseline and fails on throughput regressions.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--threshold PCT]
//! ```
//!
//! Rows are matched structurally (see `citrus_bench::gate`); a matched
//! row fails when a throughput metric drops more than the threshold
//! (default 30%, override with `--threshold` or `CITRUS_BENCH_GATE_PCT`)
//! below its baseline. Exit status: 0 pass, 1 regression, 2 usage or
//! parse error.
//!
//! The threshold is deliberately loose: CI runners are noisy and the
//! smoke runs are short, so the gate is a tripwire for order-of-magnitude
//! collapses (a serialized grace period back on the hot path), not a
//! micro-benchmark referee.

use citrus_bench::{benchjson, gate};

fn fail_usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: bench_gate <baseline.json> <fresh.json> [--threshold PCT]");
    std::process::exit(2);
}

fn load(path: &str) -> benchjson::Json {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail_usage(&format!("cannot read {path}: {e}")),
    };
    match benchjson::parse(&text) {
        Ok(doc) => doc,
        Err(e) => fail_usage(&format!("cannot parse {path}: {e}")),
    }
}

fn main() {
    let mut threshold = match std::env::var("CITRUS_BENCH_GATE_PCT") {
        Ok(raw) => match raw.trim().parse() {
            Ok(pct) => pct,
            Err(_) => fail_usage(&format!(
                "invalid CITRUS_BENCH_GATE_PCT={raw:?}: expected a numeric percentage"
            )),
        },
        Err(std::env::VarError::NotPresent) => gate::DEFAULT_MAX_DROP_PCT,
        Err(e) => fail_usage(&format!("invalid CITRUS_BENCH_GATE_PCT: {e}")),
    };
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => match args.next().and_then(|v| v.parse().ok()) {
                Some(pct) => threshold = pct,
                None => fail_usage("--threshold requires a numeric percentage"),
            },
            other => {
                if let Some(value) = other.strip_prefix("--threshold=") {
                    match value.parse() {
                        Ok(pct) => threshold = pct,
                        Err(_) => fail_usage("--threshold requires a numeric percentage"),
                    }
                } else if other.starts_with("--") {
                    fail_usage(&format!("unknown flag `{other}`"));
                } else {
                    paths.push(other.to_string());
                }
            }
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        fail_usage("expected exactly two file arguments");
    };
    if !(0.0..100.0).contains(&threshold) {
        fail_usage(&format!("threshold {threshold} out of range [0, 100)"));
    }

    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    let report = gate::check(&baseline, &fresh, threshold);

    println!(
        "bench gate: {} metric(s) compared against {baseline_path} (threshold {threshold}%)",
        report.compared
    );
    for row in &report.missing {
        println!("  note: baseline row has no fresh counterpart: {row}");
    }
    if report.compared == 0 {
        // An empty comparison would make the gate vacuous — treat a
        // baseline/fresh pair with no matching rows as a wiring error.
        eprintln!("bench gate: no rows matched between the two documents");
        std::process::exit(1);
    }
    if report.passed() {
        println!("bench gate: PASS");
    } else {
        for r in &report.regressions {
            eprintln!("  REGRESSION: {r}");
        }
        eprintln!(
            "bench gate: FAIL ({} regression(s))",
            report.regressions.len()
        );
        std::process::exit(1);
    }
}
