//! Ablation benches for the design decisions called out in DESIGN.md:
//!
//! * **D1** — per-node lock choice: our one-byte spin-then-yield lock vs
//!   `std::sync::Mutex` (acquire/release cost, uncontended).
//! * **D2** — scalable-RCU reader word: single packed word + fence vs two
//!   separate stores + fence.
//! * **D3** — reclamation: Citrus in `Leak` mode (paper methodology) vs
//!   `Epoch` mode (EBR) under the 50%-contains workload.
//! * **D5** — grace-period sharing: concurrent `synchronize_rcu` callers
//!   piggybacking on a peer's grace period vs every caller scanning for
//!   itself (`CITRUS_RCU_NO_SHARING`), per RCU flavor.

use citrus_bench::synchronize_storm;
use citrus_harness::{runner, Algo, BenchConfig, OpMix, WorkloadSpec};
use citrus_rcu::{GlobalLockRcu, RcuFlavor, ScalableRcu};
use citrus_sync::RawSpinLock;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn bench_ns(label: &str, iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("  {label:<42} {ns:>8.1} ns/op");
    ns
}

fn main() {
    println!("=== Ablations ===\n");

    println!("D1 — per-node lock (uncontended lock+unlock):");
    let spin = RawSpinLock::new();
    bench_ns("citrus-sync RawSpinLock", 2_000_000, || {
        spin.lock();
        // SAFETY: just acquired above.
        unsafe { spin.unlock() };
    });
    let std_mutex = std::sync::Mutex::new(());
    bench_ns("std::sync::Mutex", 2_000_000, || {
        drop(std_mutex.lock().unwrap());
    });
    println!(
        "  (size: RawSpinLock = {} B, std::sync::Mutex<()> = {} B per node)\n",
        core::mem::size_of::<RawSpinLock>(),
        core::mem::size_of::<std::sync::Mutex<()>>()
    );

    println!("D2 — scalable-RCU reader fast path:");
    // Box the atomics and black_box the references so the stores cannot be
    // proven non-escaping and elided.
    let word = Box::new(AtomicU64::new(0));
    let word = std::hint::black_box(&*word);
    bench_ns(
        "packed (counter|flag) word + SeqCst fence",
        2_000_000,
        || {
            let w = word.load(Ordering::Relaxed);
            word.store(w.wrapping_add(2) | 1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            word.store(w & !1, Ordering::Release);
        },
    );
    let counter = Box::new(AtomicU64::new(0));
    let counter = std::hint::black_box(&*counter);
    let flag = Box::new(AtomicU64::new(0));
    let flag = std::hint::black_box(&*flag);
    bench_ns("separate counter + flag + SeqCst fence", 2_000_000, || {
        let c = counter.load(Ordering::Relaxed);
        counter.store(c.wrapping_add(1), Ordering::Relaxed);
        flag.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        flag.store(0, Ordering::Release);
    });
    println!();

    println!("D3 — reclamation mode under 50% contains:");
    let cfg = BenchConfig::from_env();
    let spec = WorkloadSpec::new(
        cfg.range_small,
        OpMix::with_contains(50),
        *cfg.threads.last().unwrap_or(&4),
        cfg.duration,
    );
    for algo in [Algo::Citrus, Algo::CitrusEbr] {
        let tp = runner::run_algo(algo, &spec, cfg.reps, 0xAB1A);
        println!("  {:<42} {:>10.0} ops/s", algo.label(), tp);
    }
    println!(
        "\nexpected: Leak (paper methodology) modestly above Epoch — EBR's pin/\n\
         retire bookkeeping is the price of bounded memory.\n"
    );

    println!("D5 — grace-period sharing (4 concurrent synchronizers, 2 readers):");
    let dur = Duration::from_millis(match std::env::var("CITRUS_DURATION_MS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_DURATION_MS={raw:?}: {e} (expected milliseconds)")
        }),
        Err(std::env::VarError::NotPresent) => 200,
        Err(e) => panic!("invalid CITRUS_DURATION_MS: {e}"),
    });
    fn d5_row<F: RcuFlavor>(label: &str, rcu: &F, dur: Duration) {
        let cell = synchronize_storm(rcu, 4, 2, dur);
        println!(
            "  {label:<42} {:>10.0} sync/s  ({} piggybacked, {} full GPs)",
            cell.per_sec, cell.piggybacks, cell.grace_periods
        );
    }
    d5_row("scalable, shared", &ScalableRcu::with_sharing(true), dur);
    d5_row("scalable, unshared", &ScalableRcu::with_sharing(false), dur);
    d5_row(
        "global-lock, shared",
        &GlobalLockRcu::with_sharing(true),
        dur,
    );
    d5_row(
        "global-lock, unshared",
        &GlobalLockRcu::with_sharing(false),
        dur,
    );
    println!(
        "\nexpected: shared above unshared — queued synchronizers return on a\n\
         peer's grace period instead of scanning for themselves (DESIGN.md §6d)."
    );
}
