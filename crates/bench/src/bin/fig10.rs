//! Regenerates **Figure 10**: the 2×3 grid — key range {small, large} ×
//! contains {100%, 98%, 50%} — for all six algorithms.

use citrus_bench::{banner, config_from_env_and_args, emit};
use citrus_harness::experiments;

fn main() {
    banner("Figure 10 — operation-mix grid");
    let cfg = config_from_env_and_args();
    for (i, report) in experiments::fig10(&cfg).iter().enumerate() {
        emit(report, &format!("fig10_panel{i}"));
    }
    println!(
        "expected shapes: 100% contains favors the RCU trees (Red-Black, Bonsai);\n\
         at 98% they already stop scaling (global update lock); at 50% Citrus pays\n\
         for synchronize_rcu but stays with the best dictionaries (paper: Fig. 10)."
    );
}
