//! Regenerates **Figure 9**: the single-writer workload (one thread doing
//! 50% insert / 50% delete, all others 100% contains) for all six
//! algorithms, on both key ranges.

use citrus_bench::{banner, config_from_env_and_args, emit};
use citrus_harness::experiments;

fn main() {
    banner("Figure 9 — single-writer workload");
    let cfg = config_from_env_and_args();
    for (i, report) in experiments::fig9(&cfg).iter().enumerate() {
        emit(report, &format!("fig9_panel{i}"));
    }
    println!(
        "expected shape: designed to favor the RCU trees; Red-Black competitive,\n\
         Bonsai poor (path-copying cost), Citrus/AVL/Skiplist/Lock-Free close\n\
         (paper: Fig. 9)."
    );
}
