//! RCU micro-benchmarks (beyond-paper): quantifies the *mechanism* behind
//! Figure 8 directly —
//!
//! 1. read-side cost (`rcu_read_lock` + `rcu_read_unlock`) per flavor;
//! 2. `synchronize_rcu` completion rate as the number of *concurrent*
//!    synchronizers grows, with a reader population in the background.
//!
//! The global-lock flavor's synchronize rate should flatten (callers
//! serialize); the scalable flavor's aggregate rate should not.

use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

fn read_side_cost<F: RcuFlavor>() -> f64 {
    let rcu = F::new();
    let h = rcu.register();
    const ITERS: u32 = 2_000_000;
    let start = Instant::now();
    for _ in 0..ITERS {
        let g = h.read_lock();
        std::hint::black_box(&g);
        drop(g);
    }
    start.elapsed().as_nanos() as f64 / f64::from(ITERS)
}

/// Aggregate `synchronize_rcu` completions/s with `syncers` concurrent
/// synchronizing threads and two background readers.
fn synchronize_rate<F: RcuFlavor>(syncers: usize, dur: Duration) -> f64 {
    let rcu = F::new();
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let barrier = Barrier::new(syncers + 3);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let (rcu, stop, barrier) = (&rcu, &stop, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let _g = h.read_lock();
                    std::hint::spin_loop();
                }
            });
        }
        for _ in 0..syncers {
            let (rcu, stop, total, barrier) = (&rcu, &stop, &total, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                let mut n = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    h.synchronize();
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        barrier.wait();
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / dur.as_secs_f64()
}

fn main() {
    println!("=== RCU micro-benchmarks ===\n");
    println!("read-side critical section cost (lock+unlock, ns/pair):");
    println!(
        "  {:<18} {:>8.1}",
        ScalableRcu::NAME,
        read_side_cost::<ScalableRcu>()
    );
    println!(
        "  {:<18} {:>8.1}",
        GlobalLockRcu::NAME,
        read_side_cost::<GlobalLockRcu>()
    );

    let dur = Duration::from_millis(
        std::env::var("CITRUS_DURATION_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200),
    );
    println!("\nsynchronize_rcu aggregate completions/s (2 background readers):");
    println!("{:<20}{:>12}{:>12}{:>12}", "flavor \\ syncers", 1, 2, 4);
    for (name, rates) in [
        (
            ScalableRcu::NAME,
            [1, 2, 4].map(|n| synchronize_rate::<ScalableRcu>(n, dur)),
        ),
        (
            GlobalLockRcu::NAME,
            [1, 2, 4].map(|n| synchronize_rate::<GlobalLockRcu>(n, dur)),
        ),
    ] {
        println!(
            "{:<20}{:>12.0}{:>12.0}{:>12.0}",
            name, rates[0], rates[1], rates[2]
        );
    }
    println!(
        "\nexpected: the global-lock flavor's rate stays flat or degrades with\n\
         more synchronizers (they serialize); the scalable flavor's aggregate\n\
         rate grows — the mechanism behind Fig. 8."
    );
}
