//! RCU micro-benchmarks (beyond-paper): quantifies the *mechanism* behind
//! Figure 8 directly —
//!
//! 1. read-side cost (`rcu_read_lock` + `rcu_read_unlock`) per flavor;
//! 2. `synchronize_rcu` storm: aggregate completion rate as the number of
//!    *concurrent* synchronizers grows (up to 8), per flavor, with
//!    grace-period sharing on and off, plus the piggyback counts that
//!    explain the difference;
//! 3. retire throughput, deferred vs inline: threads retiring heap
//!    objects either pay `synchronize_rcu` per object (the tree's old
//!    delete hot path) or enqueue on a `call_rcu` batch queue whose
//!    worker amortizes one grace period over the whole batch
//!    (DESIGN.md §6g). The clock includes the final drain, so every
//!    counted retirement was actually freed;
//! 4. validated range-scan storm: linearizable `range_scan` throughput on
//!    a Citrus tree as updater churn grows, with the validation-restart
//!    counts that price the guarantee (DESIGN.md §6i).
//!
//! The global-lock flavor's synchronize rate should flatten (callers
//! serialize); the scalable flavor's aggregate rate should not — and with
//! sharing on, queued callers increasingly return on a peer's grace
//! period instead of scanning themselves. Deferred retirement should beat
//! inline by orders of magnitude on both flavors: the batch queue turns a
//! grace period per object into a grace period per ~batch.
//!
//! Results are persisted to `BENCH_rcu_micro.json` (see
//! `citrus_bench::benchjson`). Set `CITRUS_STORM_REQUIRE_PIGGYBACK=1` to
//! make the run fail unless the widest sharing-on cell of each flavor
//! piggybacked at least once (used as a CI smoke assertion).

use citrus_bench::{
    benchjson, retire_storm, scan_storm, synchronize_storm, RetireCell, ScanCell, StormCell,
};
use citrus_rcu::{GlobalLockRcu, RcuFlavor, RcuHandle, ScalableRcu};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SYNCERS: [usize; 4] = [1, 2, 4, 8];
const READERS: usize = 2;
const RETIRE_UPDATERS: [usize; 2] = [1, 4];
const SCANNERS: usize = 2;
const SCAN_UPDATERS: [usize; 3] = [0, 1, 4];
const SCAN_KEY_RANGE: u64 = 20_000;
const SCAN_SPAN: u64 = 256;

fn read_side_cost<F: RcuFlavor>() -> f64 {
    let rcu = F::new();
    let h = rcu.register();
    const ITERS: u32 = 2_000_000;
    let start = Instant::now();
    for _ in 0..ITERS {
        let g = h.read_lock();
        std::hint::black_box(&g);
        drop(g);
    }
    start.elapsed().as_nanos() as f64 / f64::from(ITERS)
}

/// One storm row: a fresh domain per cell so piggyback/grace-period
/// deltas are per-cell and earlier cells can't warm later ones.
fn storm_row<F: RcuFlavor, M: Fn() -> F>(make: M, dur: Duration) -> Vec<StormCell> {
    SYNCERS
        .iter()
        .map(|&n| synchronize_storm(&make(), n, READERS, dur))
        .collect()
}

fn print_row(label: &str, cells: &[StormCell]) {
    print!("{label:<28}");
    for c in cells {
        print!("{:>14.0}", c.per_sec);
    }
    print!("   piggybacks:");
    for c in cells {
        print!(" {}", c.piggybacks);
    }
    println!();
}

/// One retire row: fresh domain (and `CallRcu` queue) per cell, like
/// [`storm_row`].
fn retire_row<F: RcuFlavor>(deferred: bool, dur: Duration) -> Vec<RetireCell> {
    RETIRE_UPDATERS
        .iter()
        .map(|&n| retire_storm(&Arc::new(F::new()), deferred, n, READERS, dur))
        .collect()
}

fn print_retire_row(label: &str, cells: &[RetireCell]) {
    print!("{label:<28}");
    for c in cells {
        print!("{:>14.0}", c.retires_per_s);
    }
    print!("   grace periods:");
    for c in cells {
        print!(" {}", c.grace_periods);
    }
    println!();
}

fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(raw) => match raw.trim() {
            "1" | "true" | "yes" => true,
            "" | "0" | "false" | "no" => false,
            other => panic!("invalid {name}={other:?}: expected 1/true/yes or 0/false/no"),
        },
        Err(std::env::VarError::NotPresent) => false,
        Err(e) => panic!("invalid {name}: {e}"),
    }
}

fn env_duration_ms(default: u64) -> Duration {
    Duration::from_millis(match std::env::var("CITRUS_DURATION_MS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid CITRUS_DURATION_MS={raw:?}: {e} (expected milliseconds)")
        }),
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("invalid CITRUS_DURATION_MS: {e}"),
    })
}

fn main() {
    println!("=== RCU micro-benchmarks ===\n");
    println!("read-side critical section cost (lock+unlock, ns/pair):");
    let read_scalable = read_side_cost::<ScalableRcu>();
    let read_global = read_side_cost::<GlobalLockRcu>();
    println!("  {:<18} {read_scalable:>8.1}", ScalableRcu::NAME);
    println!("  {:<18} {read_global:>8.1}", GlobalLockRcu::NAME);

    let dur = env_duration_ms(200);
    println!(
        "\nsynchronize_rcu storm: aggregate completions/s ({READERS} background \
         readers, {dur:?}/cell):"
    );
    print!("{:<28}", "flavor / sharing \\ syncers");
    for n in SYNCERS {
        print!("{n:>14}");
    }
    println!();

    let rows: Vec<(&str, bool, Vec<StormCell>)> = vec![
        (
            ScalableRcu::NAME,
            true,
            storm_row(|| ScalableRcu::with_sharing(true), dur),
        ),
        (
            ScalableRcu::NAME,
            false,
            storm_row(|| ScalableRcu::with_sharing(false), dur),
        ),
        (
            GlobalLockRcu::NAME,
            true,
            storm_row(|| GlobalLockRcu::with_sharing(true), dur),
        ),
        (
            GlobalLockRcu::NAME,
            false,
            storm_row(|| GlobalLockRcu::with_sharing(false), dur),
        ),
    ];
    for (name, sharing, cells) in &rows {
        let label = format!("{name} ({})", if *sharing { "shared" } else { "unshared" });
        print_row(&label, cells);
    }
    println!(
        "\nexpected: the global-lock flavor's rate stays flat or degrades with\n\
         more synchronizers (they serialize); the scalable flavor's aggregate\n\
         rate grows — the mechanism behind Fig. 8. With sharing on, queued\n\
         synchronizers piggyback on a peer's grace period (DESIGN.md §6d)."
    );

    println!(
        "\nretire throughput: objects retired and freed/s ({READERS} background \
         readers, {dur:?}/cell):"
    );
    print!("{:<28}", "flavor / mode \\ updaters");
    for n in RETIRE_UPDATERS {
        print!("{n:>14}");
    }
    println!();
    let retire_rows: Vec<(&str, bool, Vec<RetireCell>)> = vec![
        (
            ScalableRcu::NAME,
            false,
            retire_row::<ScalableRcu>(false, dur),
        ),
        (
            ScalableRcu::NAME,
            true,
            retire_row::<ScalableRcu>(true, dur),
        ),
        (
            GlobalLockRcu::NAME,
            false,
            retire_row::<GlobalLockRcu>(false, dur),
        ),
        (
            GlobalLockRcu::NAME,
            true,
            retire_row::<GlobalLockRcu>(true, dur),
        ),
    ];
    for (name, deferred, cells) in &retire_rows {
        let label = format!("{name} ({})", if *deferred { "deferred" } else { "inline" });
        print_retire_row(&label, cells);
    }
    println!(
        "\nexpected: deferred retirement beats inline by orders of magnitude on\n\
         both flavors — the call_rcu queue amortizes one grace period over a\n\
         whole batch instead of paying one per object (DESIGN.md §6g)."
    );

    println!(
        "\nvalidated range scans: scans/s ({SCANNERS} scanners, span {SCAN_SPAN} of \
         [0,{SCAN_KEY_RANGE}], {dur:?}/cell):"
    );
    print!("{:<28}", "flavor \\ updaters");
    for n in SCAN_UPDATERS {
        print!("{n:>14}");
    }
    println!();
    let scan_rows: Vec<(&str, Vec<ScanCell>)> = vec![
        (
            ScalableRcu::NAME,
            SCAN_UPDATERS
                .iter()
                .map(|&u| scan_storm::<ScalableRcu>(SCANNERS, u, SCAN_KEY_RANGE, SCAN_SPAN, dur))
                .collect(),
        ),
        (
            GlobalLockRcu::NAME,
            SCAN_UPDATERS
                .iter()
                .map(|&u| scan_storm::<GlobalLockRcu>(SCANNERS, u, SCAN_KEY_RANGE, SCAN_SPAN, dur))
                .collect(),
        ),
    ];
    for (name, cells) in &scan_rows {
        print!("{name:<28}");
        for c in cells {
            print!("{:>14.0}", c.scans_per_s);
        }
        print!("   restarts:");
        for c in cells {
            print!(" {}", c.restarts);
        }
        println!();
    }
    println!(
        "\nexpected: scan throughput dips as updater churn grows — each edge\n\
         the traversal recorded must still be intact at collection end, so\n\
         interfering writers force restarts (the restart counts above) but\n\
         never a torn result (DESIGN.md §6i)."
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"rcu_micro\",\n  \"read_side_ns\": {{\"{}\": {}, \"{}\": {}}},\n  \
         \"storm\": {{\n    \"duration_ms\": {},\n    \"readers\": {READERS},\n    \"cells\": [",
        benchjson::esc(ScalableRcu::NAME),
        benchjson::num(read_scalable),
        benchjson::esc(GlobalLockRcu::NAME),
        benchjson::num(read_global),
        dur.as_millis(),
    );
    let mut first = true;
    for (name, sharing, cells) in &rows {
        for c in cells {
            let _ = write!(
                json,
                "{}\n      {{\"flavor\": \"{}\", \"sharing\": {sharing}, \"syncers\": {}, \
                 \"synchronize_per_s\": {}, \"piggybacks\": {}, \"grace_periods\": {}}}",
                if first { "" } else { "," },
                benchjson::esc(name),
                c.syncers,
                benchjson::num(c.per_sec),
                c.piggybacks,
                c.grace_periods,
            );
            first = false;
        }
    }
    json.push_str("\n    ]\n  },\n");
    let _ = write!(
        json,
        "  \"retire\": {{\n    \"duration_ms\": {},\n    \"readers\": {READERS},\n    \"cells\": [",
        dur.as_millis(),
    );
    let mut first = true;
    for (name, deferred, cells) in &retire_rows {
        for c in cells {
            let _ = write!(
                json,
                "{}\n      {{\"flavor\": \"{}\", \"deferred\": {deferred}, \"updaters\": {}, \
                 \"retires_per_s\": {}, \"grace_periods\": {}}}",
                if first { "" } else { "," },
                benchjson::esc(name),
                c.updaters,
                benchjson::num(c.retires_per_s),
                c.grace_periods,
            );
            first = false;
        }
    }
    json.push_str("\n    ]\n  },\n");
    let _ = write!(
        json,
        "  \"scan\": {{\n    \"duration_ms\": {},\n    \"scanners\": {SCANNERS},\n    \
         \"key_range\": {SCAN_KEY_RANGE},\n    \"cells\": [",
        dur.as_millis(),
    );
    let mut first = true;
    for (name, cells) in &scan_rows {
        for c in cells {
            let _ = write!(
                json,
                "{}\n      {{\"flavor\": \"{}\", \"updaters\": {}, \"span\": {}, \
                 \"scans_per_s\": {}, \"entries_per_scan\": {}, \"restarts\": {}}}",
                if first { "" } else { "," },
                benchjson::esc(name),
                c.updaters,
                c.span,
                benchjson::num(c.scans_per_s),
                benchjson::num(c.entries_per_scan),
                c.restarts,
            );
            first = false;
        }
    }
    json.push_str("\n    ]\n  }\n}\n");
    match benchjson::write("rcu_micro", &json) {
        Ok(path) => println!("\n(bench json: {})", path.display()),
        Err(e) => eprintln!("\n(bench json write failed: {e})"),
    }

    if env_flag("CITRUS_STORM_REQUIRE_PIGGYBACK") {
        for (name, sharing, cells) in &rows {
            let widest = cells.last().expect("storm rows are non-empty");
            if *sharing && widest.piggybacks == 0 {
                eprintln!(
                    "CITRUS_STORM_REQUIRE_PIGGYBACK: {name} ran {} syncers with \
                     sharing on but recorded no piggybacked synchronize calls",
                    widest.syncers
                );
                std::process::exit(1);
            }
        }
        println!("(piggyback smoke check passed: every sharing-on flavor piggybacked)");
    }
}
