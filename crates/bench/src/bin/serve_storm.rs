//! Closed-loop load generator for the `citrus-serve` front end: seeded
//! paced clients driving a mixed point/scan workload at a controlled
//! aggregate request rate, reporting client-perceived latency percentiles
//! per op class from the server's `citrus-obs` log2 histograms.
//!
//! Two tenant scenarios × two routers:
//!
//! - **routing-table** — one shared table, uniform keys, the read-heavy
//!   [`ServeMix::routing_table`] mix (88/5/5/2 get/insert/remove/scan).
//! - **session-store** — four tenants with disjoint key prefixes
//!   (`tenant << 40 | local`), Zipfian draws *within* each tenant
//!   (`zipf:0.99`, YCSB's default skew), the write-heavier
//!   [`ServeMix::session_store`] mix. Under the range router each tenant
//!   prefix maps to its own shard, so one tenant's hot keys cannot queue
//!   behind another's.
//!
//! Each client paces itself to `CITRUS_SERVE_RPS / CITRUS_SERVE_CLIENTS`
//! requests per second (closed loop: a late response pushes subsequent
//! sends later; the generator never opens unbounded in-flight windows)
//! and honors `retry-after` back-off on admission rejections via the
//! blocking session API. Latencies include queue wait and any back-off —
//! they are what a caller of the server would see.
//!
//! Reported percentiles are log2-bucket upper bounds (power-of-two
//! resolution). Rows persist to `BENCH_serve.json`, identity-keyed by
//! `scenario × op × router × shards × clients × target_rps` for
//! `bench_gate`.

use citrus::{even_splitters, CitrusForest, ReclaimMode};
use citrus_api::testkit::SplitMix64;
use citrus_api::{ConcurrentMap, MapSession, OrderedMapSession};
use citrus_bench::{banner, benchjson, config_from_env_and_args};
use citrus_harness::{KeyDist, KeySampler, ServeMix, ServeOp};
use citrus_serve::{OpClass, ServeConfig, Server};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shards (and drain workers) per server. Fixed so rows keep a stable
/// gate identity across hosts.
const SHARDS: usize = 4;
/// Tenants in the session-store scenario; each owns a `tenant << 40` key
/// prefix.
const TENANTS: u64 = 4;
/// Bits below the tenant prefix.
const TENANT_SHIFT: u32 = 40;
/// Width of each range scan request.
const SCAN_SPAN: u64 = 32;

const NOTES: &str = "closed-loop paced clients at a fixed aggregate RPS; latencies are \
     client-perceived (queue wait + batching + retry-after back-off included) and the \
     percentiles are log2-bucket upper bounds from citrus-obs histograms, so adjacent \
     runs quantize to powers of two. ops_per_s is the achieved per-class rate; at a \
     sustainable target it tracks the mix shares of target_rps, and a large shortfall \
     (or a rejected count exploding) means the host could not hold the target. \
     1-core bench host: thread-per-shard workers and clients all timeshare one CPU, \
     so tail percentiles carry scheduler noise; the gate threshold is sized for that.";

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|e| {
            panic!("invalid {name}={raw:?}: {e} (expected an unsigned integer)")
        }),
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("invalid {name}: {e}"),
    }
}

#[derive(Debug, Clone)]
struct Scenario {
    name: &'static str,
    mix: ServeMix,
    key_dist: KeyDist,
    /// Per-tenant local key range (whole range for routing-table).
    local_range: u64,
    tenants: u64,
}

impl Scenario {
    fn key_space(&self) -> u64 {
        if self.tenants == 1 {
            self.local_range
        } else {
            ((self.tenants - 1) << TENANT_SHIFT) + self.local_range
        }
    }

    /// Draws one key for `client`: tenant prefix (clients are pinned
    /// round-robin to tenants) plus a local draw from the scenario's
    /// distribution.
    fn draw_key(&self, client: usize, sampler: &KeySampler, rng: &mut SplitMix64) -> u64 {
        let local = sampler.sample(rng);
        if self.tenants == 1 {
            local
        } else {
            ((client as u64 % self.tenants) << TENANT_SHIFT) | local
        }
    }
}

#[derive(Debug, Clone)]
struct Row {
    scenario: &'static str,
    op: &'static str,
    router: &'static str,
    key_dist: String,
    clients: usize,
    target_rps: u64,
    ops_per_s: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    rejected: u64,
    retries: u64,
}

fn class_index(class: OpClass) -> usize {
    match class {
        OpClass::Read => 0,
        OpClass::Write => 1,
        OpClass::Scan => 2,
    }
}

fn run_cell(
    scenario: &Scenario,
    router: &'static str,
    clients: usize,
    target_rps: u64,
    duration: Duration,
) -> Vec<Row> {
    let forest: CitrusForest<u64, u64> = match router {
        "hash" => CitrusForest::with_options(SHARDS, 0x5E47E, ReclaimMode::Epoch, false),
        "range" => CitrusForest::with_range_router_options(
            even_splitters(SHARDS, scenario.key_space()),
            ReclaimMode::Epoch,
            false,
        ),
        other => panic!("unknown router {other}"),
    };
    let server = Server::with_config(forest, ServeConfig::from_env());

    // Prefill half of each tenant's local range (uniform, like every
    // other bench: skewed runs start from the same occupancy).
    {
        let mut s = server.session();
        let uniform = KeyDist::Uniform.sampler(scenario.local_range);
        let mut rng = SplitMix64::new(0x5EE1);
        for t in 0..scenario.tenants {
            for _ in 0..scenario.local_range / 2 {
                let k = (t << TENANT_SHIFT) | uniform.sample(&mut rng);
                s.insert(k, k);
            }
        }
    }

    let sampler = scenario.key_dist.sampler(scenario.local_range);
    let interval = Duration::from_nanos(1_000_000_000 * clients as u64 / target_rps.max(1));
    // Per-class completed-request counters, summed over clients.
    let counts: [AtomicU64; 3] = Default::default();
    let retries = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (server, scenario, sampler, counts, retries) =
                (&server, scenario, &sampler, &counts, &retries);
            scope.spawn(move || {
                let mut session = server.session();
                let mut rng = SplitMix64::new(0x10AD_0000 + c as u64);
                let mut local = [0u64; 3];
                let start = Instant::now();
                let mut next_tick = start;
                while start.elapsed() < duration {
                    // Closed-loop pacing: wait for this client's next
                    // send slot; a slow response eats into the budget
                    // instead of piling up in-flight requests.
                    let now = Instant::now();
                    if next_tick > now {
                        std::thread::sleep(next_tick - now);
                    }
                    next_tick += interval;
                    let key = scenario.draw_key(c, sampler, &mut rng);
                    let class = match scenario.mix.pick(rng.below(100) as u32) {
                        ServeOp::Get => {
                            std::hint::black_box(session.get(&key));
                            OpClass::Read
                        }
                        ServeOp::Insert => {
                            std::hint::black_box(session.insert(key, key));
                            OpClass::Write
                        }
                        ServeOp::Remove => {
                            std::hint::black_box(session.remove(&key));
                            OpClass::Write
                        }
                        ServeOp::Scan => {
                            std::hint::black_box(session.range_scan(&key, &(key + SCAN_SPAN)));
                            OpClass::Scan
                        }
                    };
                    local[class_index(class)] += 1;
                }
                for (i, n) in local.into_iter().enumerate() {
                    counts[i].fetch_add(n, Ordering::Relaxed);
                }
                retries.fetch_add(session.rejections(), Ordering::Relaxed);
            });
        }
    });

    let rejected = server.counters().rejected();
    let secs = duration.as_secs_f64();
    let rows = OpClass::ALL
        .map(|class| {
            let snap = server.metrics().latency_snapshot(class);
            Row {
                scenario: scenario.name,
                op: class.label(),
                router,
                key_dist: scenario.key_dist.label(),
                clients,
                target_rps,
                ops_per_s: counts[class_index(class)].load(Ordering::Relaxed) as f64 / secs,
                p50_ns: snap.p50(),
                p99_ns: snap.p99(),
                p999_ns: snap.p999(),
                rejected,
                retries: retries.load(Ordering::Relaxed),
            }
        })
        .to_vec();
    let mut forest = server.into_forest();
    forest
        .validate_structure()
        .expect("forest invariants must hold after the storm");
    rows
}

fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn fmt_ns(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.1}ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}us", v as f64 / 1e3)
    } else {
        format!("{v}ns")
    }
}

fn row_json(r: &Row) -> String {
    format!(
        "{{\"scenario\": \"{}\", \"op\": \"{}\", \"router\": \"{}\", \"key_dist\": \"{}\", \
         \"shards\": {}, \"clients\": {}, \"target_rps\": {}, \"ops_per_s\": {}, \
         \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"rejected\": {}, \"retries\": {}}}",
        benchjson::esc(r.scenario),
        benchjson::esc(r.op),
        benchjson::esc(r.router),
        benchjson::esc(&r.key_dist),
        SHARDS,
        r.clients,
        r.target_rps,
        benchjson::num(r.ops_per_s),
        r.p50_ns,
        r.p99_ns,
        r.p999_ns,
        r.rejected,
        r.retries
    )
}

fn main() {
    banner("citrus-serve storm — paced mixed tenants over the batched server");
    let cfg = config_from_env_and_args();
    let target_rps = env_u64("CITRUS_SERVE_RPS", 4_000);
    let clients = usize::try_from(env_u64("CITRUS_SERVE_CLIENTS", 4))
        .expect("CITRUS_SERVE_CLIENTS out of range");
    assert!(clients > 0, "CITRUS_SERVE_CLIENTS must be > 0");
    assert!(target_rps > 0, "CITRUS_SERVE_RPS must be > 0");
    let duration = cfg.duration;

    let scenarios = [
        Scenario {
            name: "routing-table",
            mix: ServeMix::routing_table(),
            key_dist: KeyDist::Uniform,
            local_range: cfg.range_small,
            tenants: 1,
        },
        Scenario {
            name: "session-store",
            mix: ServeMix::session_store(),
            key_dist: KeyDist::Zipf { theta: 0.99 },
            local_range: cfg.range_small / TENANTS,
            tenants: TENANTS,
        },
    ];

    let mut rows: Vec<Row> = Vec::new();
    for scenario in &scenarios {
        for router in ["hash", "range"] {
            println!(
                "== {} / {router} router: {clients} clients at {target_rps} req/s total, \
                 {SHARDS} shards, mix {}, keys {} ==",
                scenario.name, scenario.mix, scenario.key_dist
            );
            let cell = run_cell(scenario, router, clients, target_rps, duration);
            for r in &cell {
                println!(
                    "  {:<6} {:>8}/s   p50 {:>8}  p99 {:>8}  p999 {:>8}   (rejected {}, retries {})",
                    r.op,
                    fmt_rate(r.ops_per_s),
                    fmt_ns(r.p50_ns),
                    fmt_ns(r.p99_ns),
                    fmt_ns(r.p999_ns),
                    r.rejected,
                    r.retries
                );
            }
            println!();
            rows.extend(cell);
        }
    }

    let mut body = String::new();
    let _ = write!(
        body,
        "{{\n  \"bench\": \"serve\",\n  \"title\": \"citrus-serve paced storm, {SHARDS} shards, \
         key range [0,{}]\",\n  \"notes\": \"{}\",\n  \"cells\": [",
        cfg.range_small,
        benchjson::esc(NOTES)
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            body,
            "{}\n    {}",
            if i == 0 { "" } else { "," },
            row_json(r)
        );
    }
    body.push_str("\n  ]\n}\n");
    match benchjson::write("serve", &body) {
        Ok(path) => println!("(bench json: {})", path.display()),
        Err(e) => eprintln!("(bench json write failed: {e})"),
    }
}
