//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Each figure of the paper's evaluation has both a binary
//! (`cargo run -p citrus-bench --release --bin fig8`) and a bench target
//! (`cargo bench -p citrus-bench --bench fig8`); both print the same
//! table and write a CSV under `target/experiments/`.
//!
//! Scaling is controlled by the `CITRUS_*` environment variables (see
//! [`citrus_harness::BenchConfig`]); set `CITRUS_PAPER=1` for the paper's
//! full parameters.

#![warn(missing_docs)]

use citrus_harness::Report;

/// Prints a report and writes its CSV, logging the path.
pub fn emit(report: &Report, csv_name: &str) {
    println!("{report}");
    match report.write_csv(csv_name) {
        Ok(path) => println!("(csv: {})\n", path.display()),
        Err(e) => eprintln!("(csv write failed: {e})\n"),
    }
}

/// Prints the standard header for a figure run.
pub fn banner(what: &str) {
    let cfg = citrus_harness::BenchConfig::from_env();
    println!("=== {what} ===");
    println!(
        "config: duration {:?}/point, {} rep(s), threads {:?}, ranges [0,{}] and [0,{}] \
         (CITRUS_PAPER=1 for the paper's parameters)\n",
        cfg.duration, cfg.reps, cfg.threads, cfg.range_small, cfg.range_large
    );
}
