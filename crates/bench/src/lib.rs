//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Each figure of the paper's evaluation has both a binary
//! (`cargo run -p citrus-bench --release --bin fig8`) and a bench target
//! (`cargo bench -p citrus-bench --bench fig8`); both print the same
//! table and write a CSV under `target/experiments/`.
//!
//! Scaling is controlled by the `CITRUS_*` environment variables (see
//! [`citrus_harness::BenchConfig`]); set `CITRUS_PAPER=1` for the paper's
//! full parameters.

#![warn(missing_docs)]

use citrus_harness::{BenchConfig, Report};

/// Prints a report and writes its CSV, logging the path.
///
/// If the report carries an internal-metrics snapshot it is printed as an
/// extra section and written alongside as `<csv_name>_metrics.csv`.
pub fn emit(report: &Report, csv_name: &str) {
    println!("{report}");
    match report.write_csv(csv_name) {
        Ok(path) => {
            println!("(csv: {})", path.display());
            if report.metrics.is_some() {
                println!(
                    "(metrics csv: {})",
                    path.with_file_name(format!("{csv_name}_metrics.csv"))
                        .display()
                );
            }
            println!();
        }
        Err(e) => eprintln!("(csv write failed: {e})\n"),
    }
}

/// Reads the environment configuration and applies CLI flags: `--metrics`
/// turns on internal-metric collection (same as `CITRUS_METRICS=1`).
/// Unknown arguments abort with a usage message.
pub fn config_from_env_and_args() -> BenchConfig {
    let mut cfg = BenchConfig::from_env();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--metrics" => cfg.collect_metrics = true,
            other => {
                eprintln!("unknown argument `{other}` (supported: --metrics)");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// Prints the standard header for a figure run.
pub fn banner(what: &str) {
    let cfg = citrus_harness::BenchConfig::from_env();
    println!("=== {what} ===");
    println!(
        "config: duration {:?}/point, {} rep(s), threads {:?}, ranges [0,{}] and [0,{}] \
         (CITRUS_PAPER=1 for the paper's parameters)\n",
        cfg.duration, cfg.reps, cfg.threads, cfg.range_small, cfg.range_large
    );
}
