//! Shared plumbing for the figure-regeneration binaries and benches.
//!
//! Each figure of the paper's evaluation has both a binary
//! (`cargo run -p citrus-bench --release --bin fig8`) and a bench target
//! (`cargo bench -p citrus-bench --bench fig8`); both print the same
//! table and write a CSV under `target/experiments/`.
//!
//! Scaling is controlled by the `CITRUS_*` environment variables (see
//! [`citrus_harness::BenchConfig`]); set `CITRUS_PAPER=1` for the paper's
//! full parameters.

#![warn(missing_docs)]

use citrus_harness::{BenchConfig, Report};
use citrus_rcu::{RcuFlavor, RcuHandle};
use citrus_reclaim::CallRcu;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

pub mod benchjson;
pub mod gate;

/// Prints a report, writes its CSV, and persists the machine-readable
/// `BENCH_<csv_name>.json` trajectory file, logging the paths.
///
/// If the report carries an internal-metrics snapshot it is printed as an
/// extra section and written alongside as `<csv_name>_metrics.csv`.
pub fn emit(report: &Report, csv_name: &str) {
    println!("{report}");
    match report.write_csv(csv_name) {
        Ok(path) => {
            println!("(csv: {})", path.display());
            if report.metrics.is_some() {
                println!(
                    "(metrics csv: {})",
                    path.with_file_name(format!("{csv_name}_metrics.csv"))
                        .display()
                );
            }
        }
        Err(e) => eprintln!("(csv write failed: {e})"),
    }
    match benchjson::write(csv_name, &report_bench_json(report, csv_name)) {
        Ok(path) => println!("(bench json: {})\n", path.display()),
        Err(e) => eprintln!("(bench json write failed: {e})\n"),
    }
}

/// Renders a [`Report`] as the `BENCH_<name>.json` document: bench name,
/// title, thread sweep, and one ops/s array per series.
pub fn report_bench_json(report: &Report, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"bench\": \"{}\",\n  \"title\": \"{}\",\n  \"threads\": [{}],\n  \"series\": [",
        benchjson::esc(name),
        benchjson::esc(&report.title),
        report
            .threads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (i, series) in report.series.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"label\": \"{}\", \"ops_per_s\": [{}]}}",
            if i == 0 { "" } else { "," },
            benchjson::esc(&series.label),
            series
                .points
                .iter()
                .map(|&p| benchjson::num(p))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// One cell of the multi-synchronizer storm ([`synchronize_storm`]).
#[derive(Debug, Clone, Copy)]
pub struct StormCell {
    /// Concurrent synchronizing threads.
    pub syncers: usize,
    /// Aggregate `synchronize_rcu` completions per second.
    pub per_sec: f64,
    /// Piggybacked returns during the cell (grace-period sharing hits).
    pub piggybacks: u64,
    /// Full grace periods run during the cell.
    pub grace_periods: u64,
}

/// Runs `syncers` threads hammering `synchronize_rcu` on `rcu` for `dur`,
/// with `readers` background readers keeping scans honest; returns the
/// aggregate completion rate plus this cell's piggyback and grace-period
/// deltas. The workhorse behind `rcu_micro`'s storm mode and the D5
/// grace-period-sharing ablation.
pub fn synchronize_storm<F: RcuFlavor>(
    rcu: &F,
    syncers: usize,
    readers: usize,
    dur: Duration,
) -> StormCell {
    let piggybacks_before = rcu.synchronize_piggybacks();
    let grace_periods_before = rcu.grace_periods();
    let done = AtomicUsize::new(0);
    let total = AtomicU64::new(0);
    let barrier = Barrier::new(syncers + readers + 1);
    std::thread::scope(|s| {
        for _ in 0..readers {
            let (rcu, done, barrier) = (rcu, &done, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                barrier.wait();
                while done.load(Ordering::Relaxed) < syncers {
                    let _g = h.read_lock();
                    std::hint::spin_loop();
                }
            });
        }
        for _ in 0..syncers {
            let (rcu, done, total, barrier) = (rcu, &done, &total, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                let mut n = 0u64;
                barrier.wait();
                let start = std::time::Instant::now();
                while start.elapsed() < dur {
                    h.synchronize();
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        barrier.wait();
    });
    StormCell {
        syncers,
        per_sec: total.load(Ordering::Relaxed) as f64 / dur.as_secs_f64(),
        piggybacks: rcu.synchronize_piggybacks() - piggybacks_before,
        grace_periods: rcu.grace_periods() - grace_periods_before,
    }
}

/// One cell of the deferred-vs-inline retire micro ([`retire_storm`]).
#[derive(Debug, Clone, Copy)]
pub struct RetireCell {
    /// Whether retirements went through a `call_rcu` batch queue (`true`)
    /// or paid `synchronize_rcu` inline per object (`false`).
    pub deferred: bool,
    /// Retiring threads.
    pub updaters: usize,
    /// Aggregate retirements fully reclaimed per second.
    pub retires_per_s: f64,
    /// Full grace periods spent during the cell.
    pub grace_periods: u64,
}

/// Runs `updaters` threads retiring heap objects as fast as they can for
/// `dur`, with `readers` background readers keeping grace periods honest.
///
/// Inline mode models the tree's old delete hot path: one
/// `synchronize_rcu` per retired object, then free. Deferred mode routes
/// every retirement through one shared [`CallRcu`] domain, whose worker
/// batches the whole queue behind a single grace period (DESIGN.md §6g).
///
/// The clock runs from the start barrier until the deferred queue has
/// fully drained, so batching cannot inflate the rate by leaving work
/// pending — every counted retirement has actually been freed.
pub fn retire_storm<F: RcuFlavor>(
    rcu: &Arc<F>,
    deferred: bool,
    updaters: usize,
    readers: usize,
    dur: Duration,
) -> RetireCell {
    let grace_periods_before = rcu.grace_periods();
    let call = deferred.then(|| CallRcu::new(Arc::clone(rcu)));
    let done = AtomicUsize::new(0);
    let total = AtomicU64::new(0);
    let barrier = Barrier::new(updaters + readers + 1);
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|s| {
        for _ in 0..readers {
            let (rcu, done, barrier) = (rcu, &done, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                barrier.wait();
                while done.load(Ordering::Relaxed) < updaters {
                    let _g = h.read_lock();
                    std::hint::spin_loop();
                }
            });
        }
        for _ in 0..updaters {
            let (rcu, call, done, total, barrier) = (rcu, &call, &done, &total, &barrier);
            s.spawn(move || {
                let mut n = 0u64;
                if let Some(call) = call {
                    barrier.wait();
                    let start = std::time::Instant::now();
                    while start.elapsed() < dur {
                        // SAFETY: the pointer is freshly leaked, never
                        // published, and retired exactly once.
                        unsafe { call.retire(Box::into_raw(Box::new(0u64))) };
                        n += 1;
                    }
                } else {
                    let h = rcu.register();
                    barrier.wait();
                    let start = std::time::Instant::now();
                    while start.elapsed() < dur {
                        let ptr = Box::into_raw(Box::new(0u64));
                        h.synchronize();
                        // SAFETY: same pointer, after its grace period.
                        drop(unsafe { Box::from_raw(ptr) });
                        n += 1;
                    }
                }
                total.fetch_add(n, Ordering::Relaxed);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let start = std::time::Instant::now();
        while done.load(Ordering::Relaxed) < updaters {
            std::thread::yield_now();
        }
        if let Some(call) = &call {
            call.drain();
        }
        elapsed = start.elapsed();
    });
    RetireCell {
        deferred,
        updaters,
        retires_per_s: total.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(),
        grace_periods: rcu.grace_periods() - grace_periods_before,
    }
}

/// One cell of the range-scan storm ([`scan_storm`]).
#[derive(Debug, Clone, Copy)]
pub struct ScanCell {
    /// Concurrent scanning threads.
    pub scanners: usize,
    /// Concurrent insert/remove churn threads.
    pub updaters: usize,
    /// Width of each scanned key range.
    pub span: u64,
    /// Aggregate validated range scans completed per second.
    pub scans_per_s: f64,
    /// Mean entries returned per scan (sanity: scans saw real data).
    pub entries_per_scan: f64,
    /// Traversals thrown away by edge validation across the cell — the
    /// price of linearizable scans under churn.
    pub restarts: u64,
}

/// Runs `scanners` threads doing validated `range_scan`s of width `span`
/// over a Citrus tree of `key_range` keys for `dur`, with `updaters`
/// background threads churning inserts/removes to force validation
/// restarts. Leak mode, matching the paper's methodology, so the cell
/// isolates traversal + validation cost from reclamation.
pub fn scan_storm<F: RcuFlavor>(
    scanners: usize,
    updaters: usize,
    key_range: u64,
    span: u64,
    dur: Duration,
) -> ScanCell {
    use citrus::{CitrusTree, ReclaimMode};
    use citrus_api::testkit::SplitMix64;

    let tree: CitrusTree<u64, u64, F> = CitrusTree::with_reclaim(ReclaimMode::Leak);
    {
        let mut s = tree.session();
        let mut rng = SplitMix64::new(0x5CA4);
        for _ in 0..key_range / 2 {
            let k = rng.below(key_range);
            s.insert(k, k);
        }
    }
    let done = AtomicUsize::new(0);
    let scans = AtomicU64::new(0);
    let entries = AtomicU64::new(0);
    let restarts = AtomicU64::new(0);
    let barrier = Barrier::new(scanners + updaters + 1);
    std::thread::scope(|s| {
        for i in 0..updaters {
            let (tree, done, barrier) = (&tree, &done, &barrier);
            s.spawn(move || {
                let mut sess = tree.session();
                let mut rng = SplitMix64::new(0x0BD_0000 + i as u64);
                barrier.wait();
                while done.load(Ordering::Relaxed) < scanners {
                    let k = rng.below(key_range);
                    if rng.below(2) == 0 {
                        sess.insert(k, k);
                    } else {
                        sess.remove(&k);
                    }
                }
            });
        }
        for i in 0..scanners {
            let (tree, done, scans, entries, restarts, barrier) =
                (&tree, &done, &scans, &entries, &restarts, &barrier);
            s.spawn(move || {
                let mut sess = tree.session();
                let mut rng = SplitMix64::new(0xA5C_0000 + i as u64);
                let mut n = 0u64;
                let mut hits = 0u64;
                barrier.wait();
                let start = std::time::Instant::now();
                while start.elapsed() < dur {
                    let lo = rng.below(key_range.saturating_sub(span).max(1));
                    let found = sess.range_scan(&lo, &(lo + span));
                    hits += found.len() as u64;
                    std::hint::black_box(&found);
                    n += 1;
                }
                scans.fetch_add(n, Ordering::Relaxed);
                entries.fetch_add(hits, Ordering::Relaxed);
                restarts.fetch_add(sess.stats().scan_restarts(), Ordering::Relaxed);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        barrier.wait();
    });
    let total = scans.load(Ordering::Relaxed);
    ScanCell {
        scanners,
        updaters,
        span,
        scans_per_s: total as f64 / dur.as_secs_f64(),
        entries_per_scan: if total == 0 {
            0.0
        } else {
            entries.load(Ordering::Relaxed) as f64 / total as f64
        },
        restarts: restarts.load(Ordering::Relaxed),
    }
}

/// Parses a `--shards` value (comma-separated counts) into the config,
/// aborting with a usage message when empty or malformed.
fn apply_shards(cfg: &mut BenchConfig, value: &str) {
    let shards: Vec<usize> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("invalid --shards value `{value}` (expected e.g. `4` or `1,2,4,8`)");
                std::process::exit(2);
            }
        })
        .collect();
    if shards.is_empty() {
        eprintln!("invalid --shards value `{value}` (expected e.g. `4` or `1,2,4,8`)");
        std::process::exit(2);
    }
    cfg.shards = shards;
}

/// Reads the environment configuration and applies CLI flags: `--metrics`
/// turns on internal-metric collection (same as `CITRUS_METRICS=1`), and
/// `--shards N[,M,...]` (or `--shards=N[,M,...]`) overrides the forest
/// shard sweep (same as `CITRUS_SHARDS`). Unknown arguments abort with a
/// usage message.
pub fn config_from_env_and_args() -> BenchConfig {
    let mut cfg = BenchConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => cfg.collect_metrics = true,
            "--shards" => match args.next() {
                Some(value) => apply_shards(&mut cfg, &value),
                None => {
                    eprintln!("--shards requires a value (e.g. `--shards 4`)");
                    std::process::exit(2);
                }
            },
            other => {
                if let Some(value) = other.strip_prefix("--shards=") {
                    apply_shards(&mut cfg, value);
                } else {
                    eprintln!(
                        "unknown argument `{other}` (supported: --metrics, --shards N[,M,...])"
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    cfg
}

/// Prints the standard header for a figure run.
pub fn banner(what: &str) {
    let cfg = citrus_harness::BenchConfig::from_env();
    println!("=== {what} ===");
    println!(
        "config: duration {:?}/point, {} rep(s), threads {:?}, ranges [0,{}] and [0,{}] \
         (CITRUS_PAPER=1 for the paper's parameters)\n",
        cfg.duration, cfg.reps, cfg.threads, cfg.range_small, cfg.range_large
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchjson::Json;
    use citrus_harness::Series;

    /// The `BENCH_*.json` writer round-trips through the parser: every
    /// field of the report survives serialize → parse structurally intact,
    /// so the figure binaries can't silently emit malformed JSON.
    #[test]
    fn report_bench_json_round_trips_through_the_parser() {
        let report = Report {
            title: "fig\"8\": throughput, range [0,2\u{207b}]".into(),
            threads: vec![1, 2, 4, 8],
            series: vec![
                Series {
                    label: "Citrus (scalable)".into(),
                    points: vec![1.25e6, 2.5e6, 4.75e6, 9.0e6],
                },
                Series {
                    label: "lazy\\skip".into(),
                    points: vec![0.5e6, f64::NAN, 1.5e6, 2.0e6],
                },
            ],
            metrics: None,
        };
        let doc = benchjson::parse(&report_bench_json(&report, "fig8"))
            .expect("writer output must parse");

        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("fig8"));
        assert_eq!(
            doc.get("title").and_then(Json::as_str),
            Some(report.title.as_str()),
            "escaped title must decode back unchanged"
        );
        let threads: Vec<f64> = doc
            .get("threads")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|t| t.as_f64().unwrap())
            .collect();
        assert_eq!(threads, vec![1.0, 2.0, 4.0, 8.0]);

        let series = doc.get("series").and_then(Json::as_arr).unwrap();
        assert_eq!(series.len(), report.series.len());
        for (got, want) in series.iter().zip(&report.series) {
            assert_eq!(
                got.get("label").and_then(Json::as_str),
                Some(want.label.as_str())
            );
            let points = got.get("ops_per_s").and_then(Json::as_arr).unwrap();
            assert_eq!(points.len(), want.points.len());
            for (p, &w) in points.iter().zip(&want.points) {
                if w.is_nan() {
                    assert_eq!(p, &Json::Null, "NaN points serialize as null");
                } else {
                    assert_eq!(p.as_f64(), Some(w));
                }
            }
        }
    }
}
