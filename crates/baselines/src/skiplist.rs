//! Lazy lock-based optimistic skiplist (Herlihy, Lev, Luchangco, Shavit,
//! *A simple optimistic skiplist algorithm*, SIROCCO 2007) — the paper's
//! "Skiplist" baseline, whose C implementation the evaluation takes from
//! synchrobench.
//!
//! * `contains` is lock-free and wait-free in practice: one top-down
//!   traversal, then a check of the `fully_linked` and `marked` flags.
//! * `add` locks the predecessors at every level, validates, links bottom
//!   up, then sets `fully_linked` (the linearization point).
//! * `remove` is *lazy*: it first marks the victim (logical delete — the
//!   linearization point), then locks predecessors, validates, and unlinks.

use crate::graveyard::Graveyard;
use citrus_api::testkit::SplitMix64;
use citrus_api::{ConcurrentMap, MapSession};
use citrus_chaos as chaos;
use citrus_sync::{Backoff, RawSpinLock};
use core::cmp::Ordering as CmpOrdering;
use core::fmt;
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

/// Maximum tower height; supports ~2²⁴ keys at p = ½.
const MAX_LEVEL: usize = 24;

/// Session-local buffered retirements between graveyard flushes.
const FLUSH_EVERY: usize = 256;

/// Key extended with head/tail sentinels.
#[derive(Debug)]
enum Bound<K> {
    NegInf,
    Key(K),
    PosInf,
}

impl<K: Ord> Bound<K> {
    fn cmp_key(&self, key: &K) -> CmpOrdering {
        match self {
            Bound::NegInf => CmpOrdering::Less,
            Bound::Key(k) => k.cmp(key),
            Bound::PosInf => CmpOrdering::Greater,
        }
    }
}

struct SkipNode<K, V> {
    key: Bound<K>,
    value: Option<V>,
    /// Tower: `next[0..=top_level]`.
    next: Vec<AtomicPtr<SkipNode<K, V>>>,
    top_level: usize,
    /// Logical-deletion flag; set under `lock` (the remove linearization
    /// point).
    marked: AtomicBool,
    /// Set once the node is linked at every level; until then concurrent
    /// operations treat the key as "in flight".
    fully_linked: AtomicBool,
    lock: RawSpinLock,
}

impl<K, V> SkipNode<K, V> {
    fn alloc(key: Bound<K>, value: Option<V>, top_level: usize) -> *mut Self {
        let next = (0..=top_level)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        Box::into_raw(Box::new(Self {
            key,
            value,
            next,
            top_level,
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
            lock: RawSpinLock::new(),
        }))
    }
}

/// The lazy skiplist. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_baselines::LazySkipList;
/// use citrus_api::{ConcurrentMap, MapSession};
///
/// let list: LazySkipList<u64, u64> = LazySkipList::new();
/// let mut s = list.session();
/// assert!(s.insert(3, 33));
/// assert_eq!(s.get(&3), Some(33));
/// assert!(s.remove(&3));
/// ```
pub struct LazySkipList<K, V> {
    head: *mut SkipNode<K, V>,
    tail: *mut SkipNode<K, V>,
    graveyard: Graveyard<SkipNode<K, V>>,
    seed: AtomicU64,
}

// SAFETY: concurrent container; all shared mutation goes through atomics
// and per-node locks.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for LazySkipList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for LazySkipList<K, V> {}

impl<K, V> LazySkipList<K, V> {
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        let head = SkipNode::alloc(Bound::NegInf, None, MAX_LEVEL);
        let tail = SkipNode::alloc(Bound::PosInf, None, MAX_LEVEL);
        // SAFETY: freshly allocated, exclusively owned here.
        unsafe {
            for lv in 0..=MAX_LEVEL {
                (&(*head).next)[lv].store(tail, Ordering::Relaxed);
            }
            (*head).fully_linked.store(true, Ordering::Relaxed);
            (*tail).fully_linked.store(true, Ordering::Relaxed);
        }
        Self {
            head,
            tail,
            graveyard: Graveyard::new(),
            seed: AtomicU64::new(0x5EED_0001),
        }
    }

    /// Number of unreclaimed removed nodes (diagnostics).
    pub fn graveyard_len(&self) -> usize {
        self.graveyard.len()
    }
}

impl<K, V> Default for LazySkipList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for LazySkipList<K, V> {
    fn drop(&mut self) {
        // Walk the level-0 chain; removed nodes are unlinked from it and
        // live in the graveyard, so the sweeps are disjoint.
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: `&mut self` — exclusive; each node freed once.
            unsafe {
                let next = if cur == self.tail {
                    ptr::null_mut()
                } else {
                    (&(*cur).next)[0].load(Ordering::Relaxed)
                };
                drop(Box::from_raw(cur));
                cur = next;
            }
        }
    }
}

impl<K: fmt::Debug, V> fmt::Debug for LazySkipList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazySkipList")
            .field("graveyard", &self.graveyard.len())
            .finish_non_exhaustive()
    }
}

impl<K, V> ConcurrentMap<K, V> for LazySkipList<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    type Session<'a>
        = SkipListSession<'a, K, V>
    where
        Self: 'a;

    const NAME: &'static str = "skiplist-lazy";

    fn session(&self) -> SkipListSession<'_, K, V> {
        let seed = self.seed.fetch_add(0x9E37_79B9, Ordering::Relaxed);
        SkipListSession {
            list: self,
            rng: SplitMix64::new(seed ^ 0xD1CE),
            retired: Vec::new(),
        }
    }
}

/// Per-thread handle to a [`LazySkipList`] (owns the tower-height RNG and
/// a retirement buffer).
pub struct SkipListSession<'l, K, V> {
    list: &'l LazySkipList<K, V>,
    rng: SplitMix64,
    retired: Vec<*mut SkipNode<K, V>>,
}

impl<K, V> SkipListSession<'_, K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Geometric tower height with p = ½.
    fn random_level(&mut self) -> usize {
        (self.rng.next_u64().trailing_ones() as usize).min(MAX_LEVEL)
    }

    /// The HLLS `find`: fills `preds`/`succs` and returns the highest level
    /// at which a node with `key` was found.
    fn find(
        &self,
        key: &K,
        preds: &mut [*mut SkipNode<K, V>; MAX_LEVEL + 1],
        succs: &mut [*mut SkipNode<K, V>; MAX_LEVEL + 1],
    ) -> Option<usize> {
        let mut found = None;
        let mut pred = self.list.head;
        // SAFETY (whole fn): nodes are never freed while the list lives
        // (graveyard reclamation), so traversing racy pointers is safe.
        unsafe {
            for lv in (0..=MAX_LEVEL).rev() {
                let mut curr = (&(*pred).next)[lv].load(Ordering::Acquire);
                while (*curr).key.cmp_key(key) == CmpOrdering::Less {
                    pred = curr;
                    curr = (&(*pred).next)[lv].load(Ordering::Acquire);
                }
                if found.is_none() && (*curr).key.cmp_key(key) == CmpOrdering::Equal {
                    found = Some(lv);
                }
                preds[lv] = pred;
                succs[lv] = curr;
            }
        }
        found
    }

    fn get_inner(&self, key: &K) -> Option<V> {
        let mut preds = [ptr::null_mut(); MAX_LEVEL + 1];
        let mut succs = [ptr::null_mut(); MAX_LEVEL + 1];
        let found = self.find(key, &mut preds, &mut succs)?;
        let node = succs[found];
        // SAFETY: nodes outlive the list; value immutable after insert.
        unsafe {
            if (*node).fully_linked.load(Ordering::Acquire)
                && !(*node).marked.load(Ordering::Acquire)
            {
                (*node).value.clone()
            } else {
                None
            }
        }
    }

    fn insert_inner(&mut self, key: K, value: V) -> bool {
        let top = self.random_level();
        let mut preds = [ptr::null_mut(); MAX_LEVEL + 1];
        let mut succs = [ptr::null_mut(); MAX_LEVEL + 1];
        let backoff = Backoff::new();
        loop {
            if let Some(found) = self.find(&key, &mut preds, &mut succs) {
                let node = succs[found];
                // SAFETY: nodes outlive the list.
                unsafe {
                    if !(*node).marked.load(Ordering::Acquire) {
                        // Wait until the in-flight insert completes, then
                        // report "already present".
                        while !(*node).fully_linked.load(Ordering::Acquire) {
                            backoff.snooze();
                        }
                        return false;
                    }
                }
                // Marked: a lazy remove is in progress; retry.
                backoff.snooze();
                continue;
            }

            // The find→lock window: any predecessor may be marked or
            // re-linked before we lock it, which validation re-checks.
            chaos::point!("baseline-skiplist/add/before-validate");
            // Lock distinct predecessors bottom-up and validate.
            let mut locked: Vec<*mut SkipNode<K, V>> = Vec::with_capacity(top + 1);
            let mut valid = true;
            // SAFETY: nodes outlive the list; locks guard link fields.
            unsafe {
                let mut prev_pred = ptr::null_mut();
                for lv in 0..=top {
                    let pred = preds[lv];
                    if pred != prev_pred {
                        (*pred).lock.lock();
                        locked.push(pred);
                        prev_pred = pred;
                    }
                    let succ = succs[lv];
                    if (*pred).marked.load(Ordering::Acquire)
                        || (*succ).marked.load(Ordering::Acquire)
                        || (&(*pred).next)[lv].load(Ordering::Acquire) != succ
                    {
                        valid = false;
                        break;
                    }
                }
                if !valid {
                    for p in locked.drain(..).rev() {
                        (*p).lock.unlock();
                    }
                    backoff.snooze();
                    continue;
                }

                let node = SkipNode::alloc(Bound::Key(key), Some(value), top);
                for (lv, &succ) in succs.iter().enumerate().take(top + 1) {
                    (&(*node).next)[lv].store(succ, Ordering::Relaxed);
                }
                for (lv, &pred) in preds.iter().enumerate().take(top + 1) {
                    (&(*pred).next)[lv].store(node, Ordering::Release);
                }
                // Linearization point.
                (*node).fully_linked.store(true, Ordering::Release);
                for p in locked.drain(..).rev() {
                    (*p).lock.unlock();
                }
            }
            return true;
        }
    }

    fn remove_inner(&mut self, key: &K) -> bool {
        let mut victim: *mut SkipNode<K, V> = ptr::null_mut();
        let mut is_marked = false;
        let mut top = 0usize;
        let mut preds = [ptr::null_mut(); MAX_LEVEL + 1];
        let mut succs = [ptr::null_mut(); MAX_LEVEL + 1];
        let backoff = Backoff::new();
        loop {
            let found = self.find(key, &mut preds, &mut succs);
            // SAFETY (whole loop): nodes outlive the list.
            unsafe {
                let deletable = match found {
                    Some(lv) => {
                        let cand = succs[lv];
                        (*cand).fully_linked.load(Ordering::Acquire)
                            && (*cand).top_level == lv
                            && !(*cand).marked.load(Ordering::Acquire)
                    }
                    None => false,
                };
                if !is_marked && !deletable {
                    return false;
                }
                if !is_marked {
                    let lv = found.expect("deletable implies found");
                    victim = succs[lv];
                    top = (*victim).top_level;
                    (*victim).lock.lock();
                    if (*victim).marked.load(Ordering::Acquire) {
                        // Lost the race to another remover.
                        (*victim).lock.unlock();
                        return false;
                    }
                    // Linearization point (logical removal).
                    (*victim).marked.store(true, Ordering::Release);
                    is_marked = true;
                }

                // The victim is marked but still linked — the window other
                // threads observe a logically deleted node.
                chaos::point!("baseline-skiplist/remove/before-validate");
                // Physical unlink: lock predecessors, validate, splice.
                let mut locked: Vec<*mut SkipNode<K, V>> = Vec::with_capacity(top + 1);
                let mut valid = true;
                let mut prev_pred = ptr::null_mut();
                for (lv, &pred) in preds.iter().enumerate().take(top + 1) {
                    if pred != prev_pred {
                        (*pred).lock.lock();
                        locked.push(pred);
                        prev_pred = pred;
                    }
                    if (*pred).marked.load(Ordering::Acquire)
                        || (&(*pred).next)[lv].load(Ordering::Acquire) != victim
                    {
                        valid = false;
                        break;
                    }
                }
                if !valid {
                    for p in locked.drain(..).rev() {
                        (*p).lock.unlock();
                    }
                    backoff.snooze();
                    continue;
                }
                for lv in (0..=top).rev() {
                    (&(*preds[lv]).next)[lv].store(
                        (&(*victim).next)[lv].load(Ordering::Acquire),
                        Ordering::Release,
                    );
                }
                (*victim).lock.unlock();
                for p in locked.drain(..).rev() {
                    (*p).lock.unlock();
                }
            }
            self.retire(victim);
            return true;
        }
    }

    fn retire(&mut self, node: *mut SkipNode<K, V>) {
        self.retired.push(node);
        if self.retired.len() >= FLUSH_EVERY {
            // SAFETY: nodes were unlinked by this thread.
            unsafe { self.list.graveyard.push_batch(&mut self.retired) };
        }
    }
}

impl<K, V> Drop for SkipListSession<'_, K, V> {
    fn drop(&mut self) {
        // SAFETY: buffered nodes were unlinked by this session.
        unsafe { self.list.graveyard.push_batch(&mut self.retired) };
    }
}

impl<K, V> fmt::Debug for SkipListSession<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipListSession")
            .field("retired_buffered", &self.retired.len())
            .finish_non_exhaustive()
    }
}

impl<K, V> MapSession<K, V> for SkipListSession<'_, K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    fn get(&mut self, key: &K) -> Option<V> {
        self.get_inner(key)
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        self.insert_inner(key, value)
    }

    fn remove(&mut self, key: &K) -> bool {
        self.remove_inner(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus_api::testkit;

    type List = LazySkipList<u64, u64>;

    #[test]
    fn empty_list() {
        let l = List::new();
        let mut s = l.session();
        assert_eq!(s.get(&1), None);
        assert!(!s.remove(&1));
    }

    #[test]
    fn towers_link_across_levels() {
        let l = List::new();
        let mut s = l.session();
        for k in 0..200u64 {
            assert!(s.insert(k, k));
        }
        for k in 0..200u64 {
            assert_eq!(s.get(&k), Some(k));
        }
        for k in (0..200u64).step_by(2) {
            assert!(s.remove(&k));
        }
        for k in 0..200u64 {
            assert_eq!(s.get(&k), (k % 2 == 1).then_some(k));
        }
    }

    #[test]
    fn sequential_model() {
        testkit::check_sequential_model(&List::new(), 6_000, 256, 0x51C1);
        testkit::check_duplicate_inserts(&List::new());
    }

    #[test]
    fn concurrent_battery() {
        testkit::check_lost_updates(&List::new(), 8, 300);
        testkit::check_partitioned_determinism(&List::new(), 8, 3_000, 64);
        testkit::check_mixed_quiescent_consistency(&List::new(), 8, 3_000, 128);
    }

    #[test]
    fn graveyard_collects_removed_nodes() {
        let l = List::new();
        {
            let mut s = l.session();
            for k in 0..600u64 {
                s.insert(k, k);
            }
            for k in 0..600u64 {
                s.remove(&k);
            }
        }
        assert_eq!(l.graveyard_len(), 600);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<List>();
    }
}
