//! Baseline concurrent dictionaries from the Citrus paper's evaluation
//! (§5), implemented from scratch:
//!
//! | figure label | here | synchronization |
//! |---|---|---|
//! | "Red-Black" | [`RelativisticRbTree`] | global update lock, RCU readers, copy-on-rotate, `synchronize_rcu` on successor moves (Howard & Walpole \[18\]) |
//! | "Bonsai" | [`BonsaiTree`] | global update lock, RCU readers, full path-copying functional updates (Clements et al. \[6\]) |
//! | "AVL" | [`OptimisticAvlTree`] | fine-grained locks + per-node versions, optimistic hand-over-hand validation, relaxed balance (Bronson et al. \[4\]) |
//! | "Lock-Free" | [`LockFreeBst`] | external BST with edge flagging/tagging CAS protocol (Natarajan & Mittal \[23\]) |
//! | "Skiplist" | [`LazySkipList`] | lazy lock-based optimistic skiplist (Herlihy et al. \[15\]) |
//!
//! All five implement [`citrus_api::ConcurrentMap`] so the benchmark
//! harness and the shared test kit drive them identically to the Citrus
//! tree.
//!
//! # Memory reclamation
//!
//! Matching the paper's methodology ("without performing any memory
//! reclamation"), removed/replaced nodes go to a per-structure
//! [`Graveyard`] and are freed when the structure is dropped.
//! (The Citrus tree additionally offers epoch-based reclamation; the
//! baselines deliberately reproduce the paper's setup.)

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod avl;
mod bonsai;
mod graveyard;
mod lockfree;
mod rbtree;
mod skiplist;

pub use avl::{AvlSession, OptimisticAvlTree};
pub use bonsai::{BonsaiSession, BonsaiTree};
pub use graveyard::Graveyard;
pub use lockfree::{LockFreeBst, LockFreeSession};
pub use rbtree::{RbSession, RelativisticRbTree};
pub use skiplist::{LazySkipList, SkipListSession};
