//! Deferred-free node graveyard (the paper's "no reclamation" methodology).

use citrus_sync::SpinMutex;
use core::fmt;

/// Collects unlinked nodes of type `T` and frees them when dropped.
///
/// The Citrus evaluation runs every structure *without* memory
/// reclamation; nodes removed from a structure are merely queued here so
/// the process does not leak across repeated benchmark configurations —
/// each structure frees its graveyard on drop.
///
/// Pushing takes an internal spin lock; callers batch via
/// [`push_batch`](Self::push_batch) from session-local buffers.
pub struct Graveyard<T> {
    dead: SpinMutex<Vec<*mut T>>,
}

// SAFETY: the graveyard owns unlinked allocations; moving the ownership
// records across threads is safe for any sendable payload.
unsafe impl<T: Send> Send for Graveyard<T> {}
unsafe impl<T: Send> Sync for Graveyard<T> {}

impl<T> Graveyard<T> {
    /// Creates an empty graveyard.
    pub fn new() -> Self {
        Self {
            dead: SpinMutex::new(Vec::new()),
        }
    }

    /// Queues one unlinked node.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::into_raw` and be unlinked from the
    /// owning structure (unreachable for new traversals); ownership moves
    /// to the graveyard.
    pub unsafe fn push(&self, ptr: *mut T) {
        self.dead.lock().push(ptr);
    }

    /// Queues a batch of unlinked nodes, draining `batch`.
    ///
    /// # Safety
    ///
    /// As for [`push`](Self::push), for every element.
    pub unsafe fn push_batch(&self, batch: &mut Vec<*mut T>) {
        if !batch.is_empty() {
            self.dead.lock().append(batch);
        }
    }

    /// Number of queued nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.dead.lock().len()
    }

    /// `true` if no nodes are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Graveyard<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for Graveyard<T> {
    fn drop(&mut self) {
        for ptr in self.dead.get_mut().drain(..) {
            // SAFETY: per `push`'s contract the pointer is an unlinked,
            // exclusively owned Box allocation.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

impl<T> fmt::Debug for Graveyard<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graveyard")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counted<'a>(&'a AtomicUsize);
    impl Drop for Counted<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn frees_everything_on_drop() {
        let drops = AtomicUsize::new(0);
        {
            let g: Graveyard<Counted> = Graveyard::new();
            unsafe {
                g.push(Box::into_raw(Box::new(Counted(&drops))));
                let mut batch = vec![
                    Box::into_raw(Box::new(Counted(&drops))),
                    Box::into_raw(Box::new(Counted(&drops))),
                ];
                g.push_batch(&mut batch);
                assert!(batch.is_empty());
            }
            assert_eq!(g.len(), 3);
            assert!(!g.is_empty());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_graveyard_is_empty() {
        let g: Graveyard<u64> = Graveyard::new();
        assert!(g.is_empty());
        assert!(format!("{g:?}").contains("Graveyard"));
    }
}
