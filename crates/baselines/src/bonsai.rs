//! Bonsai tree (Clements, Kaashoek, Zeldovich, *Scalable address spaces
//! using RCU balanced trees*, ASPLOS 2012) — the paper's "Bonsai" baseline.
//!
//! Bonsai is "inspired by functional programming: it never modifies the
//! tree in place, creating instead a new instance for the changed data
//! structure". Concretely:
//!
//! * Nodes are **immutable** after publication.
//! * An update (under a **global update lock** — Bonsai allows only one
//!   writer) rebuilds the root-to-change path, rebalancing with
//!   weight-balanced (BB[α] / Adams-style) rotations that also create new
//!   nodes, then swings the root pointer with a single release store.
//! * Readers run inside an RCU read-side critical section and traverse
//!   whichever root snapshot they loaded — always a fully consistent tree.
//!
//! The evaluation's observation that Bonsai "does not perform well,
//! possibly due to its functional programming style, which reconstructs
//! parts of the tree after every update" is reproduced faithfully: every
//! update allocates Θ(log n) fresh nodes.
//!
//! Replaced nodes are kept in an arena and freed when the tree drops (the
//! paper's no-reclamation methodology).

use crate::graveyard::Graveyard;
use citrus_api::{ConcurrentMap, MapSession, OrderedMapSession};
use citrus_chaos as chaos;
use citrus_rcu::{RcuFlavor, RcuHandle, ScalableRcu};
use citrus_sync::SpinMutex;
use core::cmp::Ordering as CmpOrdering;
use core::fmt;
use core::ptr;
use core::sync::atomic::{AtomicPtr, Ordering};

/// Adams' weight-balance parameters (as in Haskell's `Data.Map`).
const DELTA: usize = 3;
const RATIO: usize = 2;

struct BNode<K, V> {
    key: K,
    value: V,
    /// Subtree size (weight); drives rebalancing.
    size: usize,
    left: *mut BNode<K, V>,
    right: *mut BNode<K, V>,
}

/// The Bonsai tree. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_baselines::BonsaiTree;
/// use citrus_api::{ConcurrentMap, MapSession};
///
/// let tree: BonsaiTree<u64, u64> = BonsaiTree::new();
/// let mut s = tree.session();
/// assert!(s.insert(1, 10));
/// assert_eq!(s.get(&1), Some(10));
/// ```
pub struct BonsaiTree<K, V, F: RcuFlavor = ScalableRcu> {
    root: AtomicPtr<BNode<K, V>>,
    /// Bonsai allows a single writer at a time.
    write_lock: SpinMutex<()>,
    /// Every node ever allocated; freed at drop (no double frees possible).
    arena: Graveyard<BNode<K, V>>,
    rcu: F,
}

// SAFETY: nodes are immutable once published and never freed before drop;
// the root pointer is the only shared mutable state.
unsafe impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> Send for BonsaiTree<K, V, F> {}
unsafe impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> Sync for BonsaiTree<K, V, F> {}

impl<K, V, F: RcuFlavor> BonsaiTree<K, V, F> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: AtomicPtr::new(ptr::null_mut()),
            write_lock: SpinMutex::new(()),
            arena: Graveyard::new(),
            rcu: F::new(),
        }
    }

    /// Total nodes ever allocated and still held (diagnostics; Bonsai's
    /// allocation pressure is its performance story).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }
}

impl<K, V, F: RcuFlavor> Default for BonsaiTree<K, V, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: fmt::Debug, V, F: RcuFlavor> fmt::Debug for BonsaiTree<K, V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BonsaiTree")
            .field("arena_nodes", &self.arena_len())
            .finish_non_exhaustive()
    }
}

impl<K, V, F> BonsaiTree<K, V, F>
where
    K: Ord + Clone,
    V: Clone,
    F: RcuFlavor,
{
    fn size(t: *mut BNode<K, V>) -> usize {
        if t.is_null() {
            0
        } else {
            // SAFETY: non-null nodes live until drop.
            unsafe { (*t).size }
        }
    }

    /// Allocates a node (recording it in the arena) with computed size.
    fn node(
        &self,
        key: K,
        value: V,
        left: *mut BNode<K, V>,
        right: *mut BNode<K, V>,
    ) -> *mut BNode<K, V> {
        let n = Box::into_raw(Box::new(BNode {
            key,
            value,
            size: 1 + Self::size(left) + Self::size(right),
            left,
            right,
        }));
        // SAFETY: freshly allocated; arena takes ownership for drop time.
        unsafe { self.arena.push(n) };
        n
    }

    /// Adams' smart constructor: builds `node(k, v, l, r)`, restoring the
    /// weight invariant with single/double rotations (each creating new
    /// nodes — Bonsai's copy-on-update cost).
    fn balance(&self, k: K, v: V, l: *mut BNode<K, V>, r: *mut BNode<K, V>) -> *mut BNode<K, V> {
        let (ls, rs) = (Self::size(l), Self::size(r));
        if ls + rs <= 1 {
            return self.node(k, v, l, r);
        }
        // SAFETY: heavy sides are non-null (size > 0); nodes immutable.
        unsafe {
            if rs > DELTA * ls {
                // Right heavy.
                let rl = (*r).left;
                let rr = (*r).right;
                if Self::size(rl) < RATIO * Self::size(rr) {
                    // Single left rotation.
                    let inner = self.node(k, v, l, rl);
                    self.node((*r).key.clone(), (*r).value.clone(), inner, rr)
                } else {
                    // Double left rotation (rl is non-null here).
                    let new_l = self.node(k, v, l, (*rl).left);
                    let new_r = self.node((*r).key.clone(), (*r).value.clone(), (*rl).right, rr);
                    self.node((*rl).key.clone(), (*rl).value.clone(), new_l, new_r)
                }
            } else if ls > DELTA * rs {
                // Left heavy.
                let ll = (*l).left;
                let lr = (*l).right;
                if Self::size(lr) < RATIO * Self::size(ll) {
                    // Single right rotation.
                    let inner = self.node(k, v, lr, r);
                    self.node((*l).key.clone(), (*l).value.clone(), ll, inner)
                } else {
                    // Double right rotation (lr non-null).
                    let new_l = self.node((*l).key.clone(), (*l).value.clone(), ll, (*lr).left);
                    let new_r = self.node(k, v, (*lr).right, r);
                    self.node((*lr).key.clone(), (*lr).value.clone(), new_l, new_r)
                }
            } else {
                self.node(k, v, l, r)
            }
        }
    }

    /// Functional insert; `None` if the key already exists.
    fn ins(&self, t: *mut BNode<K, V>, key: &K, value: &V) -> Option<*mut BNode<K, V>> {
        if t.is_null() {
            return Some(self.node(key.clone(), value.clone(), ptr::null_mut(), ptr::null_mut()));
        }
        // SAFETY: nodes immutable and live until drop.
        unsafe {
            match key.cmp(&(*t).key) {
                CmpOrdering::Equal => None,
                CmpOrdering::Less => self
                    .ins((*t).left, key, value)
                    .map(|l| self.balance((*t).key.clone(), (*t).value.clone(), l, (*t).right)),
                CmpOrdering::Greater => self
                    .ins((*t).right, key, value)
                    .map(|r| self.balance((*t).key.clone(), (*t).value.clone(), (*t).left, r)),
            }
        }
    }

    /// Removes and returns the minimum of non-null `t`, with the rebuilt
    /// remainder.
    fn extract_min(&self, t: *mut BNode<K, V>) -> (K, V, *mut BNode<K, V>) {
        // SAFETY: `t` non-null by contract; nodes immutable.
        unsafe {
            if (*t).left.is_null() {
                ((*t).key.clone(), (*t).value.clone(), (*t).right)
            } else {
                let (k, v, l) = self.extract_min((*t).left);
                (
                    k,
                    v,
                    self.balance((*t).key.clone(), (*t).value.clone(), l, (*t).right),
                )
            }
        }
    }

    /// Joins two subtrees whose keys are already ordered (`l` < `r`).
    fn glue(&self, l: *mut BNode<K, V>, r: *mut BNode<K, V>) -> *mut BNode<K, V> {
        if l.is_null() {
            return r;
        }
        if r.is_null() {
            return l;
        }
        let (k, v, r2) = self.extract_min(r);
        self.balance(k, v, l, r2)
    }

    /// Functional delete; `None` if the key is absent.
    fn del(&self, t: *mut BNode<K, V>, key: &K) -> Option<*mut BNode<K, V>> {
        if t.is_null() {
            return None;
        }
        // SAFETY: nodes immutable and live until drop.
        unsafe {
            match key.cmp(&(*t).key) {
                CmpOrdering::Equal => Some(self.glue((*t).left, (*t).right)),
                CmpOrdering::Less => self
                    .del((*t).left, key)
                    .map(|l| self.balance((*t).key.clone(), (*t).value.clone(), l, (*t).right)),
                CmpOrdering::Greater => self
                    .del((*t).right, key)
                    .map(|r| self.balance((*t).key.clone(), (*t).value.clone(), (*t).left, r)),
            }
        }
    }
}

impl<K, V, F> ConcurrentMap<K, V> for BonsaiTree<K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    type Session<'a>
        = BonsaiSession<'a, K, V, F>
    where
        Self: 'a;

    const NAME: &'static str = "bonsai";

    fn session(&self) -> BonsaiSession<'_, K, V, F> {
        BonsaiSession {
            tree: self,
            rcu: self.rcu.register(),
        }
    }
}

/// Per-thread handle to a [`BonsaiTree`] (holds the RCU reader slot).
pub struct BonsaiSession<'t, K, V, F: RcuFlavor> {
    tree: &'t BonsaiTree<K, V, F>,
    rcu: F::Handle<'t>,
}

impl<K, V, F: RcuFlavor> fmt::Debug for BonsaiSession<'_, K, V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BonsaiSession").finish_non_exhaustive()
    }
}

impl<K, V, F> BonsaiSession<'_, K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    /// Ordered reads come for free from Bonsai's functional design: the
    /// root loaded at the start of the read-side critical section is an
    /// immutable snapshot of the entire tree, so a bounded in-order walk
    /// needs no validation and never restarts. The load of `root` is the
    /// linearization point.
    fn snapshot_walk<T>(&mut self, visit: impl FnOnce(*mut BNode<K, V>) -> T) -> T {
        let _g = self.rcu.read_lock();
        let root = self.tree.root.load(Ordering::Acquire);
        chaos::point!("baseline-bonsai/scan/snapshot");
        visit(root)
    }
}

impl<K, V, F> MapSession<K, V> for BonsaiSession<'_, K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    fn get(&mut self, key: &K) -> Option<V> {
        let _g = self.rcu.read_lock();
        let mut cur = self.tree.root.load(Ordering::Acquire);
        // SAFETY: snapshot traversal; nodes immutable and never freed
        // before drop.
        unsafe {
            while !cur.is_null() {
                match key.cmp(&(*cur).key) {
                    CmpOrdering::Equal => return Some((*cur).value.clone()),
                    CmpOrdering::Less => cur = (*cur).left,
                    CmpOrdering::Greater => cur = (*cur).right,
                }
            }
        }
        None
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        let tree = self.tree;
        let _w = tree.write_lock.lock();
        // Readers run concurrently with the path-copying below.
        chaos::point!("baseline-bonsai/write/critical");
        let root = tree.root.load(Ordering::Relaxed); // sole writer
        match tree.ins(root, &key, &value) {
            Some(new_root) => {
                tree.root.store(new_root, Ordering::Release);
                true
            }
            None => false,
        }
    }

    fn remove(&mut self, key: &K) -> bool {
        let tree = self.tree;
        let _w = tree.write_lock.lock();
        chaos::point!("baseline-bonsai/write/critical");
        let root = tree.root.load(Ordering::Relaxed);
        match tree.del(root, key) {
            Some(new_root) => {
                tree.root.store(new_root, Ordering::Release);
                true
            }
            None => false,
        }
    }
}

impl<K, V, F> OrderedMapSession<K, V> for BonsaiSession<'_, K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, V)> {
        if lo > hi {
            return Vec::new();
        }
        self.snapshot_walk(|root| {
            // Bounded in-order walk of the immutable snapshot, pruning
            // subtrees that cannot intersect `[lo, hi]`.
            let mut out = Vec::new();
            let mut stack: Vec<*mut BNode<K, V>> = Vec::new();
            let mut cur = root;
            // SAFETY: snapshot traversal; nodes immutable and never freed
            // before the tree drops.
            unsafe {
                loop {
                    while !cur.is_null() {
                        if (*cur).key < *lo {
                            cur = (*cur).right;
                        } else {
                            stack.push(cur);
                            cur = (*cur).left;
                        }
                    }
                    let Some(node) = stack.pop() else { break };
                    if (*node).key > *hi {
                        break;
                    }
                    out.push(((*node).key.clone(), (*node).value.clone()));
                    cur = (*node).right;
                }
            }
            out
        })
    }

    fn successor(&mut self, key: &K) -> Option<(K, V)> {
        self.snapshot_walk(|root| {
            let mut best: Option<(K, V)> = None;
            let mut cur = root;
            // SAFETY: snapshot traversal as above.
            unsafe {
                while !cur.is_null() {
                    if (*cur).key > *key {
                        best = Some(((*cur).key.clone(), (*cur).value.clone()));
                        cur = (*cur).left;
                    } else {
                        cur = (*cur).right;
                    }
                }
            }
            best
        })
    }

    fn predecessor(&mut self, key: &K) -> Option<(K, V)> {
        self.snapshot_walk(|root| {
            let mut best: Option<(K, V)> = None;
            let mut cur = root;
            // SAFETY: snapshot traversal as above.
            unsafe {
                while !cur.is_null() {
                    if (*cur).key < *key {
                        best = Some(((*cur).key.clone(), (*cur).value.clone()));
                        cur = (*cur).right;
                    } else {
                        cur = (*cur).left;
                    }
                }
            }
            best
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus_api::testkit;
    use citrus_rcu::GlobalLockRcu;

    type Tree = BonsaiTree<u64, u64>;

    /// Recursively checks the weight-balance invariant and BST order.
    fn check_balance(t: *mut BNode<u64, u64>, lo: Option<u64>, hi: Option<u64>) -> usize {
        if t.is_null() {
            return 0;
        }
        unsafe {
            let k = (*t).key;
            assert!(lo.is_none_or(|lo| k > lo), "BST order violated");
            assert!(hi.is_none_or(|hi| k < hi), "BST order violated");
            let ls = check_balance((*t).left, lo, Some(k));
            let rs = check_balance((*t).right, Some(k), hi);
            assert_eq!((*t).size, 1 + ls + rs, "size field corrupted");
            if ls + rs > 1 {
                assert!(
                    rs <= DELTA * ls && ls <= DELTA * rs,
                    "weight invariant violated: ls={ls} rs={rs}"
                );
            }
            1 + ls + rs
        }
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in 0..2_000u64 {
            assert!(s.insert(k, k));
        }
        drop(s);
        let n = check_balance(tree.root.load(Ordering::Relaxed), None, None);
        assert_eq!(n, 2_000);
    }

    #[test]
    fn stays_balanced_under_deletes() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in 0..1_000u64 {
            s.insert(k, k);
        }
        for k in (0..1_000u64).step_by(3) {
            assert!(s.remove(&k));
        }
        drop(s);
        check_balance(tree.root.load(Ordering::Relaxed), None, None);
    }

    #[test]
    fn sequential_model() {
        testkit::check_sequential_model(&Tree::new(), 6_000, 256, 0xB0A5);
        testkit::check_duplicate_inserts(&Tree::new());
    }

    #[test]
    fn concurrent_battery() {
        testkit::check_lost_updates(&Tree::new(), 8, 300);
        testkit::check_partitioned_determinism(&Tree::new(), 8, 2_500, 64);
        testkit::check_mixed_quiescent_consistency(&Tree::new(), 8, 2_500, 128);
    }

    #[test]
    fn works_with_global_lock_rcu() {
        let tree: BonsaiTree<u64, u64, GlobalLockRcu> = BonsaiTree::new();
        testkit::check_sequential_model(&tree, 2_000, 128, 0xB0A6);
    }

    #[test]
    fn arena_grows_with_updates() {
        // Bonsai's signature cost: path copying allocates on every update.
        let tree = Tree::new();
        let mut s = tree.session();
        for k in 0..100u64 {
            s.insert(k, k);
        }
        let after_inserts = tree.arena_len();
        assert!(after_inserts >= 100);
        for k in 0..100u64 {
            s.remove(&k);
        }
        drop(s);
        assert!(
            tree.arena_len() > after_inserts,
            "deletes must also path-copy"
        );
    }

    #[test]
    fn ordered_reads_on_snapshots() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in 0..100u64 {
            s.insert(k * 10, k);
        }
        let scan = s.range_scan(&100, &190);
        assert_eq!(scan.len(), 10);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(scan.first(), Some(&(100, 10)));
        assert_eq!(scan.last(), Some(&(190, 19)));
        assert_eq!(s.range_scan(&191, &199), vec![]);
        assert_eq!(s.range_scan(&190, &100), vec![]);
        assert_eq!(s.successor(&105), Some((110, 11)));
        assert_eq!(s.successor(&990), None);
        assert_eq!(s.predecessor(&105), Some((100, 10)));
        assert_eq!(s.predecessor(&0), None);
        // Full-range scan matches the whole contents, in order.
        let all = s.range_scan(&0, &u64::MAX);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tree>();
    }
}
