//! Lock-free external binary search tree with edge flagging (Natarajan &
//! Mittal, *Fast concurrent lock-free binary search trees*, PPoPP 2014) —
//! the paper's "Lock-Free" baseline.
//!
//! An **external** tree: keys live in leaves; internal nodes are routing
//! nodes. All synchronization is on *edges* (child pointers), each packing
//! two bits:
//!
//! * **FLAG** — the leaf below this edge is being deleted;
//! * **TAG** — the edge is pinned (it is the sibling edge of a flagged
//!   leaf and must not change until the splice completes).
//!
//! `insert` adds an (internal, leaf) pair with one CAS. `delete` runs in
//! two phases: *injection* (CAS the flag onto the parent→leaf edge — the
//! linearization point) and *cleanup* (tag the sibling edge, then one CAS
//! at the *ancestor* splices out the whole flagged chain). Any operation
//! that trips over a flagged or tagged edge helps complete the delete and
//! retries — no locks anywhere, and `contains` never even writes.
//!
//! Nodes are recorded in an arena at allocation and freed when the tree
//! drops (the paper's no-reclamation methodology).

use crate::graveyard::Graveyard;
use citrus_api::{ConcurrentMap, MapSession};
use citrus_chaos as chaos;
use core::cmp::Ordering as CmpOrdering;
use core::fmt;
use core::marker::PhantomData;
use core::sync::atomic::{AtomicUsize, Ordering};

const FLAG: usize = 1;
const TAG: usize = 2;
const BITS: usize = FLAG | TAG;

/// A key extended with the three sentinel keys ∞₀ < ∞₁ < ∞₂, all larger
/// than every real key.
#[derive(Clone, Debug, PartialEq, Eq)]
enum NmKey<K> {
    Key(K),
    Inf(u8),
}

impl<K: Ord> NmKey<K> {
    /// `true` if a search for `key` should descend left of a node with
    /// this key (left subtree holds keys strictly smaller than the node
    /// key; equal keys go right).
    fn search_goes_left(&self, key: &K) -> bool {
        match self {
            NmKey::Key(k) => key < k,
            NmKey::Inf(_) => true,
        }
    }

    fn cmp_key(&self, key: &K) -> CmpOrdering {
        match self {
            NmKey::Key(k) => k.cmp(key),
            NmKey::Inf(_) => CmpOrdering::Greater,
        }
    }
}

impl<K: Ord> PartialOrd for NmKey<K> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for NmKey<K> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        match (self, other) {
            (NmKey::Key(a), NmKey::Key(b)) => a.cmp(b),
            (NmKey::Key(_), NmKey::Inf(_)) => CmpOrdering::Less,
            (NmKey::Inf(_), NmKey::Key(_)) => CmpOrdering::Greater,
            (NmKey::Inf(a), NmKey::Inf(b)) => a.cmp(b),
        }
    }
}

struct NmNode<K, V> {
    key: NmKey<K>,
    /// `Some` only in key-carrying leaves.
    value: Option<V>,
    /// Packed edges `ptr | FLAG? | TAG?`; `0` in leaves.
    child: [AtomicUsize; 2],
}

impl<K, V> NmNode<K, V> {
    fn leaf(key: NmKey<K>, value: Option<V>) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value,
            child: [AtomicUsize::new(0), AtomicUsize::new(0)],
        }))
    }

    fn internal(key: NmKey<K>, left: *mut Self, right: *mut Self) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value: None,
            child: [
                AtomicUsize::new(left as usize),
                AtomicUsize::new(right as usize),
            ],
        }))
    }

    fn is_internal(&self) -> bool {
        self.child[0].load(Ordering::Acquire) != 0
    }
}

fn ptr_of<K, V>(word: usize) -> *mut NmNode<K, V> {
    (word & !BITS) as *mut NmNode<K, V>
}

fn flag_of(word: usize) -> usize {
    word & FLAG
}

fn tag_of(word: usize) -> usize {
    word & TAG
}

/// Result of a `seek`.
struct SeekRecord<K, V> {
    /// Deepest node on the path whose outgoing edge toward the leaf is
    /// untagged.
    ancestor: *mut NmNode<K, V>,
    /// The node below that untagged edge.
    successor: *mut NmNode<K, V>,
    /// The leaf's parent.
    parent: *mut NmNode<K, V>,
    /// The terminal leaf.
    leaf: *mut NmNode<K, V>,
}

/// The lock-free external BST. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_baselines::LockFreeBst;
/// use citrus_api::{ConcurrentMap, MapSession};
///
/// let tree: LockFreeBst<u64, u64> = LockFreeBst::new();
/// let mut s = tree.session();
/// assert!(s.insert(5, 50));
/// assert_eq!(s.get(&5), Some(50));
/// assert!(s.remove(&5));
/// ```
pub struct LockFreeBst<K, V> {
    /// Root sentinel `R` (key ∞₂); `R.left = S` (key ∞₁).
    root: *mut NmNode<K, V>,
    /// Every node ever allocated; freed at drop.
    arena: Graveyard<NmNode<K, V>>,
}

// SAFETY: all shared state is atomics; nodes are never freed before drop.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for LockFreeBst<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for LockFreeBst<K, V> {}

impl<K, V> LockFreeBst<K, V> {
    /// Creates an empty tree (the five-node sentinel frame).
    pub fn new() -> Self {
        let arena = Graveyard::new();
        let l0 = NmNode::leaf(NmKey::Inf(0), None);
        let l1 = NmNode::leaf(NmKey::Inf(1), None);
        let l2 = NmNode::leaf(NmKey::Inf(2), None);
        let s = NmNode::internal(NmKey::Inf(1), l0, l1);
        let r = NmNode::internal(NmKey::Inf(2), s, l2);
        // SAFETY: fresh allocations, recorded exactly once.
        unsafe {
            for n in [l0, l1, l2, s, r] {
                arena.push(n);
            }
        }
        Self { root: r, arena }
    }

    /// Total nodes ever allocated and still held (diagnostics).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }
}

impl<K, V> Default for LockFreeBst<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: fmt::Debug, V> fmt::Debug for LockFreeBst<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFreeBst")
            .field("arena_nodes", &self.arena_len())
            .finish_non_exhaustive()
    }
}

impl<K, V> LockFreeBst<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    /// Child slot index a search for `key` follows at `node`.
    fn dir(node: &NmNode<K, V>, key: &K) -> usize {
        usize::from(!node.key.search_goes_left(key))
    }

    /// Top-down traversal to the leaf for `key`, tracking the NM seek
    /// record (ancestor/successor span the deepest untagged edge).
    fn seek(&self, key: &K) -> SeekRecord<K, V> {
        // SAFETY (whole fn): nodes are never freed while the tree lives.
        unsafe {
            let r = self.root;
            let mut ancestor = r;
            let mut successor = ptr_of::<K, V>((*r).child[0].load(Ordering::Acquire));
            let mut parent = successor;
            let mut edge_word =
                (*successor).child[Self::dir(&*successor, key)].load(Ordering::Acquire);
            let mut current = ptr_of::<K, V>(edge_word);
            while (*current).is_internal() {
                if tag_of(edge_word) == 0 {
                    ancestor = parent;
                    successor = current;
                }
                parent = current;
                edge_word = (*current).child[Self::dir(&*current, key)].load(Ordering::Acquire);
                current = ptr_of::<K, V>(edge_word);
            }
            SeekRecord {
                ancestor,
                successor,
                parent,
                leaf: current,
            }
        }
    }

    /// NM cleanup: completes the physical removal of a flagged leaf under
    /// `s.parent` by splicing `s.successor..s.parent` out at `s.ancestor`.
    /// Returns `true` if this call performed the splice.
    fn cleanup(&self, key: &K, s: &SeekRecord<K, V>) -> bool {
        // SAFETY (whole fn): nodes never freed while the tree lives.
        unsafe {
            let ancestor = &*s.ancestor;
            let parent = &*s.parent;
            let anc_dir = Self::dir(ancestor, key);
            let child_dir = Self::dir(parent, key);
            let sibling_dir = 1 - child_dir;

            // If the edge to the key's leaf is flagged, the sibling
            // survives; otherwise the delete being helped flagged the
            // *sibling* edge, and the key's own branch survives.
            let pinned_dir = if flag_of(parent.child[child_dir].load(Ordering::Acquire)) != 0 {
                sibling_dir
            } else {
                child_dir
            };

            // Pin the surviving edge so it cannot change during the splice.
            let sibling_word = parent.child[pinned_dir].fetch_or(TAG, Ordering::AcqRel) | TAG;
            let sibling_ptr = ptr_of::<K, V>(sibling_word);
            // Promote the sibling, preserving its flag (a pending delete of
            // the sibling leaf keeps going after the splice).
            let new_word = sibling_ptr as usize | flag_of(sibling_word);
            ancestor.child[anc_dir]
                .compare_exchange(
                    s.successor as usize,
                    new_word,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
        }
    }

    fn get_inner(&self, key: &K) -> Option<V> {
        // SAFETY: nodes never freed while the tree lives; leaf values are
        // immutable.
        unsafe {
            let mut current = self.root;
            while (*current).is_internal() {
                let word = (*current).child[Self::dir(&*current, key)].load(Ordering::Acquire);
                current = ptr_of::<K, V>(word);
            }
            if (*current).key.cmp_key(key) == CmpOrdering::Equal {
                (*current).value.clone()
            } else {
                None
            }
        }
    }

    fn insert_inner(&self, key: K, value: V) -> bool {
        let mut payload = Some(value);
        loop {
            let s = self.seek(&key);
            // SAFETY: nodes never freed while the tree lives.
            unsafe {
                let leaf = &*s.leaf;
                if leaf.key.cmp_key(&key) == CmpOrdering::Equal {
                    return false;
                }
                let parent = &*s.parent;
                let dir = Self::dir(parent, &key);
                let expected = s.leaf as usize; // clean edge
                let new_leaf = NmNode::leaf(
                    NmKey::Key(key.clone()),
                    Some(payload.take().expect("one shot")),
                );
                // Order the two leaves under a fresh routing node.
                let new_internal = if leaf.key.search_goes_left(&key) {
                    // key < leaf.key: routing key is leaf.key; key goes left.
                    NmNode::internal(leaf.key.clone(), new_leaf, s.leaf)
                } else {
                    NmNode::internal(NmKey::Key(key.clone()), s.leaf, new_leaf)
                };
                self.arena.push(new_leaf);
                self.arena.push(new_internal);
                // The seek→CAS window: the edge may be flagged or replaced
                // first, failing the CAS below.
                chaos::point!("baseline-lockfree/insert/before-cas");
                match parent.child[dir].compare_exchange(
                    expected,
                    new_internal as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return true,
                    Err(now) => {
                        // The new pair stays in the arena (freed at drop);
                        // recover the value and retry.
                        payload = (*new_leaf).value.take();
                        if ptr_of::<K, V>(now) == s.leaf && (now & BITS) != 0 {
                            // The leaf is being deleted: help, then retry.
                            self.cleanup(&key, &s);
                        }
                    }
                }
            }
        }
    }

    fn remove_inner(&self, key: &K) -> bool {
        let mut injected = false;
        let mut target: *mut NmNode<K, V> = core::ptr::null_mut();
        loop {
            let s = self.seek(key);
            // SAFETY: nodes never freed while the tree lives.
            unsafe {
                if !injected {
                    // Injection phase.
                    let leaf = s.leaf;
                    if (*leaf).key.cmp_key(key) != CmpOrdering::Equal {
                        return false;
                    }
                    let parent = &*s.parent;
                    let dir = Self::dir(parent, key);
                    // The seek→CAS window for the injection flag.
                    chaos::point!("baseline-lockfree/remove/before-cas");
                    match parent.child[dir].compare_exchange(
                        leaf as usize,
                        leaf as usize | FLAG,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            // Linearization point of a successful delete.
                            injected = true;
                            target = leaf;
                            if self.cleanup(key, &s) {
                                return true;
                            }
                        }
                        Err(now) => {
                            if ptr_of::<K, V>(now) == leaf && flag_of(now) != 0 {
                                // Another delete of this same leaf won.
                                return false;
                            }
                            if ptr_of::<K, V>(now) == leaf && tag_of(now) != 0 {
                                // Edge pinned by a neighboring delete:
                                // help it finish, then retry.
                                self.cleanup(key, &s);
                            }
                            // Otherwise the tree changed; re-seek.
                        }
                    }
                } else {
                    // Cleanup phase: retry until our leaf is unlinked.
                    if s.leaf != target {
                        // Someone else completed the splice for us.
                        return true;
                    }
                    if self.cleanup(key, &s) {
                        return true;
                    }
                }
            }
        }
    }
}

impl<K, V> ConcurrentMap<K, V> for LockFreeBst<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    type Session<'a>
        = LockFreeSession<'a, K, V>
    where
        Self: 'a;

    const NAME: &'static str = "bst-lockfree";

    fn session(&self) -> LockFreeSession<'_, K, V> {
        LockFreeSession {
            tree: self,
            _not_send: PhantomData,
        }
    }
}

/// Per-thread handle to a [`LockFreeBst`] (stateless; the structure keeps
/// no per-thread data).
pub struct LockFreeSession<'t, K, V> {
    tree: &'t LockFreeBst<K, V>,
    _not_send: PhantomData<*mut ()>,
}

impl<K, V> fmt::Debug for LockFreeSession<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFreeSession").finish_non_exhaustive()
    }
}

impl<K, V> MapSession<K, V> for LockFreeSession<'_, K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    fn get(&mut self, key: &K) -> Option<V> {
        self.tree.get_inner(key)
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        self.tree.insert_inner(key, value)
    }

    fn remove(&mut self, key: &K) -> bool {
        self.tree.remove_inner(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus_api::testkit;

    type Tree = LockFreeBst<u64, u64>;

    #[test]
    fn empty_tree() {
        let t = Tree::new();
        let mut s = t.session();
        assert_eq!(s.get(&1), None);
        assert!(!s.remove(&1));
        assert_eq!(t.arena_len(), 5, "sentinel frame is five nodes");
    }

    #[test]
    fn external_structure_insert_delete() {
        let t = Tree::new();
        let mut s = t.session();
        assert!(s.insert(5, 50));
        assert!(s.insert(3, 30));
        assert!(s.insert(7, 70));
        assert!(!s.insert(5, 51));
        assert_eq!(s.get(&5), Some(50));
        assert!(s.remove(&5));
        assert_eq!(s.get(&5), None);
        assert_eq!(s.get(&3), Some(30));
        assert_eq!(s.get(&7), Some(70));
        assert!(s.remove(&3));
        assert!(s.remove(&7));
        assert!(!s.remove(&7));
    }

    #[test]
    fn sequential_model() {
        testkit::check_sequential_model(&Tree::new(), 6_000, 256, 0x10CF);
        testkit::check_duplicate_inserts(&Tree::new());
    }

    #[test]
    fn concurrent_battery() {
        testkit::check_lost_updates(&Tree::new(), 8, 300);
        testkit::check_partitioned_determinism(&Tree::new(), 8, 3_000, 64);
        testkit::check_mixed_quiescent_consistency(&Tree::new(), 8, 3_000, 128);
    }

    #[test]
    fn contended_same_key_deletes() {
        // Exactly one of N concurrent delete(k) calls may succeed.
        use std::sync::atomic::{AtomicU64, Ordering as AO};
        use std::sync::Barrier;
        const ROUNDS: u64 = 200;
        const THREADS: usize = 4;
        let t = Tree::new();
        for round in 0..ROUNDS {
            {
                let mut s = t.session();
                assert!(s.insert(round, round));
            }
            let wins = AtomicU64::new(0);
            let barrier = Barrier::new(THREADS);
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    let (t, wins, barrier) = (&t, &wins, &barrier);
                    scope.spawn(move || {
                        let mut s = t.session();
                        barrier.wait();
                        if s.remove(&round) {
                            wins.fetch_add(1, AO::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(wins.load(AO::Relaxed), 1, "round {round}");
        }
    }

    #[test]
    fn insert_delete_same_key_interleaved() {
        // Concurrent insert(k)/delete(k) pairs: the map must stay
        // consistent and every operation must report a sane result.
        use std::sync::Barrier;
        let t = Tree::new();
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let (ta, ba) = (&t, &barrier);
            scope.spawn(move || {
                let mut s = ta.session();
                ba.wait();
                for i in 0..2_000u64 {
                    s.insert(42, i);
                }
            });
            let (tb, bb) = (&t, &barrier);
            scope.spawn(move || {
                let mut s = tb.session();
                bb.wait();
                for _ in 0..2_000u64 {
                    s.remove(&42);
                }
            });
        });
        let mut s = t.session();
        let present = s.get(&42).is_some();
        assert_eq!(s.remove(&42), present);
        assert_eq!(s.get(&42), None);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tree>();
    }
}
