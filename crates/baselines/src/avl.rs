//! Optimistic relaxed-balance AVL tree (after Bronson, Casper, Chafi,
//! Olukotun, *A practical concurrent binary search tree*, PPoPP 2010) —
//! the paper's "AVL" baseline.
//!
//! Key mechanisms reproduced from the original:
//!
//! * **Partially external**: a delete of a node with two children merely
//!   clears its value, leaving a *routing* node; routing nodes with at
//!   most one child are unlinked during rebalancing.
//! * **Per-node version numbers** with a `SHRINKING` bit: a rotation marks
//!   the node that moves down (whose key range *narrows* — the only
//!   direction that can cause a search to miss a key) as shrinking, and
//!   bumps its version afterwards. Optimistic readers hand-over-hand
//!   validate versions and retry when a node they traversed shrank.
//! * **Fine-grained locking**: updates lock only the affected node (plus
//!   its parent for unlinks), rotations lock the rotation triangle.
//! * **Relaxed balance**: heights are fixed up bottom-up after the fact;
//!   the tree converges toward AVL shape rather than maintaining it
//!   atomically.
//!
//! Simplification relative to the original (documented in DESIGN.md):
//! failed optimistic validation retries from the root rather than
//! backtracking partially; this costs retries under contention, not
//! correctness.
//!
//! Nodes live in an arena; replaced values go to a value graveyard (no
//! reclamation during runs, per the paper's methodology).

use crate::graveyard::Graveyard;
use citrus_api::{ConcurrentMap, MapSession};
use citrus_chaos as chaos;
use citrus_sync::{Backoff, RawSpinLock};
use core::cmp::Ordering as CmpOrdering;
use core::fmt;
use core::marker::PhantomData;
use core::ptr;
use core::sync::atomic::{AtomicI32, AtomicPtr, AtomicU64, Ordering};

const UNLINKED: u64 = 1;
const SHRINKING: u64 = 2;
const VERSION_STEP: u64 = 4;

const L: usize = 0;
const R: usize = 1;

struct AvlNode<K, V> {
    /// `None` only in the root holder.
    key: Option<K>,
    /// Null ⇒ routing node (partially external).
    value: AtomicPtr<V>,
    /// `(counter << 2) | SHRINKING? | UNLINKED?`.
    version: AtomicU64,
    height: AtomicI32,
    child: [AtomicPtr<AvlNode<K, V>>; 2],
    parent: AtomicPtr<AvlNode<K, V>>,
    lock: RawSpinLock,
}

impl<K, V> AvlNode<K, V> {
    fn alloc(key: Option<K>, value: *mut V, parent: *mut Self) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value: AtomicPtr::new(value),
            version: AtomicU64::new(0),
            height: AtomicI32::new(1),
            child: [
                AtomicPtr::new(ptr::null_mut()),
                AtomicPtr::new(ptr::null_mut()),
            ],
            parent: AtomicPtr::new(parent),
            lock: RawSpinLock::new(),
        }))
    }
}

impl<K, V> Drop for AvlNode<K, V> {
    fn drop(&mut self) {
        let v = *self.value.get_mut();
        if !v.is_null() {
            // SAFETY: the node owns its current value box; replaced values
            // were retired to the value graveyard instead.
            unsafe { drop(Box::from_raw(v)) };
        }
    }
}

/// The optimistic AVL tree. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_baselines::OptimisticAvlTree;
/// use citrus_api::{ConcurrentMap, MapSession};
///
/// let tree: OptimisticAvlTree<u64, u64> = OptimisticAvlTree::new();
/// let mut s = tree.session();
/// assert!(s.insert(4, 40));
/// assert_eq!(s.get(&4), Some(40));
/// ```
pub struct OptimisticAvlTree<K, V> {
    /// Sentinel above the real root (its right child); lockable like any
    /// node, which makes root rotations uniform.
    root_holder: *mut AvlNode<K, V>,
    /// Every node ever allocated; freed at drop.
    arena: Graveyard<AvlNode<K, V>>,
    /// Replaced value boxes (remove/convert-to-routing); freed at drop.
    value_graveyard: Graveyard<V>,
}

// SAFETY: concurrent container; shared mutation via atomics + per-node
// locks; nothing freed before drop.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for OptimisticAvlTree<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for OptimisticAvlTree<K, V> {}

impl<K, V> OptimisticAvlTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        let arena = Graveyard::new();
        let holder = AvlNode::alloc(None, ptr::null_mut(), ptr::null_mut());
        // SAFETY: fresh allocation, recorded once.
        unsafe { arena.push(holder) };
        Self {
            root_holder: holder,
            arena,
            value_graveyard: Graveyard::new(),
        }
    }

    /// Total nodes ever allocated and still held (diagnostics).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }
}

impl<K, V> Default for OptimisticAvlTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: fmt::Debug, V> fmt::Debug for OptimisticAvlTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OptimisticAvlTree")
            .field("arena_nodes", &self.arena_len())
            .finish_non_exhaustive()
    }
}

/// Outcome of a validated optimistic descent.
enum Located<K, V> {
    /// A node carrying the key (may be a routing node).
    Node(*mut AvlNode<K, V>),
    /// No node with the key; `(prev, prev_version, dir)` names the null
    /// slot where it would be attached.
    Miss(*mut AvlNode<K, V>, u64, usize),
}

impl<K, V> OptimisticAvlTree<K, V>
where
    K: Ord + Clone,
    V: Clone,
{
    fn height(n: *mut AvlNode<K, V>) -> i32 {
        if n.is_null() {
            0
        } else {
            // SAFETY: nodes live until drop.
            unsafe { (*n).height.load(Ordering::Relaxed) }
        }
    }

    fn dir_of(p: *mut AvlNode<K, V>, n: *mut AvlNode<K, V>) -> Option<usize> {
        // SAFETY: nodes live until drop.
        unsafe {
            if (*p).child[L].load(Ordering::Acquire) == n {
                Some(L)
            } else if (*p).child[R].load(Ordering::Acquire) == n {
                Some(R)
            } else {
                None
            }
        }
    }

    /// Optimistic hand-over-hand validated descent; retries from the root
    /// whenever a traversed node shrank under us.
    fn locate(&self, key: &K) -> Located<K, V> {
        let backoff = Backoff::new();
        // SAFETY (whole fn): nodes live until drop; all loads atomic.
        unsafe {
            'retry: loop {
                // A descent paused here races full rebalances at the root.
                chaos::point!("baseline-avl/locate/retry");
                let mut prev = self.root_holder;
                let mut prev_v = (*prev).version.load(Ordering::Acquire);
                let mut dir = R;
                loop {
                    let curr = (*prev).child[dir].load(Ordering::Acquire);
                    // Validate the read against prev's version.
                    if (*prev).version.load(Ordering::Acquire) != prev_v {
                        continue 'retry;
                    }
                    if curr.is_null() {
                        return Located::Miss(prev, prev_v, dir);
                    }
                    // Wait out an in-flight shrink, reject unlinked nodes.
                    let curr_v = loop {
                        let v = (*curr).version.load(Ordering::Acquire);
                        if v & SHRINKING != 0 {
                            backoff.snooze();
                            continue;
                        }
                        if v & UNLINKED != 0 {
                            continue 'retry;
                        }
                        break v;
                    };
                    // The link and prev must both still be what we used.
                    if (*prev).child[dir].load(Ordering::Acquire) != curr
                        || (*prev).version.load(Ordering::Acquire) != prev_v
                    {
                        continue 'retry;
                    }
                    let ck = (*curr).key.as_ref().expect("only the holder lacks a key");
                    match key.cmp(ck) {
                        CmpOrdering::Equal => return Located::Node(curr),
                        CmpOrdering::Less => dir = L,
                        CmpOrdering::Greater => dir = R,
                    }
                    prev = curr;
                    prev_v = curr_v;
                }
            }
        }
    }

    fn get_inner(&self, key: &K) -> Option<V> {
        match self.locate(key) {
            Located::Miss(..) => None,
            Located::Node(n) => {
                // SAFETY: node lives until drop; value boxes are never
                // freed before drop (value graveyard).
                unsafe {
                    let v = (*n).value.load(Ordering::Acquire);
                    if v.is_null() {
                        None // routing node
                    } else {
                        Some((*v).clone())
                    }
                }
            }
        }
    }

    fn insert_inner(&self, key: K, value: V) -> bool {
        let mut boxed = Box::into_raw(Box::new(value));
        loop {
            match self.locate(&key) {
                Located::Node(n) => {
                    // SAFETY: node lives until drop; fields under its lock.
                    unsafe {
                        (*n).lock.lock();
                        if (*n).version.load(Ordering::Acquire) & UNLINKED != 0 {
                            (*n).lock.unlock();
                            continue;
                        }
                        if (*n).value.load(Ordering::Acquire).is_null() {
                            // Revive the routing node.
                            (*n).value.store(boxed, Ordering::Release);
                            (*n).lock.unlock();
                            return true;
                        }
                        (*n).lock.unlock();
                        // Key present: free our unpublished box.
                        drop(Box::from_raw(boxed));
                        return false;
                    }
                }
                Located::Miss(prev, prev_v, dir) => {
                    // The locate→lock window: `prev` may shrink or gain a
                    // child first, which the version re-check catches.
                    chaos::point!("baseline-avl/insert/before-lock");
                    // SAFETY: as above.
                    unsafe {
                        (*prev).lock.lock();
                        // An unlinked or shrunk prev has a changed version.
                        if (*prev).version.load(Ordering::Acquire) != prev_v
                            || !(*prev).child[dir].load(Ordering::Acquire).is_null()
                        {
                            (*prev).lock.unlock();
                            continue;
                        }
                        let node = AvlNode::alloc(Some(key.clone()), boxed, prev);
                        boxed = ptr::null_mut();
                        self.arena.push(node);
                        (*prev).child[dir].store(node, Ordering::Release);
                        (*prev).lock.unlock();
                        let _ = boxed;
                        self.rebalance_from(prev);
                        return true;
                    }
                }
            }
        }
    }

    fn remove_inner(&self, key: &K) -> bool {
        let backoff = Backoff::new();
        loop {
            match self.locate(key) {
                Located::Miss(..) => return false,
                Located::Node(n) => {
                    // SAFETY (whole arm): nodes live until drop; field
                    // writes under the locks noted.
                    unsafe {
                        let l = (*n).child[L].load(Ordering::Acquire);
                        let r = (*n).child[R].load(Ordering::Acquire);
                        if !l.is_null() && !r.is_null() {
                            // Two children: convert to a routing node.
                            (*n).lock.lock();
                            if (*n).version.load(Ordering::Acquire) & UNLINKED != 0 {
                                (*n).lock.unlock();
                                continue;
                            }
                            if (*n).child[L].load(Ordering::Acquire).is_null()
                                || (*n).child[R].load(Ordering::Acquire).is_null()
                            {
                                // Lost a child meanwhile; take the unlink path.
                                (*n).lock.unlock();
                                continue;
                            }
                            let old = (*n).value.swap(ptr::null_mut(), Ordering::AcqRel);
                            (*n).lock.unlock();
                            if old.is_null() {
                                return false; // was already routing
                            }
                            self.value_graveyard.push(old);
                            return true;
                        }

                        // ≤1 child: unlink the node under parent + node locks.
                        let p = (*n).parent.load(Ordering::Acquire);
                        (*p).lock.lock();
                        let Some(d) = Self::dir_of(p, n) else {
                            // p is no longer n's parent; retry.
                            (*p).lock.unlock();
                            backoff.snooze();
                            continue;
                        };
                        (*n).lock.lock();
                        if (*n).version.load(Ordering::Acquire) & UNLINKED != 0 {
                            (*n).lock.unlock();
                            (*p).lock.unlock();
                            continue;
                        }
                        let l = (*n).child[L].load(Ordering::Acquire);
                        let r = (*n).child[R].load(Ordering::Acquire);
                        if !l.is_null() && !r.is_null() {
                            // Grew a second child; redo as conversion.
                            (*n).lock.unlock();
                            (*p).lock.unlock();
                            continue;
                        }
                        let old = (*n).value.swap(ptr::null_mut(), Ordering::AcqRel);
                        if old.is_null() {
                            // Routing node: the key is absent. Leave the
                            // unlink to rebalancing.
                            (*n).lock.unlock();
                            (*p).lock.unlock();
                            return false;
                        }
                        let c = if l.is_null() { r } else { l };
                        (*p).child[d].store(c, Ordering::Release);
                        if !c.is_null() {
                            (*c).parent.store(p, Ordering::Relaxed);
                        }
                        (*n).version.fetch_or(UNLINKED, Ordering::Release);
                        (*n).lock.unlock();
                        (*p).lock.unlock();
                        self.value_graveyard.push(old);
                        self.rebalance_from(p);
                        return true;
                    }
                }
            }
        }
    }

    /// In-place rotation: `n`'s child in `from` rises above `n`.
    /// Caller holds locks on `p`, `n`, the rising child, and (for the
    /// rising child's transferred subtree's root) nothing — parent-pointer
    /// readers always revalidate via child links.
    ///
    /// # Safety
    ///
    /// `p`, `n` and `n.child[from]` must be locked by the caller, `n` must
    /// be `p`'s child, and the rising child must be non-null.
    unsafe fn rotate(&self, p: *mut AvlNode<K, V>, n: *mut AvlNode<K, V>, from: usize) {
        let to = 1 - from;
        // SAFETY: per contract.
        unsafe {
            let rising = (*n).child[from].load(Ordering::Acquire);
            debug_assert!(!rising.is_null());
            // `n` moves down: its key range narrows — mark shrinking so
            // optimistic readers inside wait/retry.
            let v = (*n).version.load(Ordering::Relaxed);
            (*n).version.store(v | SHRINKING, Ordering::Release);

            let transferred = (*rising).child[to].load(Ordering::Acquire);
            (*n).child[from].store(transferred, Ordering::Release);
            if !transferred.is_null() {
                (*transferred).parent.store(n, Ordering::Relaxed);
            }
            (*rising).child[to].store(n, Ordering::Release);
            let d = Self::dir_of(p, n).expect("caller validated the link");
            (*p).child[d].store(rising, Ordering::Release);
            (*rising).parent.store(p, Ordering::Relaxed);
            (*n).parent.store(rising, Ordering::Relaxed);

            (*n).height.store(
                1 + Self::height((*n).child[L].load(Ordering::Acquire))
                    .max(Self::height((*n).child[R].load(Ordering::Acquire))),
                Ordering::Relaxed,
            );
            (*rising).height.store(
                1 + Self::height((*rising).child[L].load(Ordering::Acquire))
                    .max(Self::height((*rising).child[R].load(Ordering::Acquire))),
                Ordering::Relaxed,
            );
            // Publish the shrink: bump the counter, clear SHRINKING.
            (*n).version.store(v + VERSION_STEP, Ordering::Release);
        }
    }

    /// Bottom-up height fixup, routing-node unlinking, and rotations —
    /// Bronson's `fixHeightAndRebalance` in spirit.
    fn rebalance_from(&self, start: *mut AvlNode<K, V>) {
        let mut node = start;
        let backoff = Backoff::new();
        // SAFETY (whole fn): nodes live until drop; writes under locks.
        unsafe {
            while node != self.root_holder && !node.is_null() {
                if (*node).version.load(Ordering::Acquire) & UNLINKED != 0 {
                    return;
                }
                let p = (*node).parent.load(Ordering::Acquire);
                if p.is_null() {
                    return;
                }
                (*p).lock.lock();
                if Self::dir_of(p, node).is_none()
                    || (*p).version.load(Ordering::Acquire) & UNLINKED != 0
                {
                    (*p).lock.unlock();
                    if (*node).version.load(Ordering::Acquire) & UNLINKED != 0 {
                        return; // someone unlinked it; their rebalance covers us
                    }
                    backoff.snooze();
                    continue;
                }
                (*node).lock.lock();

                let l = (*node).child[L].load(Ordering::Acquire);
                let r = (*node).child[R].load(Ordering::Acquire);

                // Unlink a routing node with ≤1 child (partially external
                // cleanup).
                if (*node).value.load(Ordering::Acquire).is_null() && (l.is_null() || r.is_null()) {
                    let c = if l.is_null() { r } else { l };
                    let d = Self::dir_of(p, node).expect("validated above");
                    (*p).child[d].store(c, Ordering::Release);
                    if !c.is_null() {
                        (*c).parent.store(p, Ordering::Relaxed);
                    }
                    (*node).version.fetch_or(UNLINKED, Ordering::Release);
                    (*node).lock.unlock();
                    (*p).lock.unlock();
                    node = p;
                    continue;
                }

                let (hl, hr) = (Self::height(l), Self::height(r));
                let bal = hl - hr;
                if bal >= 2 || bal <= -2 {
                    // Rotate toward the light side; `heavy` rises.
                    let from = if bal >= 2 { L } else { R };
                    let heavy = if from == L { l } else { r };
                    (*heavy).lock.lock();
                    // Double rotation when the heavy child leans inward.
                    let inner = (*heavy).child[1 - from].load(Ordering::Acquire);
                    let outer = (*heavy).child[from].load(Ordering::Acquire);
                    if Self::height(inner) > Self::height(outer) {
                        (*inner).lock.lock();
                        // First half: inner rises above heavy...
                        self.rotate(node, heavy, 1 - from);
                        // ...second half: inner rises above node.
                        self.rotate(p, node, from);
                        (*inner).lock.unlock();
                    } else {
                        self.rotate(p, node, from);
                    }
                    (*heavy).lock.unlock();
                    (*node).lock.unlock();
                    (*p).lock.unlock();
                    node = p;
                    continue;
                }

                let new_h = 1 + hl.max(hr);
                let changed = (*node).height.load(Ordering::Relaxed) != new_h;
                if changed {
                    (*node).height.store(new_h, Ordering::Relaxed);
                }
                (*node).lock.unlock();
                (*p).lock.unlock();
                if !changed {
                    return;
                }
                node = p;
            }
        }
    }
}

impl<K, V> ConcurrentMap<K, V> for OptimisticAvlTree<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    type Session<'a>
        = AvlSession<'a, K, V>
    where
        Self: 'a;

    const NAME: &'static str = "avl-optimistic";

    fn session(&self) -> AvlSession<'_, K, V> {
        AvlSession {
            tree: self,
            _not_send: PhantomData,
        }
    }
}

/// Per-thread handle to an [`OptimisticAvlTree`] (stateless).
pub struct AvlSession<'t, K, V> {
    tree: &'t OptimisticAvlTree<K, V>,
    _not_send: PhantomData<*mut ()>,
}

impl<K, V> fmt::Debug for AvlSession<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AvlSession").finish_non_exhaustive()
    }
}

impl<K, V> MapSession<K, V> for AvlSession<'_, K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    fn get(&mut self, key: &K) -> Option<V> {
        self.tree.get_inner(key)
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        self.tree.insert_inner(key, value)
    }

    fn remove(&mut self, key: &K) -> bool {
        self.tree.remove_inner(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus_api::testkit;

    type Tree = OptimisticAvlTree<u64, u64>;

    /// Quiescent audit: BST order, parent links, height bookkeeping, and
    /// relaxed balance (|bal| ≤ 2 transiently; after quiescent rebalancing
    /// runs it should be ≤ 1 almost everywhere — we assert the recorded
    /// heights are *consistent*, which is the structural invariant).
    fn audit(t: *mut AvlNode<u64, u64>, lo: Option<u64>, hi: Option<u64>) -> i32 {
        if t.is_null() {
            return 0;
        }
        unsafe {
            let k = *(*t).key.as_ref().unwrap();
            assert!(lo.is_none_or(|lo| k > lo), "order violated at {k}");
            assert!(hi.is_none_or(|hi| k < hi), "order violated at {k}");
            assert_eq!(
                (*t).version.load(Ordering::Relaxed) & (UNLINKED | SHRINKING),
                0,
                "reachable node unlinked/shrinking at quiescence"
            );
            let l = (*t).child[L].load(Ordering::Relaxed);
            let r = (*t).child[R].load(Ordering::Relaxed);
            for c in [l, r] {
                if !c.is_null() {
                    assert_eq!((*c).parent.load(Ordering::Relaxed), t, "parent link broken");
                }
            }
            let hl = audit(l, lo, Some(k));
            let hr = audit(r, Some(k), hi);
            1 + hl.max(hr)
        }
    }

    fn audit_tree(tree: &Tree) -> i32 {
        unsafe {
            let root = (*tree.root_holder).child[R].load(Ordering::Relaxed);
            audit(root, None, None)
        }
    }

    #[test]
    fn ascending_inserts_stay_shallow() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in 0..1_024u64 {
            assert!(s.insert(k, k));
        }
        for k in 0..1_024u64 {
            assert_eq!(s.get(&k), Some(k));
        }
        let _ = s;
        let h = audit_tree(&tree);
        assert!(
            h <= 2 * 11,
            "relaxed-balance height {h} way beyond AVL bound for 1024 keys"
        );
    }

    #[test]
    fn routing_node_semantics() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in [50, 25, 75, 10, 30, 60, 90] {
            s.insert(k, k);
        }
        // 50 has two children: delete converts it to a routing node.
        assert!(s.remove(&50));
        assert_eq!(s.get(&50), None);
        assert!(!s.remove(&50), "routing node must read as absent");
        // Reinsert revives the routing node.
        assert!(s.insert(50, 500));
        assert_eq!(s.get(&50), Some(500));
        let _ = s;
        audit_tree(&tree);
    }

    #[test]
    fn sequential_model() {
        testkit::check_sequential_model(&Tree::new(), 6_000, 256, 0xAB1E);
        testkit::check_duplicate_inserts(&Tree::new());
    }

    #[test]
    fn concurrent_battery() {
        testkit::check_lost_updates(&Tree::new(), 8, 300);
        testkit::check_partitioned_determinism(&Tree::new(), 8, 3_000, 64);
        testkit::check_mixed_quiescent_consistency(&Tree::new(), 8, 3_000, 128);
    }

    #[test]
    fn structure_valid_after_concurrent_churn() {
        let tree = Tree::new();
        testkit::check_mixed_quiescent_consistency(&tree, 8, 4_000, 128);
        audit_tree(&tree);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tree>();
    }
}
