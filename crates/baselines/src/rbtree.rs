//! Relativistic red-black tree (Howard & Walpole, *Relativistic red-black
//! trees*, CCPE 2013) — the paper's "Red-Black" baseline.
//!
//! The relativistic-programming recipe:
//!
//! * Updates are serialized by a **global update lock** — "they all do not
//!   allow concurrent updates" is precisely the weakness Citrus fixes.
//! * Readers traverse lock-free inside an RCU read-side critical section.
//! * A structural change that could misdirect a concurrent reader is done
//!   on a **copy**: rotations allocate a copy of the node that moves down
//!   (the original keeps valid outgoing pointers for stale readers), and a
//!   two-child delete installs a copy of the successor at the deleted
//!   node's position, calls `synchronize_rcu`, and only then unlinks the
//!   old successor — the same false-negative avoidance Citrus borrows.
//! * Recoloring and parent pointers are writer-private state (readers
//!   never look at them), so they are updated in place under the lock.
//!
//! Replaced/removed nodes go to the graveyard (no reclamation during
//! runs, per the paper's methodology).

use crate::graveyard::Graveyard;
use citrus_api::{ConcurrentMap, MapSession};
use citrus_chaos as chaos;
use citrus_rcu::{RcuFlavor, RcuHandle, ScalableRcu};
use citrus_sync::SpinMutex;
use core::cmp::Ordering as CmpOrdering;
use core::fmt;
use core::ptr;
use core::sync::atomic::{AtomicPtr, AtomicU8, Ordering};

const RED: u8 = 0;
const BLACK: u8 = 1;

const L: usize = 0;
const R: usize = 1;

struct RbNode<K, V> {
    key: K,
    value: V,
    /// Writer-only (readers never consult colors).
    color: AtomicU8,
    child: [AtomicPtr<RbNode<K, V>>; 2],
    /// Writer-only (readers never walk upward).
    parent: AtomicPtr<RbNode<K, V>>,
}

impl<K, V> RbNode<K, V> {
    fn alloc(
        key: K,
        value: V,
        color: u8,
        left: *mut Self,
        right: *mut Self,
        parent: *mut Self,
    ) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value,
            color: AtomicU8::new(color),
            child: [AtomicPtr::new(left), AtomicPtr::new(right)],
            parent: AtomicPtr::new(parent),
        }))
    }
}

/// The relativistic red-black tree. See the module-level documentation.
///
/// # Example
///
/// ```
/// use citrus_baselines::RelativisticRbTree;
/// use citrus_api::{ConcurrentMap, MapSession};
///
/// let tree: RelativisticRbTree<u64, u64> = RelativisticRbTree::new();
/// let mut s = tree.session();
/// assert!(s.insert(2, 20));
/// assert_eq!(s.get(&2), Some(20));
/// ```
pub struct RelativisticRbTree<K, V, F: RcuFlavor = ScalableRcu> {
    root: AtomicPtr<RbNode<K, V>>,
    /// The global update lock: at most one writer at any time.
    write_lock: SpinMutex<()>,
    graveyard: Graveyard<RbNode<K, V>>,
    rcu: F,
}

// SAFETY: readers use only atomics on key/value-carrying fields; all
// writes happen under the global lock; retired nodes outlive readers
// (graveyard).
unsafe impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> Send for RelativisticRbTree<K, V, F> {}
unsafe impl<K: Send + Sync, V: Send + Sync, F: RcuFlavor> Sync for RelativisticRbTree<K, V, F> {}

impl<K, V, F: RcuFlavor> RelativisticRbTree<K, V, F> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: AtomicPtr::new(ptr::null_mut()),
            write_lock: SpinMutex::new(()),
            graveyard: Graveyard::new(),
            rcu: F::new(),
        }
    }

    /// Unreclaimed retired nodes (diagnostics).
    pub fn graveyard_len(&self) -> usize {
        self.graveyard.len()
    }
}

impl<K, V, F: RcuFlavor> Default for RelativisticRbTree<K, V, F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, F: RcuFlavor> Drop for RelativisticRbTree<K, V, F> {
    fn drop(&mut self) {
        let mut stack = vec![self.root.load(Ordering::Relaxed)];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            // SAFETY: exclusive access; retired nodes are unreachable from
            // the root, so no double visits.
            unsafe {
                stack.push((*p).child[L].load(Ordering::Relaxed));
                stack.push((*p).child[R].load(Ordering::Relaxed));
                drop(Box::from_raw(p));
            }
        }
    }
}

impl<K: fmt::Debug, V, F: RcuFlavor> fmt::Debug for RelativisticRbTree<K, V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RelativisticRbTree")
            .field("graveyard", &self.graveyard_len())
            .finish_non_exhaustive()
    }
}

/// Writer-side helpers. Everything in this impl must be called with the
/// global write lock held.
impl<K, V, F> RelativisticRbTree<K, V, F>
where
    K: Ord + Clone,
    V: Clone,
    F: RcuFlavor,
{
    fn color(n: *mut RbNode<K, V>) -> u8 {
        if n.is_null() {
            BLACK
        } else {
            // SAFETY: live node; writer-only field.
            unsafe { (*n).color.load(Ordering::Relaxed) }
        }
    }

    fn set_color(n: *mut RbNode<K, V>, c: u8) {
        debug_assert!(!n.is_null());
        // SAFETY: live node; writer-only field.
        unsafe { (*n).color.store(c, Ordering::Relaxed) };
    }

    fn parent(n: *mut RbNode<K, V>) -> *mut RbNode<K, V> {
        // SAFETY: live node; writer-only field.
        unsafe { (*n).parent.load(Ordering::Relaxed) }
    }

    fn child(n: *mut RbNode<K, V>, d: usize) -> *mut RbNode<K, V> {
        // SAFETY: live node.
        unsafe { (*n).child[d].load(Ordering::Relaxed) }
    }

    fn dir_of(p: *mut RbNode<K, V>, n: *mut RbNode<K, V>) -> usize {
        if Self::child(p, L) == n {
            L
        } else {
            debug_assert_eq!(Self::child(p, R), n);
            R
        }
    }

    /// Points `p`'s slot that held `old` (or the root) at `new`, and fixes
    /// `new.parent`.
    fn replace_child(&self, p: *mut RbNode<K, V>, old: *mut RbNode<K, V>, new: *mut RbNode<K, V>) {
        if p.is_null() {
            self.root.store(new, Ordering::Release);
        } else {
            let d = Self::dir_of(p, old);
            // SAFETY: live nodes; Release publishes `new`'s fields.
            unsafe { (*p).child[d].store(new, Ordering::Release) };
        }
        if !new.is_null() {
            // SAFETY: live node; writer-only field.
            unsafe { (*new).parent.store(p, Ordering::Relaxed) };
        }
    }

    /// Relativistic rotation: the pivot's parent `x` moves *down* and is
    /// therefore **copied** (Howard's copy-on-rotate); stale readers
    /// holding `x` still see a consistent subtree through `x`'s unchanged
    /// outgoing pointers. Returns the copy that replaced `x`.
    ///
    /// `toward == L` is a left rotation (right child rises).
    fn rotate(&self, x: *mut RbNode<K, V>, toward: usize) -> *mut RbNode<K, V> {
        let away = 1 - toward;
        // SAFETY (whole fn): under the write lock; all nodes live.
        unsafe {
            let y = Self::child(x, away);
            debug_assert!(!y.is_null(), "rotation pivot missing");
            let y_inner = Self::child(y, toward);
            // Copy of x, adopting y's inner subtree on the `away` side.
            let x_copy = RbNode::alloc(
                (*x).key.clone(),
                (*x).value.clone(),
                Self::color(x),
                if toward == L {
                    Self::child(x, L)
                } else {
                    y_inner
                },
                if toward == L {
                    y_inner
                } else {
                    Self::child(x, R)
                },
                y,
            );
            for d in [L, R] {
                let c = Self::child(x_copy, d);
                if !c.is_null() {
                    (*c).parent.store(x_copy, Ordering::Relaxed);
                }
            }
            // Publish the copy under y, then swing x's incoming edge to y.
            (*y).child[toward].store(x_copy, Ordering::Release);
            let p = Self::parent(x);
            self.replace_child(p, x, y);
            self.retire(x);
            x_copy
        }
    }

    fn retire(&self, n: *mut RbNode<K, V>) {
        // SAFETY: `n` was just unlinked by the (sole) writer.
        unsafe { self.graveyard.push(n) };
    }

    /// CLRS insert fixup with copy-on-rotate.
    fn insert_fixup(&self, mut z: *mut RbNode<K, V>) {
        loop {
            let p = Self::parent(z);
            if p.is_null() || Self::color(p) == BLACK {
                break;
            }
            let g = Self::parent(p);
            debug_assert!(!g.is_null(), "red node cannot be the root");
            let pdir = Self::dir_of(g, p);
            let udir = 1 - pdir;
            let u = Self::child(g, udir);
            if Self::color(u) == RED {
                Self::set_color(p, BLACK);
                Self::set_color(u, BLACK);
                Self::set_color(g, RED);
                z = g;
                continue;
            }
            let mut z_cur = z;
            if Self::dir_of(p, z_cur) == udir {
                // Inner case: rotate p toward pdir; p is copied.
                z_cur = self.rotate(p, pdir);
            }
            let p2 = Self::parent(z_cur);
            let g2 = Self::parent(p2);
            Self::set_color(p2, BLACK);
            Self::set_color(g2, RED);
            self.rotate(g2, udir);
            break;
        }
        let root = self.root.load(Ordering::Relaxed);
        Self::set_color(root, BLACK);
    }

    /// CLRS delete fixup (`x` carries an extra black; may be null) with
    /// copy-on-rotate. `p` is `x`'s parent.
    fn delete_fixup(&self, mut x: *mut RbNode<K, V>, mut p: *mut RbNode<K, V>) {
        while !p.is_null() && Self::color(x) == BLACK {
            let dir = if Self::child(p, L) == x { L } else { R };
            let other = 1 - dir;
            let mut w = Self::child(p, other);
            debug_assert!(!w.is_null(), "sibling must exist (black-height)");
            if Self::color(w) == RED {
                // Case 1: red sibling — rotate it above p.
                Self::set_color(w, BLACK);
                Self::set_color(p, RED);
                p = self.rotate(p, dir);
                w = Self::child(p, other);
            }
            if Self::color(Self::child(w, L)) == BLACK && Self::color(Self::child(w, R)) == BLACK {
                // Case 2: push the extra black up.
                Self::set_color(w, RED);
                x = p;
                p = Self::parent(x);
            } else {
                if Self::color(Self::child(w, other)) == BLACK {
                    // Case 3: inner red — rotate w away.
                    let inner = Self::child(w, dir);
                    Self::set_color(inner, BLACK);
                    Self::set_color(w, RED);
                    self.rotate(w, other);
                    w = Self::child(p, other);
                }
                // Case 4: outer red — final rotation.
                Self::set_color(w, Self::color(p));
                Self::set_color(p, BLACK);
                Self::set_color(Self::child(w, other), BLACK);
                self.rotate(p, dir);
                x = self.root.load(Ordering::Relaxed);
                p = ptr::null_mut();
            }
        }
        if !x.is_null() {
            Self::set_color(x, BLACK);
        }
    }

    /// Writer-side exact search.
    fn find(&self, key: &K) -> *mut RbNode<K, V> {
        let mut cur = self.root.load(Ordering::Relaxed);
        // SAFETY: under the write lock; nodes live.
        unsafe {
            while !cur.is_null() {
                match key.cmp(&(*cur).key) {
                    CmpOrdering::Equal => return cur,
                    CmpOrdering::Less => cur = Self::child(cur, L),
                    CmpOrdering::Greater => cur = Self::child(cur, R),
                }
            }
        }
        ptr::null_mut()
    }

    fn insert_locked(&self, key: K, value: V) -> bool {
        let mut parent = ptr::null_mut();
        let mut dir = L;
        let mut cur = self.root.load(Ordering::Relaxed);
        // SAFETY (whole fn): write lock held.
        unsafe {
            while !cur.is_null() {
                match key.cmp(&(*cur).key) {
                    CmpOrdering::Equal => return false,
                    CmpOrdering::Less => {
                        parent = cur;
                        dir = L;
                        cur = Self::child(cur, L);
                    }
                    CmpOrdering::Greater => {
                        parent = cur;
                        dir = R;
                        cur = Self::child(cur, R);
                    }
                }
            }
            let z = RbNode::alloc(key, value, RED, ptr::null_mut(), ptr::null_mut(), parent);
            if parent.is_null() {
                self.root.store(z, Ordering::Release);
            } else {
                (*parent).child[dir].store(z, Ordering::Release);
            }
            self.insert_fixup(z);
        }
        true
    }

    fn remove_locked(&self, key: &K, rcu: &impl RcuHandle) -> bool {
        let z = self.find(key);
        if z.is_null() {
            return false;
        }
        // SAFETY (whole fn): write lock held; nodes live.
        unsafe {
            let zl = Self::child(z, L);
            let zr = Self::child(z, R);
            if !zl.is_null() && !zr.is_null() {
                // Two children: find successor y (leftmost in right
                // subtree; has no left child).
                let mut y = zr;
                while !Self::child(y, L).is_null() {
                    y = Self::child(y, L);
                }
                let y_color = Self::color(y);

                // Install a copy of y at z's position (z's color, z's
                // children). Readers searching y's key now find it in
                // either the old or the new location (the WBST argument).
                let repl = RbNode::alloc(
                    (*y).key.clone(),
                    (*y).value.clone(),
                    Self::color(z),
                    zl,
                    zr,
                    ptr::null_mut(),
                );
                (*zl).parent.store(repl, Ordering::Relaxed);
                (*zr).parent.store(repl, Ordering::Relaxed);
                self.replace_child(Self::parent(z), z, repl);

                // Wait for every search that might be heading for y's old
                // location.
                rcu.synchronize();
                self.retire(z);

                // Unlink y from its old location (it has no left child).
                let py = if y == zr { repl } else { Self::parent(y) };
                let x = Self::child(y, R);
                let ydir = Self::dir_of(py, y);
                (*py).child[ydir].store(x, Ordering::Release);
                if !x.is_null() {
                    (*x).parent.store(py, Ordering::Relaxed);
                }
                self.retire(y);
                if y_color == BLACK {
                    self.delete_fixup(x, py);
                }
            } else {
                // At most one child: splice.
                let x = if zl.is_null() { zr } else { zl };
                let p = Self::parent(z);
                self.replace_child(p, z, x);
                self.retire(z);
                if Self::color(z) == BLACK {
                    self.delete_fixup(x, p);
                }
            }
        }
        true
    }
}

impl<K, V, F> ConcurrentMap<K, V> for RelativisticRbTree<K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    type Session<'a>
        = RbSession<'a, K, V, F>
    where
        Self: 'a;

    const NAME: &'static str = "rbtree-relativistic";

    fn session(&self) -> RbSession<'_, K, V, F> {
        RbSession {
            tree: self,
            rcu: self.rcu.register(),
        }
    }
}

/// Per-thread handle to a [`RelativisticRbTree`].
pub struct RbSession<'t, K, V, F: RcuFlavor> {
    tree: &'t RelativisticRbTree<K, V, F>,
    rcu: F::Handle<'t>,
}

impl<K, V, F: RcuFlavor> fmt::Debug for RbSession<'_, K, V, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RbSession").finish_non_exhaustive()
    }
}

impl<K, V, F> MapSession<K, V> for RbSession<'_, K, V, F>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    F: RcuFlavor,
{
    fn get(&mut self, key: &K) -> Option<V> {
        let _g = self.rcu.read_lock();
        let mut cur = self.tree.root.load(Ordering::Acquire);
        // SAFETY: read-side section; nodes are never freed while the tree
        // lives (graveyard), and every visited node was published.
        unsafe {
            while !cur.is_null() {
                match key.cmp(&(*cur).key) {
                    CmpOrdering::Equal => return Some((*cur).value.clone()),
                    CmpOrdering::Less => cur = (*cur).child[L].load(Ordering::Acquire),
                    CmpOrdering::Greater => cur = (*cur).child[R].load(Ordering::Acquire),
                }
            }
        }
        None
    }

    fn insert(&mut self, key: K, value: V) -> bool {
        let _w = self.tree.write_lock.lock();
        // Readers run concurrently with whatever this writer does next.
        chaos::point!("baseline-rbtree/write/critical");
        self.tree.insert_locked(key, value)
    }

    fn remove(&mut self, key: &K) -> bool {
        let _w = self.tree.write_lock.lock();
        chaos::point!("baseline-rbtree/write/critical");
        self.tree.remove_locked(key, &self.rcu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus_api::testkit;

    type Tree = RelativisticRbTree<u64, u64>;

    /// Checks BST order, no red-red edge, and equal black heights;
    /// returns the black height.
    fn check_rb(t: *mut RbNode<u64, u64>, lo: Option<u64>, hi: Option<u64>) -> usize {
        if t.is_null() {
            return 1;
        }
        unsafe {
            let k = (*t).key;
            assert!(lo.is_none_or(|lo| k > lo), "BST order violated at {k}");
            assert!(hi.is_none_or(|hi| k < hi), "BST order violated at {k}");
            let c = (*t).color.load(Ordering::Relaxed);
            let l = (*t).child[L].load(Ordering::Relaxed);
            let r = (*t).child[R].load(Ordering::Relaxed);
            if c == RED {
                assert_eq!(Tree::color(l), BLACK, "red-red violation at {k}");
                assert_eq!(Tree::color(r), BLACK, "red-red violation at {k}");
            }
            // Parent pointers consistent (writer-side invariant).
            if !l.is_null() {
                assert_eq!((*l).parent.load(Ordering::Relaxed), t);
            }
            if !r.is_null() {
                assert_eq!((*r).parent.load(Ordering::Relaxed), t);
            }
            let bl = check_rb(l, lo, Some(k));
            let br = check_rb(r, Some(k), hi);
            assert_eq!(bl, br, "black height mismatch at {k}");
            bl + usize::from(c == BLACK)
        }
    }

    fn audit(tree: &Tree) {
        let root = tree.root.load(Ordering::Relaxed);
        assert_eq!(Tree::color(root), BLACK, "root must be black");
        check_rb(root, None, None);
    }

    #[test]
    fn insert_keeps_rb_invariants() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in 0..512u64 {
            assert!(s.insert(k, k));
        }
        drop(s);
        audit(&tree);

        let tree = Tree::new();
        let mut s = tree.session();
        for k in (0..512u64).rev() {
            assert!(s.insert(k, k));
        }
        drop(s);
        audit(&tree);
    }

    #[test]
    fn delete_keeps_rb_invariants() {
        use citrus_api::testkit::SplitMix64;
        let tree = Tree::new();
        let mut s = tree.session();
        let mut rng = SplitMix64::new(42);
        let mut present = std::collections::BTreeSet::new();
        for _ in 0..4_000 {
            let k = rng.below(256);
            if rng.below(2) == 0 {
                assert_eq!(s.insert(k, k), present.insert(k));
            } else {
                assert_eq!(s.remove(&k), present.remove(&k));
            }
        }
        drop(s);
        audit(&tree);
    }

    #[test]
    fn two_child_delete_synchronizes() {
        let tree = Tree::new();
        let before = tree.rcu.grace_periods();
        let mut s = tree.session();
        for k in [10, 5, 20, 15, 25] {
            s.insert(k, k);
        }
        assert!(s.remove(&10)); // two children → successor move → sync
        drop(s);
        assert!(
            tree.rcu.grace_periods() > before,
            "two-child delete must wait a grace period"
        );
        audit(&tree);
    }

    #[test]
    fn sequential_model() {
        testkit::check_sequential_model(&Tree::new(), 6_000, 256, 0x4B17);
        testkit::check_duplicate_inserts(&Tree::new());
    }

    #[test]
    fn concurrent_battery() {
        testkit::check_lost_updates(&Tree::new(), 8, 300);
        testkit::check_partitioned_determinism(&Tree::new(), 8, 2_500, 64);
        testkit::check_mixed_quiescent_consistency(&Tree::new(), 8, 2_500, 128);
    }

    #[test]
    fn rotations_retire_copies() {
        let tree = Tree::new();
        let mut s = tree.session();
        for k in 0..100u64 {
            s.insert(k, k); // ascending → constant rotations
        }
        drop(s);
        assert!(
            tree.graveyard_len() > 0,
            "copy-on-rotate must retire originals"
        );
        audit(&tree);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tree>();
    }
}
