//! Directed tests for the baselines' tricky paths: red-black fixup case
//! coverage, AVL double rotations and routing-node churn, skiplist tower
//! extremes, lock-free helping, Bonsai rebalancing under skew.

use citrus_api::testkit::{self, SplitMix64};
use citrus_api::{ConcurrentMap, MapSession};
use citrus_baselines::{
    BonsaiTree, LazySkipList, LockFreeBst, OptimisticAvlTree, RelativisticRbTree,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// Exhaustive small-permutation test: for every insertion order of 7 keys
/// and every deletion order prefix, the structure answers correctly.
/// Hits every red-black insert/delete fixup case and every AVL rotation
/// kind (single/double, both sides).
fn permutation_torture<M: ConcurrentMap<u64, u64>>(make: impl Fn() -> M) {
    // 7! = 5040 insertion orders is too many to cross with deletions;
    // use a deterministic sample of orders instead.
    let mut rng = SplitMix64::new(0x9E9E);
    for _ in 0..testkit::stress_iters(60) {
        // Random insertion order of 0..12.
        let mut keys: Vec<u64> = (0..12).collect();
        for i in (1..keys.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            keys.swap(i, j);
        }
        let map = make();
        let mut s = map.session();
        for &k in &keys {
            assert!(s.insert(k, k * 2));
        }
        // Random deletion order; verify the survivors after each delete.
        let mut dels = keys.clone();
        for i in (1..dels.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            dels.swap(i, j);
        }
        let mut remaining: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        for &k in &dels {
            assert!(s.remove(&k), "remove({k})");
            remaining.remove(&k);
            for r in 0..12u64 {
                assert_eq!(
                    s.get(&r),
                    remaining.contains(&r).then_some(r * 2),
                    "after removing {k}, key {r} wrong"
                );
            }
        }
    }
}

#[test]
fn permutation_torture_rbtree() {
    permutation_torture(RelativisticRbTree::<u64, u64>::new);
}

#[test]
fn permutation_torture_avl() {
    permutation_torture(OptimisticAvlTree::<u64, u64>::new);
}

#[test]
fn permutation_torture_bonsai() {
    permutation_torture(BonsaiTree::<u64, u64>::new);
}

#[test]
fn permutation_torture_lockfree() {
    permutation_torture(LockFreeBst::<u64, u64>::new);
}

#[test]
fn permutation_torture_skiplist() {
    permutation_torture(LazySkipList::<u64, u64>::new);
}

/// AVL: zig-zag insertion orders force double rotations both ways; large
/// in-order deletions force routing-node unlinking cascades.
#[test]
fn avl_double_rotations_and_routing_cascades() {
    let tree = OptimisticAvlTree::<u64, u64>::new();
    let mut s = tree.session();
    // Left-right then right-left shapes, repeatedly.
    for (a, b, c) in [(30u64, 10, 20), (50, 70, 60), (5, 1, 3), (90, 95, 93)] {
        assert!(s.insert(a, a));
        assert!(s.insert(b, b));
        assert!(s.insert(c, c)); // forces a double rotation at a
        for k in [a, b, c] {
            assert_eq!(s.get(&k), Some(k));
        }
    }
    // Bulk: interior deletes convert to routing nodes; then delete the
    // leaves so rebalancing must unlink the routers.
    let tree2 = OptimisticAvlTree::<u64, u64>::new();
    let mut s2 = tree2.session();
    for k in 0..512u64 {
        s2.insert(k, k);
    }
    for k in (0..512u64).filter(|k| k % 4 == 2) {
        assert!(s2.remove(&k)); // interior-ish removals
    }
    for k in (0..512u64).filter(|k| k % 4 != 2) {
        assert!(s2.remove(&k));
    }
    for k in 0..512u64 {
        assert_eq!(s2.get(&k), None);
    }
    // Reinsert after total drain (router graveyard territory).
    for k in 0..64u64 {
        assert!(s2.insert(k, k + 1));
        assert_eq!(s2.get(&k), Some(k + 1));
    }
}

/// Skiplist: force extreme tower heights by driving many sessions (each
/// session reseeds the geometric RNG) and verify cross-level consistency.
#[test]
fn skiplist_tower_extremes() {
    let list = LazySkipList::<u64, u64>::new();
    for batch in 0..64u64 {
        let mut s = list.session(); // fresh RNG per session
        for i in 0..64u64 {
            let k = batch * 64 + i;
            assert!(s.insert(k, k));
        }
    }
    let mut s = list.session();
    for k in 0..64 * 64u64 {
        assert_eq!(s.get(&k), Some(k));
    }
    // Interleaved removal exercises unlink at every level.
    for k in (0..64 * 64u64).step_by(3) {
        assert!(s.remove(&k));
    }
    for k in 0..64 * 64u64 {
        assert_eq!(s.get(&k), (k % 3 != 0).then_some(k));
    }
}

/// Lock-free BST: concurrent deletes of *sibling* leaves force the
/// helping path (cleanup of a flagged edge found by the other delete).
#[test]
fn lockfree_sibling_delete_helping() {
    let _watchdog = testkit::stress_watchdog("lockfree_sibling_delete_helping");
    let tree = LockFreeBst::<u64, u64>::new();
    for r in 0..testkit::stress_iters(300) {
        let (a, b) = (r * 10 + 1, r * 10 + 2); // siblings under one router
        {
            let mut s = tree.session();
            assert!(s.insert(a, a));
            assert!(s.insert(b, b));
        }
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            let (t1, b1) = (&tree, &barrier);
            scope.spawn(move || {
                let mut s = t1.session();
                b1.wait();
                assert!(s.remove(&a), "round {r}: remove({a})");
            });
            let (t2, b2) = (&tree, &barrier);
            scope.spawn(move || {
                let mut s = t2.session();
                b2.wait();
                assert!(s.remove(&b), "round {r}: remove({b})");
            });
        });
        let mut s = tree.session();
        assert_eq!(s.get(&a), None);
        assert_eq!(s.get(&b), None);
    }
}

/// Red-black under reader storms: copy-on-rotate means readers racing
/// rebalancing storms still find every permanent key.
#[test]
fn rbtree_readers_vs_rebalancing_storm() {
    let _watchdog = testkit::stress_watchdog("rbtree_readers_vs_rebalancing_storm");
    let tree = RelativisticRbTree::<u64, u64>::new();
    {
        let mut s = tree.session();
        for k in (0..1_000u64).step_by(2) {
            s.insert(k, k); // permanent even keys
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (t, stop_w) = (&tree, &stop);
        scope.spawn(move || {
            let mut s = t.session();
            // Odd-key churn in ascending order = constant rotations.
            for round in 0..testkit::stress_iters(40) {
                for k in (1..1_000u64).step_by(2) {
                    s.insert(k, k);
                }
                for k in (1..1_000u64).step_by(2) {
                    s.remove(&k);
                }
                let _ = round;
            }
            stop_w.store(true, Ordering::Relaxed);
        });
        for seed in 0..2u64 {
            let (t, stop_r) = (&tree, &stop);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(seed);
                let mut s = t.session();
                while !stop_r.load(Ordering::Relaxed) {
                    let k = rng.below(500) * 2;
                    assert_eq!(s.get(&k), Some(k), "permanent key {k} missed mid-rotation");
                }
            });
        }
    });
}

/// Bonsai: snapshot isolation — a reader traversing an old root sees a
/// frozen tree even while the writer replaces the root many times.
#[test]
fn bonsai_snapshot_isolation_under_churn() {
    let _watchdog = testkit::stress_watchdog("bonsai_snapshot_isolation_under_churn");
    let tree = BonsaiTree::<u64, u64>::new();
    {
        let mut s = tree.session();
        for k in 0..256u64 {
            s.insert(k, 1); // generation 1
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (t, stop_w) = (&tree, &stop);
        scope.spawn(move || {
            let mut s = t.session();
            for generation in 2..30u64 {
                for k in 0..256u64 {
                    s.remove(&k);
                    s.insert(k, generation);
                }
            }
            stop_w.store(true, Ordering::Relaxed);
        });
        let (t, stop_r) = (&tree, &stop);
        scope.spawn(move || {
            let mut s = t.session();
            let mut rng = SplitMix64::new(77);
            while !stop_r.load(Ordering::Relaxed) {
                let k = rng.below(256);
                if let Some(v) = s.get(&k) {
                    assert!((1..30).contains(&v), "torn generation value {v}");
                }
            }
        });
    });
}
