//! Property-based model tests for every baseline structure: arbitrary
//! operation sequences checked against `BTreeMap`, return value by return
//! value, with a final full-range sweep.

use citrus_api::{ConcurrentMap, MapSession};
use citrus_baselines::{
    BonsaiTree, LazySkipList, LockFreeBst, OptimisticAvlTree, RelativisticRbTree,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u16),
    Remove(u8),
    Get(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Remove),
        any::<u8>().prop_map(Op::Get),
    ]
}

fn run_against_model<M: ConcurrentMap<u64, u64>>(map: &M, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut s = map.session();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k, v) => {
                let (k, v) = (u64::from(k), u64::from(v));
                let expected = !model.contains_key(&k);
                if expected {
                    model.insert(k, v);
                }
                prop_assert_eq!(
                    s.insert(k, v),
                    expected,
                    "{}: op {} insert({})",
                    M::NAME,
                    i,
                    k
                );
            }
            Op::Remove(k) => {
                let k = u64::from(k);
                let expected = model.remove(&k).is_some();
                prop_assert_eq!(
                    s.remove(&k),
                    expected,
                    "{}: op {} remove({})",
                    M::NAME,
                    i,
                    k
                );
            }
            Op::Get(k) => {
                let k = u64::from(k);
                prop_assert_eq!(
                    s.get(&k),
                    model.get(&k).copied(),
                    "{}: op {} get({})",
                    M::NAME,
                    i,
                    k
                );
            }
        }
    }
    for k in 0..=u64::from(u8::MAX) {
        prop_assert_eq!(
            s.get(&k),
            model.get(&k).copied(),
            "{}: final sweep at {}",
            M::NAME,
            k
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn model_rbtree(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model(&RelativisticRbTree::<u64, u64>::new(), &ops)?;
    }

    #[test]
    fn model_bonsai(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model(&BonsaiTree::<u64, u64>::new(), &ops)?;
    }

    #[test]
    fn model_avl(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model(&OptimisticAvlTree::<u64, u64>::new(), &ops)?;
    }

    #[test]
    fn model_lockfree(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model(&LockFreeBst::<u64, u64>::new(), &ops)?;
    }

    #[test]
    fn model_skiplist(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_against_model(&LazySkipList::<u64, u64>::new(), &ops)?;
    }
}
