//! Exhaustive bounded-schedule exploration for [`ConcurrentMap`]s.
//!
//! [`testkit`](crate::testkit)'s chaos sweeps *sample* interleavings from
//! seeds; this module *enumerates* them. A [`ScheduleScenario`] scripts a
//! tiny concurrent run (2–3 threads, a handful of operations each, over a
//! sequential prefill), and [`explore_schedules`] drives
//! [`citrus_chaos::Explorer`] over every distinct interleaving of the
//! scenario's named failpoints within a preemption bound, running two
//! oracles against each completed schedule:
//!
//! 1. **Linearizability** — every operation (prefill included, on its own
//!    sequential lane) is recorded through the
//!    [`lincheck`](crate::lincheck) history recorder and the merged
//!    history must pass the WGL checker. For single-key scenarios this is
//!    exactly the "single cell" sequential specification.
//! 2. **Structure validation** — an optional caller-supplied check over
//!    the quiesced map (e.g. `CitrusTree::validate_structure`), via
//!    [`explore_schedules_with`].
//!
//! Any failing schedule is reported with its compact encoding; rerunning
//! the same test with `CITRUS_SCHEDULE=<encoding>` in the environment
//! replays exactly that interleaving (with a step-by-step trace on
//! stderr) instead of sweeping, and a schedule dump is written under
//! `CITRUS_EXPLORE_DUMP_DIR` (default: the OS temp dir) for CI to
//! archive. Pinned regression tests replay one known-bad-adjacent
//! schedule forever via [`replay_schedule`].
//!
//! Everything here is meaningful only when the `chaos` cargo feature is
//! enabled; without it `run_schedule` degrades to sequential execution
//! and the sweep sees exactly one schedule.
//!
//! ```ignore
//! use citrus_api::testkit::{explore_schedules, ScenarioOp, ScheduleScenario};
//!
//! let scenario = ScheduleScenario::new("delete-two-child-vs-get")
//!     .prefill(&[(20, 1), (10, 2), (30, 3), (25, 4)])
//!     .thread(&[ScenarioOp::Remove(20)])
//!     .thread(&[ScenarioOp::Get(25), ScenarioOp::Get(30)]);
//! let report = explore_schedules(CitrusTree::new, &scenario);
//! report.assert_clean("delete-two-child-vs-get");
//! ```

use crate::lincheck::{check_history, History, HistoryRecorder, RecordedOp};
use crate::{ConcurrentMap, MapSession, OrderedMapSession};
use citrus_chaos::{
    run_schedule, ExploreConfig, ExploreReport, ExploredRun, Explorer, ScheduleFailure,
    SchedulePlan,
};
use std::path::PathBuf;
use std::sync::Mutex;

/// One scripted operation of a scenario thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioOp {
    /// `insert(key, value)`.
    Insert(u64, u64),
    /// `remove(key)`.
    Remove(u64),
    /// `get(key)`.
    Get(u64),
    /// `contains(key)`.
    Contains(u64),
    /// `range_scan(lo, hi)` (inclusive bounds).
    Scan(u64, u64),
    /// `successor(key)`.
    Successor(u64),
    /// `predecessor(key)`.
    Predecessor(u64),
}

/// A bounded concurrent scenario: a sequential prefill plus a short
/// scripted operation list per scheduled thread.
///
/// Keep scenarios tiny — 2–3 threads and ≤ 6 operations total. The
/// schedule space grows exponentially with the number of yield points
/// executed, and exhaustiveness (the point of this module) only survives
/// when the explorer can actually reach the bound.
#[derive(Debug, Clone)]
pub struct ScheduleScenario {
    /// Name used in reports, replay recipes, and dump file names.
    pub name: &'static str,
    /// Key/value pairs inserted sequentially before the concurrent part.
    /// Recorded on an extra history lane so the linearizability checker
    /// (which assumes an initially empty map) accounts for them.
    pub prefill: Vec<(u64, u64)>,
    /// Scripted operations, one list per scheduled thread.
    pub threads: Vec<Vec<ScenarioOp>>,
}

impl ScheduleScenario {
    /// An empty scenario with the given report name.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            prefill: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Appends prefill pairs (inserted in order, before the threads run).
    #[must_use]
    pub fn prefill(mut self, pairs: &[(u64, u64)]) -> Self {
        self.prefill.extend_from_slice(pairs);
        self
    }

    /// Appends one scheduled thread running `ops` in order.
    #[must_use]
    pub fn thread(mut self, ops: &[ScenarioOp]) -> Self {
        self.threads.push(ops.to_vec());
        self
    }
}

/// Runs the scenario once under `plan`, with both oracles.
fn run_one<M, F, V>(
    make: &F,
    scenario: &ScheduleScenario,
    plan: &SchedulePlan,
    validate: &V,
) -> ExploredRun
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
    V: Fn(&mut M) -> Result<(), String>,
{
    let mut map = make();
    let nthreads = scenario.threads.len();
    let recorder = HistoryRecorder::new();
    // Prefill before the schedule starts, recorded on lane `nthreads`:
    // its tickets all precede the concurrent ones, so the checker sees a
    // sequential prefix and the "map starts empty" precondition holds.
    let prefill_log = {
        let mut s = recorder.wrap(nthreads, map.session());
        for &(k, v) in &scenario.prefill {
            assert!(
                s.insert(k, v),
                "scenario {}: prefill key {k} already present",
                scenario.name
            );
        }
        s.finish()
    };
    let logs: Mutex<Vec<Vec<RecordedOp>>> = Mutex::new(Vec::new());
    let outcome = {
        let closures: Vec<Box<dyn FnOnce() + Send + '_>> = scenario
            .threads
            .iter()
            .enumerate()
            .map(|(t, ops)| {
                let (map, recorder, logs) = (&map, &recorder, &logs);
                Box::new(move || {
                    let mut s = recorder.wrap(t, map.session());
                    for op in ops {
                        match *op {
                            ScenarioOp::Insert(k, v) => {
                                s.insert(k, v);
                            }
                            ScenarioOp::Remove(k) => {
                                s.remove(&k);
                            }
                            ScenarioOp::Get(k) => {
                                s.get(&k);
                            }
                            ScenarioOp::Contains(k) => {
                                s.contains(&k);
                            }
                            ScenarioOp::Scan(lo, hi) => {
                                s.range_scan(&lo, &hi);
                            }
                            ScenarioOp::Successor(k) => {
                                s.successor(&k);
                            }
                            ScenarioOp::Predecessor(k) => {
                                s.predecessor(&k);
                            }
                        }
                    }
                    logs.lock().unwrap().push(s.finish());
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_schedule(plan, closures)
    };
    let verdict = if outcome.clean() {
        let mut thread_logs = logs
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        thread_logs.push(prefill_log);
        check_history(&History::from_thread_logs(thread_logs))
            .map_err(|cx| format!("non-linearizable history:\n{cx}"))
            .and_then(|()| validate(&mut map))
    } else {
        // The scheduler-level failure (deadlock, panic, step budget) is
        // the finding; logs may be incomplete, so the oracles do not run.
        Ok(())
    };
    ExploredRun { outcome, verdict }
}

/// Exhaustively explores `scenario`'s schedules with the default bounds
/// and the linearizability oracle only.
///
/// Honors `CITRUS_SCHEDULE` (replay one interleaving instead of
/// sweeping) and `CITRUS_EXPLORE_BUDGET_MS` (wall-clock budget; an
/// exceeded budget marks the report `completed: false` rather than
/// failing). Assert on the returned [`ExploreReport`] — at minimum
/// [`ExploreReport::assert_clean`]; coverage-sensitive tests also pin
/// `report.schedules` and check `report.points_hit`.
pub fn explore_schedules<M, F>(make: F, scenario: &ScheduleScenario) -> ExploreReport
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
{
    explore_schedules_with(make, scenario, ExploreConfig::default(), |_| Ok(()))
}

/// [`explore_schedules`] with explicit bounds and a structure-validation
/// oracle run against the quiesced map after every clean schedule.
pub fn explore_schedules_with<M, F, V>(
    make: F,
    scenario: &ScheduleScenario,
    config: ExploreConfig,
    validate: V,
) -> ExploreReport
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
    V: Fn(&mut M) -> Result<(), String>,
{
    assert!(
        !scenario.threads.is_empty(),
        "scenario {} has no threads",
        scenario.name
    );
    if let Ok(encoded) = std::env::var("CITRUS_SCHEDULE") {
        return replay_env(&make, scenario, &encoded, config.max_steps, &validate);
    }
    let report = Explorer::new(config).explore(|plan| run_one(&make, scenario, plan, &validate));
    if let Some(failure) = &report.failure {
        eprintln!(
            "[citrus-explore] scenario {}: {failure}\n  replay: rerun this test with \
             CITRUS_SCHEDULE={}",
            scenario.name, failure.schedule
        );
        if let Some(path) = dump_failure(&make, scenario, failure, &validate) {
            eprintln!("[citrus-explore] schedule dump: {}", path.display());
        }
    }
    report
}

/// Replays one encoded schedule (see [`SchedulePlan::encode`]) and
/// returns the run for the caller to assert on — the building block of
/// pinned schedule regression tests.
///
/// # Panics
///
/// Panics if `encoded` is not a valid schedule encoding.
pub fn replay_schedule<M, F>(make: F, scenario: &ScheduleScenario, encoded: &str) -> ExploredRun
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
{
    replay_schedule_with(make, scenario, encoded, |_| Ok(()))
}

/// [`replay_schedule`] with a structure-validation oracle.
///
/// # Panics
///
/// Panics if `encoded` is not a valid schedule encoding.
pub fn replay_schedule_with<M, F, V>(
    make: F,
    scenario: &ScheduleScenario,
    encoded: &str,
    validate: V,
) -> ExploredRun
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
    V: Fn(&mut M) -> Result<(), String>,
{
    let plan =
        SchedulePlan::decode(encoded).unwrap_or_else(|e| panic!("scenario {}: {e}", scenario.name));
    run_one(&make, scenario, &plan, &validate)
}

/// `CITRUS_SCHEDULE` handling: replay exactly one interleaving with a
/// step trace on stderr, reported as a single-schedule sweep.
fn replay_env<M, F, V>(
    make: &F,
    scenario: &ScheduleScenario,
    encoded: &str,
    max_steps: usize,
    validate: &V,
) -> ExploreReport
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
    V: Fn(&mut M) -> Result<(), String>,
{
    let plan = SchedulePlan::decode(encoded)
        .unwrap_or_else(|e| panic!("CITRUS_SCHEDULE: {e}"))
        .with_max_steps(max_steps);
    eprintln!(
        "[citrus-explore] scenario {}: replaying CITRUS_SCHEDULE={}",
        scenario.name,
        plan.encode()
    );
    let run = run_one(make, scenario, &plan, validate);
    for (step, (thread, point)) in run.outcome.trace.iter().enumerate() {
        eprintln!("  step {step:>3}: thread {thread} @ {point}");
    }
    let mut report = ExploreReport {
        schedules: 1,
        completed: false,
        ..ExploreReport::default()
    };
    for &(_, name) in &run.outcome.trace {
        report.points_hit.insert(name);
    }
    if run.outcome.deadlocked {
        report.deadlocks = 1;
    }
    if let Some(reason) = run.outcome.failure_reason().or_else(|| run.verdict.err()) {
        report.failures_seen = 1;
        report.failure = Some(ScheduleFailure {
            schedule: plan.encode(),
            preemptions: run.outcome.preemptions,
            reason,
        });
    }
    report
}

/// Writes a replayable description of a failing schedule (reason, replay
/// recipe, full step trace from a deterministic rerun) under
/// `CITRUS_EXPLORE_DUMP_DIR` (default: the OS temp dir) so CI can attach
/// it as an artifact. Dump failure never masks the sweep verdict.
fn dump_failure<M, F, V>(
    make: &F,
    scenario: &ScheduleScenario,
    failure: &ScheduleFailure,
    validate: &V,
) -> Option<PathBuf>
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
    V: Fn(&mut M) -> Result<(), String>,
{
    let dir =
        std::env::var_os("CITRUS_EXPLORE_DUMP_DIR").map_or_else(std::env::temp_dir, PathBuf::from);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "[citrus-explore] cannot create dump dir {}: {e}",
            dir.display()
        );
        return None;
    }
    let plan = SchedulePlan::decode(&failure.schedule).ok()?;
    // Schedules are deterministic: rerun the failing one to recover its
    // step-by-step trace for the artifact.
    let rerun = run_one(make, scenario, &plan, validate);
    let mut body = format!(
        "# explore failure: scenario {}, schedule {}, {} preemption(s)\n\
         # reason: {}\n\
         # replay: CITRUS_SCHEDULE={}\n",
        scenario.name, failure.schedule, failure.preemptions, failure.reason, failure.schedule
    );
    for (step, (thread, point)) in rerun.outcome.trace.iter().enumerate() {
        body.push_str(&format!("step {step:>3}: thread {thread} @ {point}\n"));
    }
    let path = dir.join(format!(
        "explore_{}_{}.schedule.txt",
        scenario.name.replace(['/', ' '], "-"),
        failure.schedule
    ));
    match std::fs::write(&path, body) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "[citrus-explore] schedule dump to {} failed: {e}",
                path.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::btree_map::Entry;
    use std::collections::BTreeMap;
    use std::sync::Mutex as StdMutex;

    #[derive(Default, Debug)]
    struct CoarseMap {
        inner: StdMutex<BTreeMap<u64, u64>>,
    }

    struct CoarseSession<'a>(&'a CoarseMap);

    impl ConcurrentMap<u64, u64> for CoarseMap {
        type Session<'a> = CoarseSession<'a>;
        const NAME: &'static str = "coarse-btreemap";

        fn session(&self) -> CoarseSession<'_> {
            CoarseSession(self)
        }
    }

    impl MapSession<u64, u64> for CoarseSession<'_> {
        fn get(&mut self, key: &u64) -> Option<u64> {
            self.0.inner.lock().unwrap().get(key).copied()
        }

        fn insert(&mut self, key: u64, value: u64) -> bool {
            match self.0.inner.lock().unwrap().entry(key) {
                Entry::Occupied(_) => false,
                Entry::Vacant(e) => {
                    e.insert(value);
                    true
                }
            }
        }

        fn remove(&mut self, key: &u64) -> bool {
            self.0.inner.lock().unwrap().remove(key).is_some()
        }
    }

    impl OrderedMapSession<u64, u64> for CoarseSession<'_> {
        fn range_scan(&mut self, lo: &u64, hi: &u64) -> Vec<(u64, u64)> {
            if lo > hi {
                return Vec::new();
            }
            self.0
                .inner
                .lock()
                .unwrap()
                .range(*lo..=*hi)
                .map(|(k, v)| (*k, *v))
                .collect()
        }

        fn successor(&mut self, key: &u64) -> Option<(u64, u64)> {
            self.0
                .inner
                .lock()
                .unwrap()
                .range((std::ops::Bound::Excluded(*key), std::ops::Bound::Unbounded))
                .next()
                .map(|(k, v)| (*k, *v))
        }

        fn predecessor(&mut self, key: &u64) -> Option<(u64, u64)> {
            self.0
                .inner
                .lock()
                .unwrap()
                .range(..*key)
                .next_back()
                .map(|(k, v)| (*k, *v))
        }
    }

    fn scenario() -> ScheduleScenario {
        ScheduleScenario::new("coarse-smoke")
            .prefill(&[(5, 50)])
            .thread(&[ScenarioOp::Remove(5), ScenarioOp::Get(5)])
            .thread(&[ScenarioOp::Insert(5, 51), ScenarioOp::Contains(5)])
    }

    #[test]
    fn scan_ops_explore_clean_on_the_coarse_map() {
        let s = ScheduleScenario::new("coarse-scan-smoke")
            .prefill(&[(5, 50), (9, 90)])
            .thread(&[ScenarioOp::Remove(5), ScenarioOp::Insert(7, 70)])
            .thread(&[ScenarioOp::Scan(0, 10), ScenarioOp::Successor(5)]);
        let report = explore_schedules(CoarseMap::default, &s);
        report.assert_clean("coarse-scan-smoke");
    }

    #[test]
    fn coarse_map_explores_clean() {
        let report = explore_schedules(CoarseMap::default, &scenario());
        report.assert_clean("coarse-smoke");
        assert!(report.schedules >= 1);
        // Without the chaos feature the sweep degrades to one sequential
        // schedule; with it the coarse map has no failpoints, so the
        // sweep still sees exactly the default schedule.
        assert!(report.completed);
    }

    #[test]
    fn replay_of_default_schedule_is_clean() {
        let run = replay_schedule(CoarseMap::default, &scenario(), "-");
        assert!(run.outcome.clean());
        assert!(run.verdict.is_ok());
    }

    #[test]
    fn structure_oracle_failures_are_findings() {
        let report = explore_schedules_with(
            CoarseMap::default,
            &scenario(),
            ExploreConfig::default(),
            |_| Err("structure oracle rejects everything".to_string()),
        );
        let failure = report.failure.expect("oracle failure must be reported");
        assert!(failure.reason.contains("structure oracle"));
    }

    #[test]
    #[should_panic(expected = "prefill key 7 already present")]
    fn duplicate_prefill_is_rejected() {
        let s = ScheduleScenario::new("dup")
            .prefill(&[(7, 1), (7, 2)])
            .thread(&[ScenarioOp::Get(7)]);
        explore_schedules(CoarseMap::default, &s);
    }
}
