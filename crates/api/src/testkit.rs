//! Reusable correctness checks for [`ConcurrentMap`] implementations.
//!
//! Every dictionary in this repository (Citrus and the five baselines) runs
//! the same battery:
//!
//! * [`check_sequential_model`] — single-threaded random ops compared
//!   against [`std::collections::BTreeMap`], return value by return value.
//! * [`check_duplicate_inserts`] — the paper's dictionary semantics:
//!   re-inserting a present key fails and preserves the original value.
//! * [`check_lost_updates`] — threads insert / remove disjoint key blocks
//!   concurrently; every update must be visible afterwards.
//! * [`check_partitioned_determinism`] — each thread owns a key partition
//!   and tracks a local model while *other* threads read those keys; since
//!   partitions never overlap, every thread's view of its own keys must be
//!   exactly its model, operation by operation, even mid-flight.
//! * [`check_mixed_quiescent_consistency`] — unrestricted concurrent mix;
//!   afterwards (quiescent) the map must answer queries self-consistently
//!   and contain only keys some thread actually inserted.
//!
//! All randomness comes from a deterministic [`SplitMix64`] so failures
//! reproduce.
//!
//! When a structure exposes internal metrics (the `stats` feature of
//! `citrus-obs`), [`check_counter_dominates`] turns a
//! [`MetricsSnapshot`] into an invariant assertion — e.g. the RCU flavor
//! must have run at least one grace period per two-child delete.

use crate::{ConcurrentMap, MapSession};
use citrus_obs::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use citrus_chaos::{
    all_points, budget_from_env, chaos_enabled, enable_mutant, install as install_chaos,
    mutant_enabled, replay_recipe, run_schedule, ChaosGuard, ChaosPlan, ExploreConfig,
    ExploreReport, ExploredRun, Explorer, MutantGuard, ScheduleFailure, ScheduleOutcome,
    SchedulePlan,
};

pub use crate::explore::{
    explore_schedules, explore_schedules_with, replay_schedule, replay_schedule_with, ScenarioOp,
    ScheduleScenario,
};
pub use crate::lincheck::{
    check_linearizable, last_history_dump, lin_ops, lin_threads, sweep_lincheck_chaos_seeds,
};

/// Deterministic 64-bit PRNG (SplitMix64), dependency-free.
///
/// # Example
///
/// ```
/// use citrus_api::testkit::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style multiply-shift; bias is negligible for test bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs `ops` random operations single-threaded and compares every return
/// value against `BTreeMap`.
///
/// # Panics
///
/// Panics on the first divergence from the model.
pub fn check_sequential_model<M: ConcurrentMap<u64, u64>>(
    map: &M,
    ops: usize,
    key_range: u64,
    seed: u64,
) {
    let mut rng = SplitMix64::new(seed);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut session = map.session();
    for i in 0..ops {
        let key = rng.below(key_range);
        match rng.below(3) {
            0 => {
                let value = rng.next_u64();
                let expected = !model.contains_key(&key);
                if expected {
                    model.insert(key, value);
                }
                let got = session.insert(key, value);
                assert_eq!(
                    got, expected,
                    "op {i}: insert({key}) diverged from model (seed {seed})"
                );
            }
            1 => {
                let expected = model.remove(&key).is_some();
                let got = session.remove(&key);
                assert_eq!(
                    got, expected,
                    "op {i}: remove({key}) diverged from model (seed {seed})"
                );
            }
            _ => {
                let expected = model.get(&key).copied();
                let got = session.get(&key);
                assert_eq!(
                    got, expected,
                    "op {i}: get({key}) diverged from model (seed {seed})"
                );
            }
        }
    }
    // Final sweep: every model key present with the right value, absent
    // keys absent.
    for k in 0..key_range {
        assert_eq!(
            session.get(&k),
            model.get(&k).copied(),
            "final sweep diverged at key {k} (seed {seed})"
        );
    }
}

/// Runs the same random operation stream against two maps and compares
/// every return value operation-for-operation — the subject must be
/// observationally indistinguishable from the oracle (e.g. a sharded
/// forest against a single tree).
///
/// # Panics
///
/// Panics on the first divergence between subject and oracle.
pub fn check_map_agreement<S, O>(subject: &S, oracle: &O, ops: usize, key_range: u64, seed: u64)
where
    S: ConcurrentMap<u64, u64>,
    O: ConcurrentMap<u64, u64>,
{
    let mut rng = SplitMix64::new(seed);
    let mut subj = subject.session();
    let mut orac = oracle.session();
    for i in 0..ops {
        let key = rng.below(key_range);
        match rng.below(4) {
            0 => {
                let value = rng.next_u64();
                assert_eq!(
                    subj.insert(key, value),
                    orac.insert(key, value),
                    "op {i}: insert({key}) disagreed with oracle (seed {seed})"
                );
            }
            1 => {
                assert_eq!(
                    subj.remove(&key),
                    orac.remove(&key),
                    "op {i}: remove({key}) disagreed with oracle (seed {seed})"
                );
            }
            2 => {
                assert_eq!(
                    subj.contains(&key),
                    orac.contains(&key),
                    "op {i}: contains({key}) disagreed with oracle (seed {seed})"
                );
            }
            _ => {
                assert_eq!(
                    subj.get(&key),
                    orac.get(&key),
                    "op {i}: get({key}) disagreed with oracle (seed {seed})"
                );
            }
        }
    }
    // Final sweep: both maps hold exactly the same contents.
    for k in 0..key_range {
        assert_eq!(
            subj.get(&k),
            orac.get(&k),
            "final sweep disagreed at key {k} (seed {seed})"
        );
    }
}

/// Checks the paper's immutable-value semantics: inserting an existing key
/// returns `false` and does not overwrite.
///
/// # Panics
///
/// Panics if the map overwrites or misreports.
pub fn check_duplicate_inserts<M: ConcurrentMap<u64, u64>>(map: &M) {
    // A key far outside the ranges other checks use, cleared first so this
    // check composes with them on a shared map.
    const KEY: u64 = u64::MAX - 3;
    let mut s = map.session();
    s.remove(&KEY);
    assert!(s.insert(KEY, 100), "fresh insert must succeed");
    assert!(!s.insert(KEY, 200), "duplicate insert must fail");
    assert_eq!(
        s.get(&KEY),
        Some(100),
        "duplicate insert must not overwrite"
    );
    assert!(s.remove(&KEY));
    assert!(!s.remove(&KEY), "double remove must fail");
    assert!(s.insert(KEY, 300), "reinsert after remove must succeed");
    assert_eq!(s.get(&KEY), Some(300));
    assert!(s.remove(&KEY));
}

/// Threads concurrently insert disjoint key blocks, then all keys must be
/// present; then concurrently remove them, then none may remain.
///
/// # Panics
///
/// Panics if any update is lost or any phantom key appears.
pub fn check_lost_updates<M: ConcurrentMap<u64, u64>>(map: &M, threads: u64, keys_per_thread: u64) {
    let barrier = Barrier::new(threads as usize);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (map, barrier) = (&*map, &barrier);
            scope.spawn(move || {
                let mut s = map.session();
                barrier.wait();
                for i in 0..keys_per_thread {
                    let key = t * keys_per_thread + i;
                    assert!(s.insert(key, key + 1), "insert of fresh key {key} failed");
                }
            });
        }
    });
    let mut s = map.session();
    for key in 0..threads * keys_per_thread {
        assert_eq!(s.get(&key), Some(key + 1), "lost insert of key {key}");
    }
    drop(s);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let map = &*map;
            scope.spawn(move || {
                let mut s = map.session();
                for i in 0..keys_per_thread {
                    let key = t * keys_per_thread + i;
                    assert!(s.remove(&key), "remove of present key {key} failed");
                }
            });
        }
    });
    let mut s = map.session();
    for key in 0..threads * keys_per_thread {
        assert_eq!(s.get(&key), None, "key {key} survived removal");
    }
}

/// Each thread owns the keys `k ≡ t (mod threads)` within `[0, threads *
/// keys_per_thread)` and performs random updates on them while checking
/// *every* return value against a thread-local model — valid because no
/// other thread updates that partition. Other threads concurrently issue
/// `get`s across the whole range to stress readers.
///
/// # Panics
///
/// Panics on the first per-partition divergence.
pub fn check_partitioned_determinism<M: ConcurrentMap<u64, u64>>(
    map: &M,
    threads: u64,
    ops_per_thread: usize,
    keys_per_thread: u64,
) {
    let barrier = Barrier::new(threads as usize);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (map, barrier, stop) = (&*map, &barrier, &stop);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xBEEF ^ t);
                let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                let mut s = map.session();
                barrier.wait();
                for i in 0..ops_per_thread {
                    let key = rng.below(keys_per_thread) * threads + t;
                    match rng.below(3) {
                        0 => {
                            let value = rng.next_u64();
                            let expected = !model.contains_key(&key);
                            if expected {
                                model.insert(key, value);
                            }
                            assert_eq!(
                                s.insert(key, value),
                                expected,
                                "thread {t} op {i}: insert({key}) diverged"
                            );
                        }
                        1 => {
                            let expected = model.remove(&key).is_some();
                            assert_eq!(
                                s.remove(&key),
                                expected,
                                "thread {t} op {i}: remove({key}) diverged"
                            );
                        }
                        _ => {
                            let expected = model.get(&key).copied();
                            assert_eq!(
                                s.get(&key),
                                expected,
                                "thread {t} op {i}: get({key}) diverged"
                            );
                        }
                    }
                    // Cross-partition read: result is unpredictable, but it
                    // must not crash and must stress reader paths.
                    let foreign = rng.below(threads * keys_per_thread);
                    let _ = s.get(&foreign);
                }
                // Final per-partition sweep while others may still run.
                for (k, v) in &model {
                    assert_eq!(s.get(k), Some(*v), "thread {t}: key {k} wrong at end");
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
}

/// Unrestricted concurrent mix of operations over a shared key range, then
/// a quiescent audit: repeated reads agree, and the surviving key set is a
/// subset of all keys ever inserted.
///
/// # Panics
///
/// Panics if the quiescent audit finds inconsistency.
pub fn check_mixed_quiescent_consistency<M: ConcurrentMap<u64, u64>>(
    map: &M,
    threads: u64,
    ops_per_thread: usize,
    key_range: u64,
) {
    let barrier = Barrier::new(threads as usize);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (map, barrier) = (&*map, &barrier);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xF00D ^ (t << 32));
                let mut s = map.session();
                barrier.wait();
                for _ in 0..ops_per_thread {
                    let key = rng.below(key_range);
                    match rng.below(4) {
                        0 | 1 => {
                            // Tag values with the key so the audit can
                            // verify value integrity.
                            s.insert(key, key * 2 + 1);
                        }
                        2 => {
                            s.remove(&key);
                        }
                        _ => {
                            if let Some(v) = s.get(&key) {
                                assert_eq!(v, key * 2 + 1, "value corrupted for key {key}");
                            }
                        }
                    }
                }
            });
        }
    });
    // Quiescent audit.
    let mut s = map.session();
    for key in 0..key_range {
        let first = s.get(&key);
        let second = s.get(&key);
        assert_eq!(first, second, "quiescent reads of key {key} disagree");
        if let Some(v) = first {
            assert_eq!(v, key * 2 + 1, "quiescent value corrupted for key {key}");
        }
    }
}

/// Linearizability probe via mutual exclusion: if `insert`/`remove` are
/// linearizable set operations, a *successful* `insert(K)` grants its
/// caller exclusive ownership of `K` until its own successful `remove(K)`.
/// Threads treat the map as a lock; an ownership collision proves two
/// successful inserts were concurrent with the key present (or a lost
/// remove).
///
/// # Panics
///
/// Panics on any mutual-exclusion violation.
pub fn check_insert_grants_exclusivity<M: ConcurrentMap<u64, u64>>(
    map: &M,
    threads: u64,
    acquisitions_per_thread: usize,
) {
    use std::sync::atomic::AtomicU64;
    const KEY: u64 = u64::MAX - 7;
    let owner = AtomicU64::new(0);
    let barrier = Barrier::new(threads as usize);
    std::thread::scope(|scope| {
        for t in 1..=threads {
            let (map, owner, barrier) = (&*map, &owner, &barrier);
            scope.spawn(move || {
                let mut s = map.session();
                let mut acquired = 0;
                barrier.wait();
                while acquired < acquisitions_per_thread {
                    if s.insert(KEY, t) {
                        // We hold the "lock": no other successful insert
                        // may exist until our remove.
                        let prev = owner.swap(t, Ordering::SeqCst);
                        assert_eq!(
                            prev, 0,
                            "thread {t} acquired while thread {prev} still held the key"
                        );
                        // A successful insert must also be observable.
                        assert_eq!(s.get(&KEY), Some(t), "owner cannot see its own insert");
                        let back = owner.swap(0, Ordering::SeqCst);
                        assert_eq!(back, t, "ownership stolen mid-critical-section");
                        assert!(s.remove(&KEY), "owner's remove must succeed");
                        acquired += 1;
                    }
                }
            });
        }
    });
    let mut s = map.session();
    assert_eq!(s.get(&KEY), None, "key must be free after all releases");
}

/// Asserts that counter `dominant` ≥ counter `dominated` in a metrics
/// snapshot; both are addressed as `(component, metric)` pairs.
///
/// This encodes cross-layer invariants that only hold if the layers are
/// wired correctly — e.g. every two-child delete in the Citrus tree calls
/// `synchronize_rcu` exactly once, so the RCU flavor's grace-period count
/// must dominate the tree's recorded synchronize calls.
///
/// An **empty** snapshot (a `stats`-less build collects nothing) passes
/// vacuously, so callers need no feature gates.
///
/// # Example
///
/// ```
/// use citrus_api::testkit::check_counter_dominates;
/// use citrus_obs::MetricsSnapshot;
///
/// // Empty snapshot (stats off): vacuously fine.
/// check_counter_dominates(
///     &MetricsSnapshot::default(),
///     ("rcu", "synchronize_calls"),
///     ("citrus", "synchronize_calls"),
/// );
/// ```
///
/// # Panics
///
/// Panics if either counter is missing from a non-empty snapshot, or if
/// `dominant < dominated`.
pub fn check_counter_dominates(
    snapshot: &MetricsSnapshot,
    dominant: (&str, &str),
    dominated: (&str, &str),
) {
    if snapshot.is_empty() {
        return;
    }
    let hi = snapshot.counter(dominant.0, dominant.1).unwrap_or_else(|| {
        panic!(
            "counter {}/{} missing from snapshot",
            dominant.0, dominant.1
        )
    });
    let lo = snapshot
        .counter(dominated.0, dominated.1)
        .unwrap_or_else(|| {
            panic!(
                "counter {}/{} missing from snapshot",
                dominated.0, dominated.1
            )
        });
    assert!(
        hi >= lo,
        "invariant violated: {}/{} = {hi} must be >= {}/{} = {lo}",
        dominant.0,
        dominant.1,
        dominated.0,
        dominated.1,
    );
}

/// Iteration count for concurrent/stress tests: the value of the
/// `CITRUS_STRESS_ITERS` environment variable when set, otherwise
/// `default`. A malformed value is a hard error — a soak run configured
/// with `CITRUS_STRESS_ITERS=1O000` must fail loudly, not quietly run the
/// default volume and report a clean soak that never happened.
///
/// Lets CI dial the whole suite's stress volume up (soak runs) or down
/// (sanitizer builds) without touching individual tests.
pub fn stress_iters(default: u64) -> u64 {
    env_u64_knob("CITRUS_STRESS_ITERS", default)
}

/// Shared hard-error reader for numeric testkit knobs.
fn env_u64_knob(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(e) => panic!("invalid {name}={raw:?}: {e} (expected an unsigned integer)"),
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("invalid {name}: {e}"),
    }
}

/// Guard for a running [`stress_watchdog`]; dropping it disarms the
/// watchdog (the test finished in time).
#[derive(Debug)]
pub struct StressWatchdog {
    state: Arc<(Mutex<bool>, Condvar)>,
}

impl Drop for StressWatchdog {
    fn drop(&mut self) {
        let (done, cvar) = &*self.state;
        *done.lock().unwrap() = true;
        cvar.notify_all();
    }
}

/// Arms a wall-clock watchdog for a concurrent test: if the returned guard
/// is not dropped within `CITRUS_STRESS_TIMEOUT_SECS` seconds (default
/// 300; `0` disables), the process prints a diagnostic naming `test` and
/// exits with code 124 — a livelocked test fails loudly instead of hanging
/// CI until the runner's global timeout reaps it with no indication of
/// which test wedged.
pub fn stress_watchdog(test: &str) -> StressWatchdog {
    let timeout_secs = env_u64_knob("CITRUS_STRESS_TIMEOUT_SECS", 300);
    let state = Arc::new((Mutex::new(false), Condvar::new()));
    if timeout_secs > 0 {
        let pair = Arc::clone(&state);
        let test = test.to_string();
        std::thread::spawn(move || {
            let (done, cvar) = &*pair;
            let limit = Duration::from_secs(timeout_secs);
            let started = Instant::now();
            let mut finished = done.lock().unwrap();
            while !*finished {
                match limit.checked_sub(started.elapsed()) {
                    Some(remaining) => {
                        finished = cvar.wait_timeout(finished, remaining).unwrap().0;
                    }
                    None => {
                        // A hung lincheck run has already dumped its
                        // recorded history; point the post-mortem at it.
                        let dump_note = match crate::lincheck::last_history_dump() {
                            Some(path) => {
                                format!(" Last recorded history dump: {}.", path.display())
                            }
                            None => String::new(),
                        };
                        // One copy-pasteable line reproducing the hung
                        // run's perturbation context (active schedule or
                        // chaos plan seed), if any.
                        let recipe_note = match replay_recipe() {
                            Some(recipe) => format!(" Replay: {recipe}."),
                            None => String::new(),
                        };
                        eprintln!(
                            "[citrus-testkit] stress watchdog: test '{test}' still running after \
                             {timeout_secs}s — likely livelocked. Aborting with exit code 124. \
                             Tune with CITRUS_STRESS_TIMEOUT_SECS / CITRUS_STRESS_ITERS.\
                             {dump_note}{recipe_note}"
                        );
                        std::process::exit(124);
                    }
                }
            }
        });
    }
    StressWatchdog { state }
}

/// Runs a reduced conformance battery against `make()`-produced maps under
/// an installed [`ChaosPlan`] for `seed`.
///
/// With the `chaos` cargo feature enabled this perturbs schedules (yields,
/// spin-delays, forced validation restarts) at every failpoint the seed
/// selects; without it the install is a no-op and this is a plain small
/// battery. A seed that fails here is a one-line regression test:
///
/// ```ignore
/// testkit::check_chaos_seed(MyMap::new, 0xBAD_5EED);
/// ```
pub fn check_chaos_seed<M, F>(make: F, seed: u64)
where
    M: ConcurrentMap<u64, u64>,
    F: Fn() -> M,
{
    let _chaos = install_chaos(ChaosPlan::from_seed(seed));
    let map = make();
    check_sequential_model(&map, 400, 64, seed);
    check_duplicate_inserts(&map);
    // Fresh maps below: the lost-updates check asserts its inserts hit
    // absent keys, and the mixed check audits against its own tagged
    // values — residue from the sequential model would fail both.
    let map = make();
    check_lost_updates(&map, 4, 64);
    let map = make();
    check_mixed_quiescent_consistency(&map, 4, 300, 32);
}

/// Sweeps `count` consecutive chaos schedule seeds starting at
/// `base_seed` through [`check_chaos_seed`], printing the replay recipe
/// for any seed that fails before re-raising its panic.
pub fn sweep_chaos_seeds<M, F>(make: F, base_seed: u64, count: u64)
where
    M: ConcurrentMap<u64, u64>,
    F: Fn() -> M,
{
    for i in 0..count {
        let seed = base_seed.wrapping_add(i);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_chaos_seed(&make, seed);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "[citrus-testkit] chaos seed {seed:#x} FAILED — pin it as a regression test: \
                 check_chaos_seed(<make>, {seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Checks the grace-period property end-to-end against an [`RcuFlavor`],
/// with grace-period *sharing* (piggybacked `synchronize_rcu` returns,
/// DESIGN.md §6d) exercised whenever `syncers > 1`:
///
/// `syncers` threads each repeatedly unpublish a value, call
/// `synchronize`, and only then mark the value freed. Two reader threads
/// continuously enter read-side critical sections, load the currently
/// published value, and assert — both on entry and again just before
/// leaving the section — that it has not been freed. A `synchronize` that
/// returns early (e.g. a piggyback riding a grace period that started
/// before the caller's entry fence) frees a value some still-running
/// reader observed, and the reader's second assertion fires.
///
/// Values are never republished, so the assertions are exact, not
/// heuristic. Run it under an installed [`ChaosPlan`] to sweep schedule
/// perturbations over the piggyback decision window.
///
/// # Panics
///
/// Panics if a freed value is observed inside a read-side critical
/// section — i.e. if `synchronize` violated the RCU property.
pub fn check_grace_period_property<F>(rcu: &F, syncers: usize, rounds: usize)
where
    F: citrus_rcu::RcuFlavor,
{
    use citrus_rcu::RcuHandle as _;
    use std::sync::atomic::AtomicUsize;

    let total = syncers * rounds + 1;
    let freed: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
    let published = AtomicUsize::new(0);
    let next = AtomicUsize::new(1);
    let syncers_done = AtomicUsize::new(0);
    let barrier = Barrier::new(syncers + 2);

    std::thread::scope(|s| {
        for _ in 0..2 {
            let (freed, published, syncers_done, barrier) =
                (&freed, &published, &syncers_done, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                barrier.wait();
                while syncers_done.load(Ordering::Acquire) < syncers {
                    let g = h.read_lock();
                    let v = published.load(Ordering::Acquire);
                    assert!(
                        !freed[v].load(Ordering::SeqCst),
                        "value {v} was freed while still published"
                    );
                    // Dwell inside the section so a racing synchronize has
                    // a window to (incorrectly) return early.
                    for _ in 0..64 {
                        core::hint::spin_loop();
                    }
                    assert!(
                        !freed[v].load(Ordering::SeqCst),
                        "grace period ended while a reader that observed \
                         value {v} was still inside its critical section"
                    );
                    drop(g);
                }
            });
        }
        for _ in 0..syncers {
            let (freed, published, next, syncers_done, barrier) =
                (&freed, &published, &next, &syncers_done, &barrier);
            s.spawn(move || {
                let h = rcu.register();
                barrier.wait();
                for _ in 0..rounds {
                    let fresh = next.fetch_add(1, Ordering::Relaxed);
                    let old = published.swap(fresh, Ordering::AcqRel);
                    h.synchronize();
                    freed[old].store(true, Ordering::SeqCst);
                }
                syncers_done.fetch_add(1, Ordering::Release);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut rng = SplitMix64::new(1);
        let a: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng = SplitMix64::new(1);
        let b: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn below_hits_every_residue() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "below() misses values: {seen:?}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SplitMix64::new(5).below(0);
    }

    use citrus_obs::{MetricEntry, MetricValue};

    fn snapshot_with(counters: &[(&str, &str, u64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: counters
                .iter()
                .map(|&(component, name, n)| MetricEntry {
                    component: component.to_string(),
                    name: name.to_string(),
                    value: MetricValue::Count(n),
                })
                .collect(),
        }
    }

    #[test]
    fn dominance_holds() {
        let snap = snapshot_with(&[("rcu", "gp", 7), ("citrus", "sync", 7)]);
        check_counter_dominates(&snap, ("rcu", "gp"), ("citrus", "sync"));
    }

    #[test]
    fn dominance_on_empty_snapshot_is_vacuous() {
        check_counter_dominates(&MetricsSnapshot::default(), ("a", "b"), ("c", "d"));
    }

    #[test]
    #[should_panic(expected = "invariant violated")]
    fn dominance_violation_panics() {
        let snap = snapshot_with(&[("rcu", "gp", 3), ("citrus", "sync", 7)]);
        check_counter_dominates(&snap, ("rcu", "gp"), ("citrus", "sync"));
    }

    #[test]
    #[should_panic(expected = "missing from snapshot")]
    fn missing_counter_panics() {
        let snap = snapshot_with(&[("rcu", "gp", 3)]);
        check_counter_dominates(&snap, ("rcu", "gp"), ("citrus", "sync"));
    }

    #[test]
    fn stress_iters_falls_back_to_default() {
        // CITRUS_STRESS_ITERS is unset in normal test runs.
        if std::env::var("CITRUS_STRESS_ITERS").is_err() {
            assert_eq!(stress_iters(37), 37);
        }
    }

    #[test]
    fn stress_watchdog_disarms_on_drop() {
        // Dropping the guard must not terminate the process.
        drop(stress_watchdog("stress_watchdog_disarms_on_drop"));
    }
}
