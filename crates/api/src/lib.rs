//! Common dictionary API for the Citrus reproduction.
//!
//! The paper evaluates six concurrent dictionaries (Citrus plus five
//! baselines) under one methodology. This crate defines the uniform
//! interface the benchmark harness drives — [`ConcurrentMap`] /
//! [`MapSession`] — and a [`testkit`] of reusable correctness checks
//! (sequential model conformance, lost-update detection, partitioned
//! concurrent determinism) that every implementation's test suite runs.
//!
//! # Dictionary semantics (paper §2)
//!
//! A dictionary is a set of key–value pairs with totally ordered keys:
//!
//! * `insert(k, v)` adds `(k, v)`; returns `true` iff `k` was absent.
//! * `delete(k)` removes `(k, v)`; returns `true` iff `k` was present.
//! * `contains(k)` returns the associated value, or nothing.
//!
//! Values are immutable once inserted: inserting an existing key returns
//! `false` and leaves the old value in place.
//!
//! # Sessions
//!
//! Every structure here keeps *per-thread* state (RCU reader slots, epoch
//! pins, retired-node bags), so threads interact with a map through a
//! [`MapSession`] obtained from [`ConcurrentMap::session`]. Sessions are
//! cheap, not `Send`, and any number may be live concurrently.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod lincheck;
pub mod testkit;

/// A concurrent ordered dictionary (the paper's `insert` / `delete` /
/// `contains` API).
///
/// Implementations are linearizable. Threads operate through per-thread
/// [`MapSession`]s.
///
/// # Example
///
/// ```
/// use citrus_api::{ConcurrentMap, MapSession};
///
/// fn fill<M: ConcurrentMap<u64, u64>>(map: &M, n: u64) {
///     let mut session = map.session();
///     for k in 0..n {
///         session.insert(k, k * 10);
///     }
/// }
/// ```
pub trait ConcurrentMap<K, V>: Send + Sync {
    /// Per-thread access handle; see [`MapSession`].
    type Session<'a>: MapSession<K, V>
    where
        Self: 'a;

    /// Short structure name used in benchmark reports (e.g. `"citrus"`).
    const NAME: &'static str;

    /// Creates a session for the calling thread.
    fn session(&self) -> Self::Session<'_>;
}

/// A per-thread handle to a [`ConcurrentMap`].
///
/// Methods take `&mut self` because sessions own per-thread scratch state
/// (retire bags, RNG-free validation buffers); the *map* itself is shared
/// and fully concurrent.
pub trait MapSession<K, V> {
    /// Returns the value associated with `key`, if present.
    ///
    /// For Citrus this is the paper's wait-free `contains` that runs inside
    /// an RCU read-side critical section.
    fn get(&mut self, key: &K) -> Option<V>;

    /// Returns `true` iff `key` is present.
    fn contains(&mut self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `(key, value)`. Returns `true` iff `key` was absent
    /// (the paper's `insert`); on `false` the map is unchanged.
    fn insert(&mut self, key: K, value: V) -> bool;

    /// Removes `key`. Returns `true` iff `key` was present
    /// (the paper's `delete`).
    fn remove(&mut self, key: &K) -> bool;
}

/// Ordered reads over a [`MapSession`]: range scans and nearest-neighbour
/// queries.
///
/// A dictionary is a *search tree* here, so readers can traverse
/// multi-node regions, not just probe single keys. Every method is
/// linearizable like the point operations: the returned entries are the
/// map's contents over the queried region at one instant between
/// invocation and response. Implementations that traverse live structure
/// (Citrus) validate the traversal and restart on interference;
/// snapshot-based structures (Bonsai) read one immutable root.
pub trait OrderedMapSession<K, V>: MapSession<K, V> {
    /// Returns every `(key, value)` pair with `lo <= key <= hi`, in
    /// ascending key order. An empty range (`lo > hi`) yields no entries.
    fn range_scan(&mut self, lo: &K, hi: &K) -> Vec<(K, V)>;

    /// Returns the entry with the least key **strictly greater** than
    /// `key`, if any.
    fn successor(&mut self, key: &K) -> Option<(K, V)>;

    /// Returns the entry with the greatest key **strictly less** than
    /// `key`, if any.
    fn predecessor(&mut self, key: &K) -> Option<(K, V)>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// A trivial coarse-locked reference implementation, used to sanity
    /// check the trait contracts and the testkit itself.
    #[derive(Default, Debug)]
    struct CoarseMap {
        inner: Mutex<BTreeMap<u64, u64>>,
    }

    struct CoarseSession<'a>(&'a CoarseMap);

    impl ConcurrentMap<u64, u64> for CoarseMap {
        type Session<'a> = CoarseSession<'a>;
        const NAME: &'static str = "coarse-btreemap";

        fn session(&self) -> CoarseSession<'_> {
            CoarseSession(self)
        }
    }

    impl MapSession<u64, u64> for CoarseSession<'_> {
        fn get(&mut self, key: &u64) -> Option<u64> {
            self.0.inner.lock().unwrap().get(key).copied()
        }

        fn insert(&mut self, key: u64, value: u64) -> bool {
            let mut m = self.0.inner.lock().unwrap();
            match m.entry(key) {
                std::collections::btree_map::Entry::Occupied(_) => false,
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(value);
                    true
                }
            }
        }

        fn remove(&mut self, key: &u64) -> bool {
            self.0.inner.lock().unwrap().remove(key).is_some()
        }
    }

    impl OrderedMapSession<u64, u64> for CoarseSession<'_> {
        fn range_scan(&mut self, lo: &u64, hi: &u64) -> Vec<(u64, u64)> {
            if lo > hi {
                return Vec::new();
            }
            self.0
                .inner
                .lock()
                .unwrap()
                .range(*lo..=*hi)
                .map(|(k, v)| (*k, *v))
                .collect()
        }

        fn successor(&mut self, key: &u64) -> Option<(u64, u64)> {
            self.0
                .inner
                .lock()
                .unwrap()
                .range((std::ops::Bound::Excluded(*key), std::ops::Bound::Unbounded))
                .next()
                .map(|(k, v)| (*k, *v))
        }

        fn predecessor(&mut self, key: &u64) -> Option<(u64, u64)> {
            self.0
                .inner
                .lock()
                .unwrap()
                .range(..*key)
                .next_back()
                .map(|(k, v)| (*k, *v))
        }
    }

    #[test]
    fn ordered_session_contract_on_the_reference_map() {
        let m = CoarseMap::default();
        let mut s = m.session();
        for k in [5u64, 1, 9, 3] {
            assert!(s.insert(k, k * 10));
        }
        assert_eq!(s.range_scan(&2, &8), vec![(3, 30), (5, 50)]);
        assert_eq!(s.range_scan(&8, &2), vec![]);
        assert_eq!(s.successor(&3), Some((5, 50)));
        assert_eq!(s.successor(&9), None);
        assert_eq!(s.predecessor(&3), Some((1, 10)));
        assert_eq!(s.predecessor(&1), None);
    }

    #[test]
    fn contains_defaults_to_get() {
        let m = CoarseMap::default();
        let mut s = m.session();
        assert!(!s.contains(&1));
        assert!(s.insert(1, 10));
        assert!(s.contains(&1));
    }

    #[test]
    fn testkit_accepts_a_correct_map() {
        // Fresh map per check: the checks assume they own the key ranges
        // they exercise.
        testkit::check_sequential_model(&CoarseMap::default(), 4_000, 128, 0xC17A05);
        testkit::check_duplicate_inserts(&CoarseMap::default());
        testkit::check_lost_updates(&CoarseMap::default(), 4, 500);
        testkit::check_partitioned_determinism(&CoarseMap::default(), 4, 2_000, 64);
        testkit::check_mixed_quiescent_consistency(&CoarseMap::default(), 4, 2_000, 64);
    }

    #[test]
    #[should_panic]
    fn testkit_rejects_a_broken_map() {
        /// Broken map: `insert` always reports success.
        #[derive(Default, Debug)]
        struct Broken(CoarseMap);
        struct BrokenSession<'a>(CoarseSession<'a>);

        impl ConcurrentMap<u64, u64> for Broken {
            type Session<'a> = BrokenSession<'a>;
            const NAME: &'static str = "broken";
            fn session(&self) -> BrokenSession<'_> {
                BrokenSession(self.0.session())
            }
        }
        impl MapSession<u64, u64> for BrokenSession<'_> {
            fn get(&mut self, key: &u64) -> Option<u64> {
                self.0.get(key)
            }
            fn insert(&mut self, key: u64, value: u64) -> bool {
                self.0.insert(key, value);
                true // lie
            }
            fn remove(&mut self, key: &u64) -> bool {
                self.0.remove(key)
            }
        }

        let m = Broken::default();
        testkit::check_sequential_model(&m, 1_000, 16, 7);
    }
}
