//! Linearizability checking for [`ConcurrentMap`] implementations:
//! recorded concurrent histories plus a Wing–Gong/Lowe (WGL) checker.
//!
//! The paper's central correctness claim (§4) is that Citrus is
//! *linearizable*. The [`testkit`](crate::testkit) batteries enforce
//! strong heuristic invariants (quiescent agreement, lost-update
//! detection, insert exclusivity), but none of them would catch a
//! stale-read anomaly that violates real-time order — a `get` returning a
//! value the key no longer held when the `get` *started*. This module is
//! the machine-checked stand-in for the paper's proof:
//!
//! 1. A **history recorder** ([`HistoryRecorder`] / [`RecordedSession`])
//!    wraps any [`MapSession`] and logs one invocation/response event pair
//!    per operation into a *per-thread append-only buffer*. The only
//!    shared state on the hot path is a single global ticket clock (an
//!    atomic `fetch_add` per event — no lock): an operation's true
//!    linearization point lies between its two ticket draws, so ticket
//!    order is a sound real-time precedence relation (`a` precedes `b`
//!    iff `a`'s response ticket < `b`'s invocation ticket).
//! 2. A **WGL checker** ([`check_history`]) decides whether a recorded
//!    history has a linearization: a total order of the operations that
//!    respects real-time precedence and replays correctly against the
//!    sequential map specification. The search is a DFS over "linearize
//!    any currently-eligible operation next" with memoized
//!    `(linearized-set, state)` pruning. Because the dictionary has *set
//!    semantics* — each operation reads and writes the presence/value of
//!    exactly one key — the history is first partitioned per key and each
//!    per-key subhistory is checked independently, which keeps the search
//!    tractable (the full-history search space is the product of the
//!    per-key ones; see DESIGN.md §6f for the compositionality argument).
//! 3. On failure the offending per-key subhistory is **shrunk** to a
//!    1-minimal non-linearizable sub-history (greedily dropping every
//!    operation whose removal preserves the violation) and pretty-printed
//!    in timestamp order.
//!
//! [`check_linearizable`] drives the whole pipeline from a seed: run a
//! mixed workload, record, dump the history to a file (forensic evidence
//! even if the checker itself is interrupted), check, and panic with the
//! minimal counterexample on violation. [`sweep_lincheck_chaos_seeds`]
//! layers the chaos failpoint subsystem on top to diversify the
//! interleavings each seed explores.
//!
//! # Preconditions
//!
//! The checker assumes the map was **empty** when recording began and
//! that every recorded operation completed (crash-free histories; a
//! [`RecordedSession`] logs the response event after the inner call
//! returns, so a panicking operation simply never enters the history).

use crate::{ConcurrentMap, MapSession, OrderedMapSession};
use citrus_chaos::{install as install_chaos, ChaosPlan};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// One recorded operation (invocation kind and arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `insert(key, value)`.
    Insert {
        /// The inserted key.
        key: u64,
        /// The inserted value.
        value: u64,
    },
    /// `remove(key)`.
    Remove {
        /// The removed key.
        key: u64,
    },
    /// `get(key)`.
    Get {
        /// The queried key.
        key: u64,
    },
    /// `contains(key)`.
    Contains {
        /// The queried key.
        key: u64,
    },
    /// `range_scan(lo, hi)` (inclusive bounds).
    RangeScan {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
    /// `successor(key)`.
    Successor {
        /// The probe key (exclusive lower bound of the query).
        key: u64,
    },
    /// `predecessor(key)`.
    Predecessor {
        /// The probe key (exclusive upper bound of the query).
        key: u64,
    },
}

impl Op {
    /// The single key a *point* operation touches (the basis for per-key
    /// partitioning), or `None` for ordered reads, which constrain a key
    /// region instead of one key.
    #[must_use]
    pub fn key(&self) -> Option<u64> {
        match *self {
            Op::Insert { key, .. }
            | Op::Remove { key }
            | Op::Get { key }
            | Op::Contains { key } => Some(key),
            Op::RangeScan { .. } | Op::Successor { .. } | Op::Predecessor { .. } => None,
        }
    }
}

/// A recorded response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ret {
    /// `insert` / `remove` / `contains` result.
    Granted(bool),
    /// `get` result.
    Found(Option<u64>),
    /// `range_scan` result: entries in ascending key order.
    Entries(Vec<(u64, u64)>),
    /// `successor` / `predecessor` result.
    Entry(Option<(u64, u64)>),
}

/// One completed operation in a history: real-time interval (ticket
/// clock), issuing thread, invocation, and response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedOp {
    /// Recorder lane (thread index) that issued the operation.
    pub thread: usize,
    /// Invocation ticket — drawn immediately before the inner call.
    pub inv: u64,
    /// Response ticket — drawn immediately after the inner call returned.
    pub ret_at: u64,
    /// The operation.
    pub op: Op,
    /// Its response.
    pub ret: Ret,
}

impl fmt::Display for RecordedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[inv {:>6} → ret {:>6}] thread {}: ",
            self.inv, self.ret_at, self.thread
        )?;
        match (&self.op, &self.ret) {
            (Op::Insert { key, value }, Ret::Granted(g)) => {
                write!(f, "insert({key}, value {value}) → {g}")
            }
            (Op::Remove { key }, Ret::Granted(g)) => write!(f, "remove({key}) → {g}"),
            (Op::Contains { key }, Ret::Granted(g)) => write!(f, "contains({key}) → {g}"),
            (Op::Get { key }, Ret::Found(v)) => write!(f, "get({key}) → {v:?}"),
            (Op::RangeScan { lo, hi }, Ret::Entries(es)) => {
                write!(f, "range_scan({lo}..={hi}) → {es:?}")
            }
            (Op::Successor { key }, Ret::Entry(e)) => write!(f, "successor({key}) → {e:?}"),
            (Op::Predecessor { key }, Ret::Entry(e)) => write!(f, "predecessor({key}) → {e:?}"),
            (op, ret) => write!(f, "<malformed op/ret pairing {op:?} / {ret:?}>"),
        }
    }
}

/// A complete concurrent history: every completed operation from every
/// recorder lane, merged and sorted by invocation ticket.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// The operations, sorted by invocation ticket.
    pub ops: Vec<RecordedOp>,
}

impl History {
    /// Merges per-thread logs into one history (sorted by invocation
    /// ticket).
    #[must_use]
    pub fn from_thread_logs(logs: Vec<Vec<RecordedOp>>) -> Self {
        let mut ops: Vec<RecordedOp> = logs.into_iter().flatten().collect();
        ops.sort_by_key(|o| o.inv);
        Self { ops }
    }

    /// Renders the whole history, one operation per line, in invocation
    /// order.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&format!("{op}\n"));
        }
        out
    }
}

/// Issues monotonic event tickets and builds [`RecordedSession`]s.
///
/// One recorder serves one concurrent run: create it, wrap every worker's
/// session via [`wrap`](Self::wrap), and merge the finished per-thread
/// logs with [`History::from_thread_logs`].
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    clock: AtomicU64,
}

impl HistoryRecorder {
    /// Creates a recorder with the ticket clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps `session` so every operation through it is logged under lane
    /// `thread`. The log is thread-private (append-only `Vec`); only the
    /// ticket clock is shared.
    pub fn wrap<S>(&self, thread: usize, session: S) -> RecordedSession<'_, S> {
        RecordedSession {
            clock: &self.clock,
            thread,
            log: Vec::new(),
            inner: session,
        }
    }
}

/// A [`MapSession`] wrapper that records every operation (see
/// [`HistoryRecorder`]).
#[derive(Debug)]
pub struct RecordedSession<'c, S> {
    clock: &'c AtomicU64,
    thread: usize,
    log: Vec<RecordedOp>,
    inner: S,
}

impl<S> RecordedSession<'_, S> {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Consumes the wrapper, returning this lane's log.
    #[must_use]
    pub fn finish(self) -> Vec<RecordedOp> {
        self.log
    }
}

impl<S: MapSession<u64, u64>> MapSession<u64, u64> for RecordedSession<'_, S> {
    fn get(&mut self, key: &u64) -> Option<u64> {
        let inv = self.tick();
        let r = self.inner.get(key);
        let ret_at = self.tick();
        self.log.push(RecordedOp {
            thread: self.thread,
            inv,
            ret_at,
            op: Op::Get { key: *key },
            ret: Ret::Found(r),
        });
        r
    }

    fn contains(&mut self, key: &u64) -> bool {
        let inv = self.tick();
        let r = self.inner.contains(key);
        let ret_at = self.tick();
        self.log.push(RecordedOp {
            thread: self.thread,
            inv,
            ret_at,
            op: Op::Contains { key: *key },
            ret: Ret::Granted(r),
        });
        r
    }

    fn insert(&mut self, key: u64, value: u64) -> bool {
        let inv = self.tick();
        let r = self.inner.insert(key, value);
        let ret_at = self.tick();
        self.log.push(RecordedOp {
            thread: self.thread,
            inv,
            ret_at,
            op: Op::Insert { key, value },
            ret: Ret::Granted(r),
        });
        r
    }

    fn remove(&mut self, key: &u64) -> bool {
        let inv = self.tick();
        let r = self.inner.remove(key);
        let ret_at = self.tick();
        self.log.push(RecordedOp {
            thread: self.thread,
            inv,
            ret_at,
            op: Op::Remove { key: *key },
            ret: Ret::Granted(r),
        });
        r
    }
}

impl<S: OrderedMapSession<u64, u64>> OrderedMapSession<u64, u64> for RecordedSession<'_, S> {
    fn range_scan(&mut self, lo: &u64, hi: &u64) -> Vec<(u64, u64)> {
        let inv = self.tick();
        let r = self.inner.range_scan(lo, hi);
        let ret_at = self.tick();
        self.log.push(RecordedOp {
            thread: self.thread,
            inv,
            ret_at,
            op: Op::RangeScan { lo: *lo, hi: *hi },
            ret: Ret::Entries(r.clone()),
        });
        r
    }

    fn successor(&mut self, key: &u64) -> Option<(u64, u64)> {
        let inv = self.tick();
        let r = self.inner.successor(key);
        let ret_at = self.tick();
        self.log.push(RecordedOp {
            thread: self.thread,
            inv,
            ret_at,
            op: Op::Successor { key: *key },
            ret: Ret::Entry(r),
        });
        r
    }

    fn predecessor(&mut self, key: &u64) -> Option<(u64, u64)> {
        let inv = self.tick();
        let r = self.inner.predecessor(key);
        let ret_at = self.tick();
        self.log.push(RecordedOp {
            thread: self.thread,
            inv,
            ret_at,
            op: Op::Predecessor { key: *key },
            ret: Ret::Entry(r),
        });
        r
    }
}

/// A linearizability violation: the minimal (greedily shrunk) offending
/// sub-history on one key component.
#[derive(Debug, Clone)]
pub struct NonLinearizable {
    /// The keys the offending sub-history touches or observed (one key
    /// for a point-op violation; several when an ordered read is
    /// involved).
    pub keys: Vec<u64>,
    /// The 1-minimal non-linearizable sub-history, in invocation order.
    pub ops: Vec<RecordedOp>,
}

impl fmt::Display for NonLinearizable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let keys = self
            .keys
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(
            f,
            "minimal non-linearizable sub-history on key(s) {keys} ({} ops, invocation order):",
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        write!(
            f,
            "  (no total order of these operations both respects their real-time \
             intervals and replays against the sequential map spec)"
        )
    }
}

/// Replays `op` against the single-key sequential spec state (`None` =
/// absent, `Some(v)` = present with value `v`); returns the post-state,
/// or `None` when the recorded response is impossible from `state`.
///
/// # Panics
///
/// Panics on a malformed op/ret pairing (e.g. an `Insert` recorded with a
/// `Found` response) — that is recorder corruption, not a linearizability
/// verdict.
fn apply(op: &RecordedOp, state: Option<u64>) -> Option<Option<u64>> {
    match (&op.op, &op.ret) {
        (Op::Insert { value, .. }, Ret::Granted(true)) => state.is_none().then_some(Some(*value)),
        (Op::Insert { .. }, Ret::Granted(false)) => state.is_some().then_some(state),
        (Op::Remove { .. }, Ret::Granted(true)) => state.is_some().then_some(None),
        (Op::Remove { .. }, Ret::Granted(false)) => state.is_none().then_some(None),
        (Op::Get { .. }, Ret::Found(v)) => (state == *v).then_some(state),
        (Op::Contains { .. }, Ret::Granted(present)) => {
            (state.is_some() == *present).then_some(state)
        }
        (op, ret) => panic!("malformed history: op {op:?} recorded with response {ret:?}"),
    }
}

/// Replays `op` against a multi-key sequential spec state (the map
/// restricted to one key component); returns the post-state, or `None`
/// when the recorded response is impossible from `state`.
///
/// Used for components that contain ordered reads — a `RangeScan` /
/// `Successor` / `Predecessor` constrains a whole key region at once, so
/// its component tracks every key in that region.
///
/// # Panics
///
/// Panics on a malformed op/ret pairing (recorder corruption).
fn apply_multi(op: &RecordedOp, state: &BTreeMap<u64, u64>) -> Option<BTreeMap<u64, u64>> {
    match (&op.op, &op.ret) {
        (Op::Insert { key, value }, Ret::Granted(true)) => (!state.contains_key(key)).then(|| {
            let mut next = state.clone();
            next.insert(*key, *value);
            next
        }),
        (Op::Insert { key, .. }, Ret::Granted(false)) => {
            state.contains_key(key).then(|| state.clone())
        }
        (Op::Remove { key }, Ret::Granted(true)) => state.contains_key(key).then(|| {
            let mut next = state.clone();
            next.remove(key);
            next
        }),
        (Op::Remove { key }, Ret::Granted(false)) => {
            (!state.contains_key(key)).then(|| state.clone())
        }
        (Op::Get { key }, Ret::Found(v)) => (state.get(key).copied() == *v).then(|| state.clone()),
        (Op::Contains { key }, Ret::Granted(present)) => {
            (state.contains_key(key) == *present).then(|| state.clone())
        }
        (Op::RangeScan { lo, hi }, Ret::Entries(es)) => {
            let expect: Vec<(u64, u64)> = if lo <= hi {
                state.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
            } else {
                Vec::new()
            };
            (*es == expect).then(|| state.clone())
        }
        (Op::Successor { key }, Ret::Entry(e)) => {
            let expect = state
                .range((std::ops::Bound::Excluded(*key), std::ops::Bound::Unbounded))
                .next()
                .map(|(&k, &v)| (k, v));
            (*e == expect).then(|| state.clone())
        }
        (Op::Predecessor { key }, Ret::Entry(e)) => {
            let expect = state.range(..*key).next_back().map(|(&k, &v)| (k, v));
            (*e == expect).then(|| state.clone())
        }
        (op, ret) => panic!("malformed history: op {op:?} recorded with response {ret:?}"),
    }
}

#[inline]
fn bit(mask: &[u64], i: usize) -> bool {
    mask[i / 64] >> (i % 64) & 1 == 1
}

#[inline]
fn set_bit(mask: &mut [u64], i: usize) {
    mask[i / 64] |= 1 << (i % 64);
}

#[inline]
fn clear_bit(mask: &mut [u64], i: usize) {
    mask[i / 64] &= !(1 << (i % 64));
}

/// Wing–Gong DFS with Lowe's memoization over one key's subhistory:
/// `true` iff a linearization exists.
///
/// An operation is *eligible* next iff no other still-unlinearized
/// operation responded before it was invoked (real-time precedence must
/// be respected). Visited `(linearized-set, state)` configurations are
/// memoized: reaching the same set of linearized operations with the same
/// abstract state again cannot succeed where the first visit failed.
fn is_linearizable(ops: &[RecordedOp]) -> bool {
    let n = ops.len();
    if n == 0 {
        return true;
    }
    let mut done = vec![0u64; n.div_ceil(64)];
    let mut memo: HashSet<(Box<[u64]>, Option<u64>)> = HashSet::new();
    dfs(ops, &mut done, 0, None, &mut memo)
}

fn dfs(
    ops: &[RecordedOp],
    done: &mut [u64],
    n_done: usize,
    state: Option<u64>,
    memo: &mut HashSet<(Box<[u64]>, Option<u64>)>,
) -> bool {
    if n_done == ops.len() {
        return true;
    }
    if !memo.insert((done.to_vec().into_boxed_slice(), state)) {
        return false;
    }
    // Smallest and second-smallest response tickets among pending ops:
    // op `i` is eligible iff its invocation precedes every *other*
    // pending op's response.
    let (mut min1, mut min1_at, mut min2) = (u64::MAX, usize::MAX, u64::MAX);
    for (i, op) in ops.iter().enumerate() {
        if bit(done, i) {
            continue;
        }
        if op.ret_at < min1 {
            (min2, min1, min1_at) = (min1, op.ret_at, i);
        } else if op.ret_at < min2 {
            min2 = op.ret_at;
        }
    }
    for (i, op) in ops.iter().enumerate() {
        if bit(done, i) {
            continue;
        }
        let earliest_other_ret = if i == min1_at { min2 } else { min1 };
        if earliest_other_ret < op.inv {
            continue; // some pending op completed before this one started
        }
        if let Some(next) = apply(op, state) {
            set_bit(done, i);
            if dfs(ops, done, n_done + 1, next, memo) {
                return true;
            }
            clear_bit(done, i);
        }
    }
    false
}

/// Memo key for the multi-key DFS: the done-set bitmap plus the abstract
/// map state as a sorted entry list.
type MultiMemo = HashSet<(Box<[u64]>, Vec<(u64, u64)>)>;

/// Multi-key variant of [`is_linearizable`], for components containing
/// ordered reads: the abstract state is the map restricted to the
/// component's keys (a `BTreeMap`), memoized as a sorted entry list.
fn is_linearizable_multi(ops: &[RecordedOp]) -> bool {
    let n = ops.len();
    if n == 0 {
        return true;
    }
    let mut done = vec![0u64; n.div_ceil(64)];
    let mut memo: MultiMemo = HashSet::new();
    dfs_multi(ops, &mut done, 0, &BTreeMap::new(), &mut memo)
}

fn dfs_multi(
    ops: &[RecordedOp],
    done: &mut [u64],
    n_done: usize,
    state: &BTreeMap<u64, u64>,
    memo: &mut MultiMemo,
) -> bool {
    if n_done == ops.len() {
        return true;
    }
    let snapshot: Vec<(u64, u64)> = state.iter().map(|(&k, &v)| (k, v)).collect();
    if !memo.insert((done.to_vec().into_boxed_slice(), snapshot)) {
        return false;
    }
    // Same eligibility rule as the single-key DFS: an op may linearize
    // next iff no *other* pending op responded before it was invoked.
    let (mut min1, mut min1_at, mut min2) = (u64::MAX, usize::MAX, u64::MAX);
    for (i, op) in ops.iter().enumerate() {
        if bit(done, i) {
            continue;
        }
        if op.ret_at < min1 {
            (min2, min1, min1_at) = (min1, op.ret_at, i);
        } else if op.ret_at < min2 {
            min2 = op.ret_at;
        }
    }
    for (i, op) in ops.iter().enumerate() {
        if bit(done, i) {
            continue;
        }
        let earliest_other_ret = if i == min1_at { min2 } else { min1 };
        if earliest_other_ret < op.inv {
            continue;
        }
        if let Some(next) = apply_multi(op, state) {
            set_bit(done, i);
            if dfs_multi(ops, done, n_done + 1, &next, memo) {
                return true;
            }
            clear_bit(done, i);
        }
    }
    false
}

/// Dispatches a component to the cheapest sound checker: the
/// `Option<u64>`-state DFS when every op is a point op on one key,
/// otherwise the multi-key DFS.
fn component_linearizable(ops: &[RecordedOp]) -> bool {
    match ops.first().and_then(|o| o.op.key()) {
        Some(k0) if ops.iter().all(|o| o.op.key() == Some(k0)) => is_linearizable(ops),
        _ => is_linearizable_multi(ops),
    }
}

/// Greedily shrinks a non-linearizable component subhistory to a
/// 1-minimal one: repeatedly drop any operation whose removal preserves
/// non-linearizability, until no single removal does.
fn shrink(mut ops: Vec<RecordedOp>) -> Vec<RecordedOp> {
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < ops.len() {
            let mut candidate = ops.clone();
            candidate.remove(i);
            if !component_linearizable(&candidate) {
                ops = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            return ops;
        }
    }
}

/// The keys a (shrunk) counterexample touches or observed: point-op keys
/// plus every key an ordered read returned.
fn touched_keys(ops: &[RecordedOp]) -> Vec<u64> {
    let mut keys: Vec<u64> = Vec::new();
    for op in ops {
        if let Some(k) = op.op.key() {
            keys.push(k);
        }
        match &op.ret {
            Ret::Entries(es) => keys.extend(es.iter().map(|(k, _)| *k)),
            Ret::Entry(Some((k, _))) => keys.push(*k),
            _ => {}
        }
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// Disjoint-set forest over relevant-key indices (path-halving `find`).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[ra] = rb;
    }
}

/// Checks a recorded history for linearizability against the sequential
/// map specification (empty initial state).
///
/// The history is partitioned into independent *key components* (sound
/// for set semantics: the spec is a product of independent single-key
/// cells, so a linearization exists iff one exists per component).
/// Point ops touch exactly one key; an ordered read (`RangeScan` /
/// `Successor` / `Predecessor`) constrains a whole key region, so every
/// *relevant* key in its region — a key some point op touches or some
/// ordered read returned — is unioned into one component. Keys no
/// operation ever touches or observes are absent at every instant (the
/// map starts empty), so they impose no cross-component constraints.
/// Point-only components run the fast single-key WGL DFS; components
/// with ordered reads run the multi-key variant. The first violating
/// component is shrunk to a minimal counterexample.
///
/// # Errors
///
/// Returns the shrunk counterexample for the first violating component
/// (ordered by smallest key).
pub fn check_history(history: &History) -> Result<(), NonLinearizable> {
    // Relevant keys, sorted: point-op keys plus keys ordered reads
    // returned.
    let keys = touched_keys(&history.ops);

    // The half-open index range of relevant keys an ordered read
    // constrains, or `None` when it constrains no relevant key.
    let span = |op: &Op| -> Option<(usize, usize)> {
        match *op {
            Op::RangeScan { lo, hi } => {
                if lo > hi {
                    return None;
                }
                let s = keys.partition_point(|&k| k < lo);
                let e = keys.partition_point(|&k| k <= hi);
                (s < e).then_some((s, e))
            }
            Op::Successor { key } => {
                let s = keys.partition_point(|&k| k <= key);
                (s < keys.len()).then_some((s, keys.len()))
            }
            Op::Predecessor { key } => {
                let e = keys.partition_point(|&k| k < key);
                (e > 0).then_some((0, e))
            }
            _ => None,
        }
    };

    let mut uf = UnionFind::new(keys.len());
    for op in &history.ops {
        if let Some((s, e)) = span(&op.op) {
            for i in s + 1..e {
                uf.union(s, i);
            }
        }
    }

    // Bucket ops by component, ordered by the component's smallest key.
    let mut components: BTreeMap<usize, Vec<RecordedOp>> = BTreeMap::new();
    let mut min_index_of_root: BTreeMap<usize, usize> = BTreeMap::new();
    for i in 0..keys.len() {
        let root = uf.find(i);
        min_index_of_root.entry(root).or_insert(i);
    }
    for op in &history.ops {
        let anchor = match op.op.key() {
            Some(k) => keys.binary_search(&k).expect("point key is relevant"),
            None => match span(&op.op) {
                Some((s, _)) => s,
                None => {
                    // The ordered read constrains no relevant key: its
                    // whole region is untouched, hence empty at every
                    // instant. It must have observed exactly that.
                    if apply_multi(op, &BTreeMap::new()).is_none() {
                        return Err(NonLinearizable {
                            keys: touched_keys(std::slice::from_ref(op)),
                            ops: vec![op.clone()],
                        });
                    }
                    continue;
                }
            },
        };
        let root = uf.find(anchor);
        components
            .entry(min_index_of_root[&root])
            .or_default()
            .push(op.clone());
    }

    for ops in components.into_values() {
        if !component_linearizable(&ops) {
            let shrunk = shrink(ops);
            return Err(NonLinearizable {
                keys: touched_keys(&shrunk),
                ops: shrunk,
            });
        }
    }
    Ok(())
}

/// Runs a seeded mixed workload (≈40% insert / 30% remove / 30% get over
/// uniform keys in `[0, key_range)`) with `threads` workers of
/// `ops_per_thread` operations each against `map`, recording every
/// operation. Inserted values are unique per `(thread, op)` so a stale
/// `get` pins exactly which insert it observed.
pub fn record_history<M: ConcurrentMap<u64, u64>>(
    map: &M,
    threads: usize,
    ops_per_thread: usize,
    key_range: u64,
    seed: u64,
) -> History {
    assert!(threads > 0, "at least one recording worker required");
    let recorder = HistoryRecorder::new();
    let barrier = Barrier::new(threads);
    let logs: Vec<Vec<RecordedOp>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (recorder, barrier, map) = (&recorder, &barrier, &*map);
                scope.spawn(move || {
                    let mut rng = crate::testkit::SplitMix64::new(
                        seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut session = recorder.wrap(t, map.session());
                    barrier.wait();
                    for i in 0..ops_per_thread {
                        let key = rng.below(key_range);
                        match rng.below(10) {
                            0..=3 => {
                                session.insert(key, ((t as u64) << 32) | i as u64);
                            }
                            4..=6 => {
                                session.remove(&key);
                            }
                            _ => {
                                session.get(&key);
                            }
                        }
                    }
                    session.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recording worker panicked"))
            .collect()
    });
    History::from_thread_logs(logs)
}

/// The most recently written history dump path, if any (process-global).
///
/// [`check_linearizable`] notes every dump it writes here so the
/// [`stress_watchdog`](crate::testkit::stress_watchdog) timeout
/// diagnostic can point at the forensic evidence a hung lincheck run
/// left behind.
static LAST_DUMP: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Records `path` as the most recent history dump.
pub fn note_history_dump(path: &Path) {
    *LAST_DUMP.lock().unwrap() = Some(path.to_path_buf());
}

/// The most recently recorded history dump path, if any.
#[must_use]
pub fn last_history_dump() -> Option<PathBuf> {
    LAST_DUMP.lock().unwrap().clone()
}

/// Writes the rendered history as
/// `lincheck_<name>_<seed>.history.txt` under `CITRUS_LIN_DUMP_DIR`
/// (default: the OS temp directory) and notes the path for the stress
/// watchdog. Returns `None` (with a warning) if the write fails — dump
/// failure must never mask the actual linearizability verdict.
fn dump_history(name: &str, seed: u64, history: &History) -> Option<PathBuf> {
    let dir =
        std::env::var_os("CITRUS_LIN_DUMP_DIR").map_or_else(std::env::temp_dir, PathBuf::from);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "[citrus-lincheck] cannot create dump dir {}: {e}",
            dir.display()
        );
        return None;
    }
    let path = dir.join(format!("lincheck_{name}_{seed:#x}.history.txt"));
    let body = format!(
        "# lincheck history: structure {name}, seed {seed:#x}, {} ops\n{}",
        history.ops.len(),
        history.render()
    );
    match std::fs::write(&path, body) {
        Ok(()) => {
            note_history_dump(&path);
            Some(path)
        }
        Err(e) => {
            eprintln!(
                "[citrus-lincheck] history dump to {} failed: {e}",
                path.display()
            );
            None
        }
    }
}

/// Runs a seeded mixed workload like [`record_history`] but with ordered
/// reads in the mix (≈30% insert / 25% remove / 15% get / 15% range scan
/// of width ≤ 5 / 10% successor / 5% predecessor), recording every
/// operation including the full entry lists scans returned.
pub fn record_scan_history<M>(
    map: &M,
    threads: usize,
    ops_per_thread: usize,
    key_range: u64,
    seed: u64,
) -> History
where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
{
    assert!(threads > 0, "at least one recording worker required");
    let recorder = HistoryRecorder::new();
    let barrier = Barrier::new(threads);
    let logs: Vec<Vec<RecordedOp>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (recorder, barrier, map) = (&recorder, &barrier, &*map);
                scope.spawn(move || {
                    let mut rng = crate::testkit::SplitMix64::new(
                        seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut session = recorder.wrap(t, map.session());
                    barrier.wait();
                    for i in 0..ops_per_thread {
                        let key = rng.below(key_range);
                        match rng.below(20) {
                            0..=5 => {
                                session.insert(key, ((t as u64) << 32) | i as u64);
                            }
                            6..=10 => {
                                session.remove(&key);
                            }
                            11..=13 => {
                                session.get(&key);
                            }
                            14..=16 => {
                                let hi = key + rng.below(5);
                                session.range_scan(&key, &hi);
                            }
                            17..=18 => {
                                session.successor(&key);
                            }
                            _ => {
                                session.predecessor(&key);
                            }
                        }
                    }
                    session.finish()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recording worker panicked"))
            .collect()
    });
    History::from_thread_logs(logs)
}

/// Shared verdict handling for the end-to-end drivers: dump, check,
/// panic with the minimal counterexample on violation.
fn verify_recorded(
    name: &str,
    threads: usize,
    ops_per_thread: usize,
    key_range: u64,
    seed: u64,
    history: &History,
) {
    let dump = dump_history(name, seed, history);
    if let Err(cx) = check_history(history) {
        let dump_note = match &dump {
            Some(path) => {
                // Append the counterexample to the dump so the artifact is
                // self-contained.
                let _ = std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .and_then(|mut f| {
                        use std::io::Write as _;
                        write!(f, "\n# VERDICT\n{cx}\n")
                    });
                format!("full history dump: {}", path.display())
            }
            None => "full history dump unavailable (write failed)".to_string(),
        };
        // One copy-pasteable line reproducing the perturbation context
        // (active deterministic schedule or chaos plan seed), if any.
        let recipe_note = match citrus_chaos::replay_recipe() {
            Some(recipe) => format!("\nreplay: {recipe}"),
            None => String::new(),
        };
        panic!(
            "non-linearizable history for {name} (seed {seed:#x}, {threads} threads × \
             {ops_per_thread} ops, keys [0, {key_range})):\n{cx}\n{dump_note}{recipe_note}"
        );
    }
}

/// End-to-end linearizability check: build a fresh map with `make`, run a
/// seeded mixed workload (`threads` × `ops_per_thread` over
/// `[0, key_range)`), dump the recorded history to a file (see
/// [`last_history_dump`]), and verify it with the WGL checker.
///
/// # Panics
///
/// Panics with the pretty-printed minimal counterexample (and the dump
/// path) if the history is not linearizable.
pub fn check_linearizable<M, F>(
    make: F,
    threads: usize,
    ops_per_thread: usize,
    key_range: u64,
    seed: u64,
) where
    M: ConcurrentMap<u64, u64>,
    F: Fn() -> M,
{
    let map = make();
    let history = record_history(&map, threads, ops_per_thread, key_range, seed);
    verify_recorded(M::NAME, threads, ops_per_thread, key_range, seed, &history);
}

/// [`check_linearizable`] with ordered reads in the workload mix (see
/// [`record_scan_history`]): verifies that range scans, successors, and
/// predecessors linearize together with the concurrent point updates.
///
/// # Panics
///
/// Panics with the pretty-printed minimal counterexample if the history
/// is not linearizable.
pub fn check_linearizable_scans<M, F>(
    make: F,
    threads: usize,
    ops_per_thread: usize,
    key_range: u64,
    seed: u64,
) where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
{
    let map = make();
    let history = record_scan_history(&map, threads, ops_per_thread, key_range, seed);
    verify_recorded(M::NAME, threads, ops_per_thread, key_range, seed, &history);
}

/// Sweeps `count` consecutive chaos schedule seeds starting at
/// `base_seed`: each seed installs a [`ChaosPlan`] (schedule perturbation
/// at every failpoint; a no-op without the `chaos` cargo feature) and
/// runs [`check_linearizable`] with the same seed driving the workload,
/// printing the replay recipe before re-raising any failure.
pub fn sweep_lincheck_chaos_seeds<M, F>(
    make: F,
    threads: usize,
    ops_per_thread: usize,
    key_range: u64,
    base_seed: u64,
    count: u64,
) where
    M: ConcurrentMap<u64, u64>,
    F: Fn() -> M,
{
    for i in 0..count {
        let seed = base_seed.wrapping_add(i);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _chaos = install_chaos(ChaosPlan::from_seed(seed));
            check_linearizable(&make, threads, ops_per_thread, key_range, seed);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "[citrus-lincheck] chaos seed {seed:#x} produced a non-linearizable history — \
                 replay with check_linearizable under ChaosPlan::from_seed({seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Like [`sweep_lincheck_chaos_seeds`] but over the scan workload: each
/// seed installs a [`ChaosPlan`] and runs [`check_linearizable_scans`]
/// with the same seed driving the workload.
pub fn sweep_lincheck_scan_chaos_seeds<M, F>(
    make: F,
    threads: usize,
    ops_per_thread: usize,
    key_range: u64,
    base_seed: u64,
    count: u64,
) where
    M: ConcurrentMap<u64, u64>,
    for<'a> M::Session<'a>: OrderedMapSession<u64, u64>,
    F: Fn() -> M,
{
    for i in 0..count {
        let seed = base_seed.wrapping_add(i);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _chaos = install_chaos(ChaosPlan::from_seed(seed));
            check_linearizable_scans(&make, threads, ops_per_thread, key_range, seed);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "[citrus-lincheck] chaos seed {seed:#x} produced a non-linearizable scan \
                 history — replay with check_linearizable_scans under \
                 ChaosPlan::from_seed({seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Parses an env-knob value, aborting with the variable name, raw value,
/// and parse error on malformed input. A typo'd knob must fail the run
/// loudly, not silently fall back to a default that changes what the run
/// covers.
fn parse_usize_knob(name: &str, raw: &str) -> usize {
    raw.trim()
        .parse()
        .unwrap_or_else(|e| panic!("invalid {name}={raw:?}: {e} (expected an unsigned integer)"))
}

/// Worker count for lincheck runs: `CITRUS_LIN_THREADS` when set,
/// otherwise `default`. Lets CI bound history width.
///
/// # Panics
///
/// Panics if the variable is set but not an unsigned integer.
#[must_use]
pub fn lin_threads(default: usize) -> usize {
    match std::env::var("CITRUS_LIN_THREADS") {
        Ok(raw) => parse_usize_knob("CITRUS_LIN_THREADS", &raw),
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("invalid CITRUS_LIN_THREADS: {e}"),
    }
}

/// Per-thread operation count for lincheck runs: `CITRUS_LIN_OPS` when
/// set, otherwise `default`. Lets CI bound history length (the checker's
/// search grows with ops per key).
///
/// # Panics
///
/// Panics if the variable is set but not an unsigned integer.
#[must_use]
pub fn lin_ops(default: usize) -> usize {
    match std::env::var("CITRUS_LIN_OPS") {
        Ok(raw) => parse_usize_knob("CITRUS_LIN_OPS", &raw),
        Err(std::env::VarError::NotPresent) => default,
        Err(e) => panic!("invalid CITRUS_LIN_OPS: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::btree_map::Entry;
    use std::sync::Mutex as StdMutex;

    // ---- checker self-test battery: hand-written histories ----------

    fn rec(thread: usize, inv: u64, ret_at: u64, op: Op, ret: Ret) -> RecordedOp {
        RecordedOp {
            thread,
            inv,
            ret_at,
            op,
            ret,
        }
    }

    fn ins(t: usize, inv: u64, ret_at: u64, key: u64, value: u64, granted: bool) -> RecordedOp {
        rec(
            t,
            inv,
            ret_at,
            Op::Insert { key, value },
            Ret::Granted(granted),
        )
    }

    fn rem(t: usize, inv: u64, ret_at: u64, key: u64, granted: bool) -> RecordedOp {
        rec(t, inv, ret_at, Op::Remove { key }, Ret::Granted(granted))
    }

    fn get(t: usize, inv: u64, ret_at: u64, key: u64, found: Option<u64>) -> RecordedOp {
        rec(t, inv, ret_at, Op::Get { key }, Ret::Found(found))
    }

    fn history(ops: Vec<RecordedOp>) -> History {
        History::from_thread_logs(vec![ops])
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_history(&History::default()).is_ok());
    }

    #[test]
    fn sequential_lifecycle_is_linearizable() {
        let h = history(vec![
            ins(0, 0, 1, 5, 42, true),
            get(0, 2, 3, 5, Some(42)),
            rem(0, 4, 5, 5, true),
            get(0, 6, 7, 5, None),
            ins(0, 8, 9, 5, 43, true),
        ]);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn concurrent_insert_race_one_winner_is_linearizable() {
        // Two overlapping inserts; exactly one granted — the classic race.
        let h = history(vec![ins(0, 0, 3, 7, 1, true), ins(1, 1, 2, 7, 2, false)]);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn concurrent_insert_delete_get_on_one_key_is_linearizable() {
        // All three fully overlap: insert→true, remove→true, get→None has
        // the valid order insert, remove, get.
        let h = history(vec![
            ins(0, 0, 9, 3, 11, true),
            rem(1, 1, 8, 3, true),
            get(2, 2, 7, 3, None),
        ]);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn duplicate_grant_is_rejected() {
        // Two successful inserts with no successful remove anywhere: no
        // order can make the second insert's precondition hold.
        let h = history(vec![ins(0, 0, 3, 7, 1, true), ins(1, 1, 2, 7, 2, true)]);
        let err = check_history(&h).unwrap_err();
        assert_eq!(err.keys, vec![7]);
        assert_eq!(err.ops.len(), 2, "both grants are needed: {err}");
    }

    #[test]
    fn real_time_order_violation_is_rejected() {
        // get→None strictly after insert→true completed, no remove: a
        // stale read. The linearization may not reorder across real time.
        let h = history(vec![ins(0, 0, 1, 9, 5, true), get(1, 2, 3, 9, None)]);
        let err = check_history(&h).unwrap_err();
        assert_eq!(err.keys, vec![9]);
    }

    #[test]
    fn overlapping_get_may_linearize_before_the_insert() {
        // Same shape as above but the get overlaps the insert, so get
        // before insert is a valid order.
        let h = history(vec![ins(0, 0, 5, 9, 5, true), get(1, 1, 2, 9, None)]);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn observed_value_pins_the_linearization_order() {
        let lifecycle = |observed: u64| {
            history(vec![
                ins(0, 0, 1, 4, 100, true),
                rem(0, 2, 3, 4, true),
                ins(0, 4, 5, 4, 200, true),
                get(1, 6, 7, 4, Some(observed)),
            ])
        };
        // Seeing the live value is fine; seeing the removed one is a
        // stale read even though *some* insert of it existed.
        assert!(check_history(&lifecycle(200)).is_ok());
        assert!(check_history(&lifecycle(100)).is_err());
    }

    #[test]
    fn failed_remove_of_present_key_is_rejected() {
        let h = history(vec![ins(0, 0, 1, 2, 9, true), rem(1, 2, 3, 2, false)]);
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn disjoint_keys_are_checked_independently() {
        // Key 1 carries a violation; keys 2 and 3 carry valid traffic.
        // The counterexample must only involve key 1's ops.
        let h = history(vec![
            ins(0, 0, 1, 2, 7, true),
            ins(0, 2, 3, 1, 8, true),
            get(0, 4, 5, 3, None),
            get(1, 6, 7, 1, None), // stale
            get(0, 8, 9, 2, Some(7)),
        ]);
        let err = check_history(&h).unwrap_err();
        assert_eq!(err.keys, vec![1]);
        assert!(err.ops.iter().all(|o| o.op.key() == Some(1)));
    }

    #[test]
    fn counterexample_is_shrunk_to_a_minimal_core() {
        // Plenty of benign traffic around a 2-op violation.
        let h = history(vec![
            ins(0, 0, 1, 6, 1, true),
            get(0, 2, 3, 6, Some(1)),
            rem(0, 4, 5, 6, true),
            ins(0, 6, 7, 6, 2, true),
            get(1, 8, 9, 6, None), // stale: value 2 is live
            get(0, 10, 11, 6, Some(2)),
        ]);
        let err = check_history(&h).unwrap_err();
        assert!(
            err.ops.len() <= 3,
            "greedy shrink should reach a small core, got {} ops:\n{err}",
            err.ops.len()
        );
        // 1-minimality: removing any single remaining op restores
        // linearizability.
        for i in 0..err.ops.len() {
            let mut fewer = err.ops.clone();
            fewer.remove(i);
            assert!(
                check_history(&history(fewer)).is_ok(),
                "counterexample is not 1-minimal at op {i}:\n{err}"
            );
        }
    }

    #[test]
    fn pretty_printer_names_the_key_and_ops() {
        let err = check_history(&history(vec![
            ins(0, 0, 1, 9, 5, true),
            get(1, 2, 3, 9, None),
        ]))
        .unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("key(s) 9"), "{text}");
        assert!(text.contains("insert(9, value 5) → true"), "{text}");
        assert!(text.contains("get(9) → None"), "{text}");
    }

    // ---- range-op histories (ordered reads) -------------------------

    fn scan(
        t: usize,
        inv: u64,
        ret_at: u64,
        lo: u64,
        hi: u64,
        entries: Vec<(u64, u64)>,
    ) -> RecordedOp {
        rec(
            t,
            inv,
            ret_at,
            Op::RangeScan { lo, hi },
            Ret::Entries(entries),
        )
    }

    fn suc(t: usize, inv: u64, ret_at: u64, key: u64, e: Option<(u64, u64)>) -> RecordedOp {
        rec(t, inv, ret_at, Op::Successor { key }, Ret::Entry(e))
    }

    fn pred(t: usize, inv: u64, ret_at: u64, key: u64, e: Option<(u64, u64)>) -> RecordedOp {
        rec(t, inv, ret_at, Op::Predecessor { key }, Ret::Entry(e))
    }

    #[test]
    fn sequential_scans_are_linearizable() {
        let h = history(vec![
            ins(0, 0, 1, 10, 1, true),
            ins(0, 2, 3, 30, 3, true),
            scan(0, 4, 5, 0, 100, vec![(10, 1), (30, 3)]),
            rem(0, 6, 7, 10, true),
            scan(0, 8, 9, 0, 100, vec![(30, 3)]),
            scan(0, 10, 11, 0, 9, vec![]),
            suc(0, 12, 13, 10, Some((30, 3))),
            pred(0, 14, 15, 30, None),
        ]);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn scan_over_untouched_region_is_trivially_linearizable() {
        // No point op and no observation touches [0, 100]; the scan's
        // region is empty at every instant.
        let h = history(vec![scan(0, 0, 1, 0, 100, vec![])]);
        assert!(check_history(&h).is_ok());
        // An inverted range must also come back empty.
        let h = history(vec![scan(0, 0, 1, 100, 0, vec![])]);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn phantom_scan_entry_is_rejected() {
        // The scan observes a key no insert ever granted.
        let h = history(vec![scan(0, 0, 1, 50, 60, vec![(55, 9)])]);
        let err = check_history(&h).unwrap_err();
        assert_eq!(err.ops.len(), 1, "{err}");
        assert_eq!(err.keys, vec![55]);
    }

    #[test]
    fn overlapping_scan_may_see_either_side_of_an_insert() {
        // Scan overlaps the insert: both the empty and the one-entry
        // result are valid linearizations.
        for entries in [vec![], vec![(10, 1)]] {
            let h = history(vec![
                ins(0, 0, 5, 10, 1, true),
                scan(1, 1, 4, 0, 100, entries),
            ]);
            assert!(check_history(&h).is_ok());
        }
    }

    #[test]
    fn torn_scan_missing_a_present_key_is_rejected() {
        // Key 10 is present for the scan's whole window (insert completed
        // before it, no remove anywhere), yet the scan reports the range
        // empty — the signature of an unvalidated torn traversal.
        let h = history(vec![
            ins(0, 0, 1, 10, 1, true),
            scan(1, 2, 3, 0, 100, vec![]),
        ]);
        let err = check_history(&h).unwrap_err();
        assert!(err.ops.len() <= 3, "want a small core: {err}");
        assert_eq!(err.keys, vec![10]);
        // 1-minimality: removing either op restores linearizability.
        for i in 0..err.ops.len() {
            let mut fewer = err.ops.clone();
            fewer.remove(i);
            assert!(
                check_history(&history(fewer)).is_ok(),
                "not 1-minimal: {err}"
            );
        }
    }

    #[test]
    fn torn_scan_across_a_remove_insert_pair_is_rejected() {
        // Writer removes 10 then inserts 25 (non-overlapping, in that
        // real-time order). A scan overlapping both reports BOTH 10 and
        // 25 present — no single instant has that contents.
        let h = history(vec![
            ins(0, 0, 1, 10, 1, true),
            rem(0, 2, 5, 10, true),
            ins(0, 6, 9, 25, 2, true),
            scan(1, 4, 8, 0, 100, vec![(10, 1), (25, 2)]),
        ]);
        let err = check_history(&h).unwrap_err();
        assert!(err.ops.len() <= 3, "want ≤3 ops: {err}");
    }

    #[test]
    fn stale_successor_is_rejected_and_merges_the_component() {
        // successor(5) → None strictly after insert(10) completed: the
        // directed read constrains every key above 5, so its component
        // includes key 10 and the violation is caught.
        let h = history(vec![ins(0, 0, 1, 10, 1, true), suc(1, 2, 3, 5, None)]);
        let err = check_history(&h).unwrap_err();
        assert_eq!(err.keys, vec![10]);
        // The overlapping variant is fine (successor before insert).
        let h = history(vec![ins(0, 0, 3, 10, 1, true), suc(1, 1, 2, 5, None)]);
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn stale_predecessor_is_rejected() {
        let h = history(vec![
            ins(0, 0, 1, 10, 1, true),
            rem(0, 2, 3, 10, true),
            pred(1, 4, 5, 50, Some((10, 1))),
        ]);
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn scans_only_merge_the_keys_they_constrain() {
        // Key 1 carries a violation; the scan only spans [10, 30], so the
        // counterexample must stay on key 1.
        let h = history(vec![
            ins(0, 0, 1, 1, 7, true),
            ins(0, 2, 3, 20, 8, true),
            scan(0, 4, 5, 10, 30, vec![(20, 8)]),
            get(1, 6, 7, 1, None), // stale
        ]);
        let err = check_history(&h).unwrap_err();
        assert_eq!(err.keys, vec![1]);
    }

    #[test]
    #[should_panic(expected = "malformed history")]
    fn malformed_op_ret_pairing_panics() {
        let h = history(vec![rec(
            0,
            0,
            1,
            Op::Insert { key: 1, value: 1 },
            Ret::Found(None),
        )]);
        let _ = check_history(&h);
    }

    // ---- recorder + end-to-end over a known-correct map -------------

    /// Coarse-locked reference map (mirrors the one in `crate::tests`).
    #[derive(Default, Debug)]
    struct CoarseMap {
        inner: StdMutex<BTreeMap<u64, u64>>,
    }

    struct CoarseSession<'a>(&'a CoarseMap);

    impl ConcurrentMap<u64, u64> for CoarseMap {
        type Session<'a> = CoarseSession<'a>;
        const NAME: &'static str = "coarse-btreemap";
        fn session(&self) -> CoarseSession<'_> {
            CoarseSession(self)
        }
    }

    impl MapSession<u64, u64> for CoarseSession<'_> {
        fn get(&mut self, key: &u64) -> Option<u64> {
            self.0.inner.lock().unwrap().get(key).copied()
        }
        fn insert(&mut self, key: u64, value: u64) -> bool {
            match self.0.inner.lock().unwrap().entry(key) {
                Entry::Occupied(_) => false,
                Entry::Vacant(e) => {
                    e.insert(value);
                    true
                }
            }
        }
        fn remove(&mut self, key: &u64) -> bool {
            self.0.inner.lock().unwrap().remove(key).is_some()
        }
    }

    impl OrderedMapSession<u64, u64> for CoarseSession<'_> {
        fn range_scan(&mut self, lo: &u64, hi: &u64) -> Vec<(u64, u64)> {
            if lo > hi {
                return Vec::new();
            }
            self.0
                .inner
                .lock()
                .unwrap()
                .range(*lo..=*hi)
                .map(|(k, v)| (*k, *v))
                .collect()
        }

        fn successor(&mut self, key: &u64) -> Option<(u64, u64)> {
            self.0
                .inner
                .lock()
                .unwrap()
                .range((std::ops::Bound::Excluded(*key), std::ops::Bound::Unbounded))
                .next()
                .map(|(k, v)| (*k, *v))
        }

        fn predecessor(&mut self, key: &u64) -> Option<(u64, u64)> {
            self.0
                .inner
                .lock()
                .unwrap()
                .range(..*key)
                .next_back()
                .map(|(k, v)| (*k, *v))
        }
    }

    #[test]
    fn recorder_intervals_nest_and_order_per_thread() {
        let map = CoarseMap::default();
        let history = record_history(&map, 3, 50, 8, 0xA11CE);
        assert_eq!(history.ops.len(), 150);
        // Every interval is well-formed and per-thread logs are ordered.
        let mut last_ret: BTreeMap<usize, u64> = BTreeMap::new();
        for op in &history.ops {
            assert!(op.inv < op.ret_at, "interval inverted: {op}");
            if let Some(&prev) = last_ret.get(&op.thread) {
                assert!(prev < op.inv, "thread {}'s ops overlap", op.thread);
            }
            last_ret.insert(op.thread, op.ret_at);
        }
        // Tickets are globally unique.
        let mut all: Vec<u64> = history.ops.iter().flat_map(|o| [o.inv, o.ret_at]).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 300);
    }

    #[test]
    fn correct_map_passes_end_to_end() {
        check_linearizable(CoarseMap::default, 4, 150, 16, 0x11C4EC);
    }

    #[test]
    fn correct_map_passes_the_scan_workload_end_to_end() {
        check_linearizable_scans(CoarseMap::default, 3, 120, 16, 0x5CA11);
    }

    #[test]
    fn scan_recorder_logs_full_entry_lists() {
        let map = CoarseMap::default();
        let history = record_scan_history(&map, 2, 80, 12, 0x5CA12);
        assert_eq!(history.ops.len(), 160);
        assert!(
            history
                .ops
                .iter()
                .any(|o| matches!(o.op, Op::RangeScan { .. })),
            "workload mix must include range scans"
        );
        assert!(
            history
                .ops
                .iter()
                .any(|o| matches!(o.op, Op::Successor { .. } | Op::Predecessor { .. })),
            "workload mix must include directed reads"
        );
        assert!(check_history(&history).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid CITRUS_LIN_THREADS")]
    fn malformed_env_knob_is_a_hard_error() {
        parse_usize_knob("CITRUS_LIN_THREADS", "not-a-number");
    }

    #[test]
    fn env_knobs_fall_back_to_defaults() {
        if std::env::var("CITRUS_LIN_THREADS").is_err() {
            assert_eq!(lin_threads(6), 6);
        }
        if std::env::var("CITRUS_LIN_OPS").is_err() {
            assert_eq!(lin_ops(123), 123);
        }
    }

    #[test]
    fn dump_note_round_trips() {
        // check_linearizable above already wrote a dump; the registry must
        // surface *some* path once any lincheck ran in this process.
        check_linearizable(CoarseMap::default, 1, 10, 4, 0xD00D);
        let path = last_history_dump().expect("a dump was recorded");
        assert!(path.to_string_lossy().contains("lincheck_"));
    }
}
