//! Deterministic schedule perturbation and fault injection for the Citrus
//! reproduction.
//!
//! The paper's correctness argument rests on razor-thin interleavings —
//! validate-after-lock, tag checks on ⊥ children, the `synchronize_rcu` in
//! the delete path. Plain stress tests only probe the schedules the OS
//! happens to produce; this crate widens the race windows on purpose.
//!
//! Instrumented crates call [`point`] at linearization-sensitive sites and
//! [`should_fail`] where a forced (correctness-preserving) restart is
//! possible. With the `chaos` cargo feature **off** — the default — every
//! failpoint is an empty `#[inline]` function and [`ChaosGuard`] is
//! zero-sized, mirroring the zero-cost pattern of `citrus-obs`. With it
//! **on**, an installed [`ChaosPlan`] makes each firing roll (from a
//! SplitMix64 stream seeded by the plan seed and the thread's stream id)
//! whether to yield, spin-delay, or force a restart, so any interleaving a
//! sweep finds is replayable from its seed.
//!
//! Failpoint names follow `component/operation/site`, e.g.
//! `citrus/insert/after-validate` or `rcu-scalable/synchronize/scan-step`.
//!
//! # Example
//!
//! ```
//! use citrus_chaos as chaos;
//!
//! let _guard = chaos::install(chaos::ChaosPlan::from_seed(0xC17).traced(true));
//! chaos::set_thread_stream(0);
//! chaos::point("example/op/site");
//! if chaos::should_fail("example/op/force-restart") {
//!     // retry the operation (never taken unless built with `chaos`)
//! }
//! let trace = chaos::take_trace(); // decisions, in firing order
//! assert_eq!(trace.is_empty(), !chaos::chaos_enabled());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod plan;
mod point;

pub use plan::ChaosPlan;
pub use point::{
    chaos_active, chaos_enabled, install, point, set_thread_stream, should_fail, take_trace,
    ChaosAction, ChaosGuard, TraceEntry,
};
