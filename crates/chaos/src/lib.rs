//! Deterministic schedule perturbation and fault injection for the Citrus
//! reproduction.
//!
//! The paper's correctness argument rests on razor-thin interleavings —
//! validate-after-lock, tag checks on ⊥ children, the `synchronize_rcu` in
//! the delete path. Plain stress tests only probe the schedules the OS
//! happens to produce; this crate widens the race windows on purpose.
//!
//! Instrumented crates call [`point`] at linearization-sensitive sites and
//! [`should_fail`] where a forced (correctness-preserving) restart is
//! possible. With the `chaos` cargo feature **off** — the default — every
//! failpoint is an empty `#[inline]` function and [`ChaosGuard`] is
//! zero-sized, mirroring the zero-cost pattern of `citrus-obs`. With it
//! **on**, an installed [`ChaosPlan`] makes each firing roll (from a
//! SplitMix64 stream seeded by the plan seed and the thread's stream id)
//! whether to yield, spin-delay, or force a restart, so any interleaving a
//! sweep finds is replayable from its seed.
//!
//! Failpoint names follow `component/operation/site`, e.g.
//! `citrus/insert/after-validate` or `rcu-scalable/synchronize/scan-step`.
//!
//! # Example
//!
//! ```
//! use citrus_chaos as chaos;
//!
//! let _guard = chaos::install(chaos::ChaosPlan::from_seed(0xC17).traced(true));
//! chaos::set_thread_stream(0);
//! chaos::point("example/op/site");
//! if chaos::should_fail("example/op/force-restart") {
//!     // retry the operation (never taken unless built with `chaos`)
//! }
//! let trace = chaos::take_trace(); // decisions, in firing order
//! assert_eq!(trace.is_empty(), !chaos::chaos_enabled());
//! ```

//! # Deterministic schedules
//!
//! Random plans *sample* interleavings; a [`SchedulePlan`] *enumerates*
//! them. Under [`run_schedule`] every failpoint becomes a cooperative
//! yield point and exactly one registered thread runs at a time, driven
//! by an explicit decision sequence whose compact encoding
//! (`CITRUS_SCHEDULE=<string>`) replays one interleaving exactly. The
//! [`Explorer`] DFS-enumerates all schedules of a bounded scenario with
//! memoized prefix pruning and iteratively deepened preemption bounds
//! (context-bounded search). See `DESIGN.md` §6h for the model and its
//! soundness caveats.
//!
//! Sites register themselves via the [`point!`], [`should_fail!`], and
//! [`blocked!`] macros; [`all_points`] lists everything reached so far so
//! sweeps can assert coverage. [`mutant_enabled`]-guarded test-only
//! mutations let the suite prove the explorer actually catches bugs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod explore;
mod mutant;
mod plan;
mod point;
mod registry;
mod sched;

pub use explore::{
    budget_from_env, ExploreConfig, ExploreReport, ExploredRun, Explorer, ScheduleFailure,
};
pub use mutant::{enable_mutant, mutant_enabled, MutantGuard};
pub use plan::ChaosPlan;
pub use point::{
    active_plan_seed, chaos_active, chaos_enabled, install, point, set_thread_stream, should_fail,
    take_trace, ChaosAction, ChaosGuard, TraceEntry,
};
pub use registry::{
    all_points, fire_blocked, fire_point, fire_should_fail, PointKind, PointSite, RegisteredPoint,
};
pub use sched::{
    active_schedule, run_schedule, wake_hint, BranchPoint, ScheduleOutcome, SchedulePlan,
    DEFAULT_MAX_STEPS, MAX_SCHED_THREADS,
};

/// One copy-pasteable line reproducing the current perturbation context:
/// the active deterministic schedule if one is running, else the
/// installed chaos plan's seed. `None` when neither is active (or the
/// `chaos` feature is off). Watchdogs and failure reports print this so
/// the schedule context is never lost on a livelock or oracle failure.
#[must_use]
pub fn replay_recipe() -> Option<String> {
    if let Some(s) = active_schedule() {
        return Some(format!("CITRUS_SCHEDULE={s}"));
    }
    active_plan_seed().map(|seed| format!("ChaosPlan::from_seed({seed:#x})"))
}
