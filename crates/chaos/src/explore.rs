//! DFS enumeration of all bounded schedules of a scenario.
//!
//! [`Explorer`] repeatedly invokes a caller-provided runner (which wraps
//! [`run_schedule`](crate::run_schedule) around the scenario plus an
//! oracle) and expands every branch point it observes into the
//! alternative decisions not yet taken, depth-first. Because forced moves
//! consume no decisions, decision sequences are canonical per schedule
//! and a `HashMap` memo gives exact prefix pruning: no interleaving runs
//! twice, within or across preemption bounds.
//!
//! Bounds are iteratively deepened (0, 1, 2, … preemptions up to
//! [`ExploreConfig::max_preemptions`]), the classic context-bounded
//! search order: most concurrency bugs need few preemptions, and the
//! first failure found is automatically among the minimal-preemption
//! schedules — DFS inside a bound then makes it lexicographically small,
//! which is what the "minimal replayable schedule" in failure reports
//! means.

use crate::sched::{ScheduleOutcome, SchedulePlan};
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Bounds and budgets for one exploration sweep.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Context bound: maximum preemptions per schedule (iteratively
    /// deepened from 0). 2 reaches most known RCU/locking windows.
    pub max_preemptions: usize,
    /// Hard cap on distinct schedules executed; exceeding it marks the
    /// report incomplete rather than running forever.
    pub max_schedules: usize,
    /// Per-run yield-point budget (forwarded to [`SchedulePlan`]).
    pub max_steps: usize,
    /// Wall-clock budget; `None` means unbounded. See
    /// [`budget_from_env`] for the `CITRUS_EXPLORE_BUDGET_MS` knob.
    pub budget: Option<Duration>,
    /// Stop at the first failing schedule (default) instead of
    /// continuing the sweep to count all failures.
    pub stop_on_failure: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_preemptions: 2,
            max_schedules: 100_000,
            max_steps: crate::sched::DEFAULT_MAX_STEPS,
            budget: budget_from_env(),
            stop_on_failure: true,
        }
    }
}

/// Reads the exploration wall-clock budget from `CITRUS_EXPLORE_BUDGET_MS`
/// (unset means unbounded; a malformed value is a hard error so CI never
/// silently runs an unbounded sweep because of a typo).
#[must_use]
pub fn budget_from_env() -> Option<Duration> {
    match std::env::var("CITRUS_EXPLORE_BUDGET_MS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(e) => panic!(
                "invalid CITRUS_EXPLORE_BUDGET_MS={raw:?}: {e} (expected milliseconds as an unsigned integer)"
            ),
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(e) => panic!("invalid CITRUS_EXPLORE_BUDGET_MS: {e}"),
    }
}

/// The result of running one schedule: what the scheduler saw plus the
/// oracle's verdict on the completed run.
#[derive(Debug)]
pub struct ExploredRun {
    /// The scheduler-level outcome (branches, deadlock, panics, …).
    pub outcome: ScheduleOutcome,
    /// The oracle's verdict (linearizability, structure validation, …)
    /// for runs that completed. `Err` is a finding.
    pub verdict: Result<(), String>,
}

/// A schedule the oracle (or the scheduler itself) rejected.
#[derive(Debug, Clone)]
pub struct ScheduleFailure {
    /// Compact replayable encoding — paste into `CITRUS_SCHEDULE=`.
    pub schedule: String,
    /// Preemptions the failing schedule used.
    pub preemptions: usize,
    /// Why it failed (oracle message, deadlock, panic, …).
    pub reason: String,
}

impl std::fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule {} ({} preemption(s)): {}",
            self.schedule, self.preemptions, self.reason
        )
    }
}

/// What an exploration sweep covered and found.
#[derive(Debug, Default)]
pub struct ExploreReport {
    /// Distinct schedules executed. For a fixed scenario and bound this
    /// is deterministic — tests pin it to detect silently lost coverage.
    pub schedules: usize,
    /// DFS nodes answered from the memo instead of re-running.
    pub memo_hits: usize,
    /// Highest preemption bound reached by iterative deepening.
    pub preemption_bound_reached: usize,
    /// The sweep enumerated every schedule within the bounds (no budget
    /// or cap cut it short, and no stop-on-failure early exit).
    pub completed: bool,
    /// The first failure found (minimal preemptions, then DFS order).
    pub failure: Option<ScheduleFailure>,
    /// Total failing schedules seen (1 with `stop_on_failure`).
    pub failures_seen: usize,
    /// Schedules that ended in a cooperative deadlock.
    pub deadlocks: usize,
    /// Every failpoint name observed across all runs — assert against
    /// [`all_points`](crate::all_points) to catch dead yield points.
    pub points_hit: BTreeSet<&'static str>,
}

impl ExploreReport {
    /// Panics with a replay recipe if the sweep found a failure.
    pub fn assert_clean(&self, scenario: &str) {
        if let Some(f) = &self.failure {
            panic!(
                "[{scenario}] exploration failed: {f}\n  replay: CITRUS_SCHEDULE={}",
                f.schedule
            );
        }
    }
}

struct RunRecord {
    branches: Vec<crate::sched::BranchPoint>,
    preemptions: usize,
    failure: Option<String>,
}

/// Bounded exhaustive schedule explorer. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    /// Bounds and budgets for the sweep.
    pub config: ExploreConfig,
}

impl Explorer {
    /// An explorer with the given bounds.
    #[must_use]
    pub fn new(config: ExploreConfig) -> Self {
        Self { config }
    }

    /// An explorer with the default config at the given context bound.
    #[must_use]
    pub fn with_bound(max_preemptions: usize) -> Self {
        Self {
            config: ExploreConfig {
                max_preemptions,
                ..ExploreConfig::default()
            },
        }
    }

    /// Enumerates schedules depth-first with iterative deepening over
    /// the preemption bound, calling `run` once per distinct schedule.
    ///
    /// `run` must execute the scenario under
    /// [`run_schedule`](crate::run_schedule) with the given plan and
    /// return the outcome plus the oracle verdict. Determinism contract:
    /// the same plan must reproduce the same branch points.
    pub fn explore<R>(&self, mut run: R) -> ExploreReport
    where
        R: FnMut(&SchedulePlan) -> ExploredRun,
    {
        let start = Instant::now();
        let mut memo: HashMap<Vec<usize>, RunRecord> = HashMap::new();
        let mut report = ExploreReport {
            completed: true,
            ..ExploreReport::default()
        };
        'deepening: for bound in 0..=self.config.max_preemptions {
            report.preemption_bound_reached = bound;
            // DFS stack of canonical decision sequences still to expand.
            let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
            while let Some(decisions) = stack.pop() {
                if let Some(budget) = self.config.budget {
                    if start.elapsed() > budget {
                        report.completed = false;
                        break 'deepening;
                    }
                }
                let mut fresh = false;
                if memo.contains_key(&decisions) {
                    report.memo_hits += 1;
                } else {
                    fresh = true;
                    if report.schedules >= self.config.max_schedules {
                        report.completed = false;
                        break 'deepening;
                    }
                    let plan =
                        SchedulePlan::new(decisions.clone()).with_max_steps(self.config.max_steps);
                    let run_result = run(&plan);
                    report.schedules += 1;
                    for &(_, name) in &run_result.outcome.trace {
                        report.points_hit.insert(name);
                    }
                    if run_result.outcome.deadlocked {
                        report.deadlocks += 1;
                    }
                    let failure = run_result
                        .outcome
                        .failure_reason()
                        .or_else(|| run_result.verdict.err());
                    memo.insert(
                        decisions.clone(),
                        RunRecord {
                            branches: run_result.outcome.branches,
                            preemptions: run_result.outcome.preemptions,
                            failure,
                        },
                    );
                }
                let rec = &memo[&decisions];
                // Failures are counted on first (fresh) visit only —
                // iterative deepening revisits every node at each bound.
                if fresh {
                    if let Some(reason) = &rec.failure {
                        report.failures_seen += 1;
                        if report.failure.is_none() {
                            report.failure = Some(ScheduleFailure {
                                schedule: SchedulePlan::new(decisions.clone()).encode(),
                                preemptions: rec.preemptions,
                                reason: reason.clone(),
                            });
                        }
                        if self.config.stop_on_failure {
                            report.completed = false;
                            break 'deepening;
                        }
                    }
                }
                // An aborted (deadlocked) run's branch list stops at the
                // abort; expanding it is still sound — the alternatives
                // are genuine branch points observed before the abort.
                // Cumulative preemptions up to (not including) branch i.
                let branches = &rec.branches;
                let mut preempt_before = Vec::with_capacity(branches.len() + 1);
                preempt_before.push(0usize);
                for b in branches {
                    let p = usize::from(b.is_preemption(b.chosen));
                    preempt_before.push(preempt_before.last().unwrap() + p);
                }
                // Expand alternatives only at positions at or past this
                // sequence's own length: earlier positions were already
                // expanded when the shorter prefix was visited.
                let mut children = Vec::new();
                for (i, b) in branches.iter().enumerate().skip(decisions.len()) {
                    for &alt in &b.eligible {
                        if alt == b.chosen {
                            continue;
                        }
                        let extra = usize::from(b.is_preemption(alt));
                        if preempt_before[i] + extra > bound {
                            continue;
                        }
                        let mut child: Vec<usize> =
                            branches[..i].iter().map(|bb| bb.chosen).collect();
                        child.push(alt);
                        children.push(child);
                    }
                }
                // Reverse so the stack pops them in discovery order.
                for child in children.into_iter().rev() {
                    stack.push(child);
                }
            }
        }
        report
    }
}
