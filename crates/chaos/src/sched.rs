//! Deterministic cooperative scheduling over the failpoint graph.
//!
//! A [`SchedulePlan`] replaces `ChaosPlan`'s random perturbation with an
//! *enumerable* one: while a schedule is active, exactly one registered
//! thread runs at a time, and every named failpoint becomes a cooperative
//! yield point where the scheduler decides who runs next. Decisions are an
//! explicit sequence of thread ids, consumed only at *branch points* —
//! yield points where two or more threads are eligible. Forced moves
//! (single eligible thread) consume nothing, which is what makes decision
//! prefixes canonical and lets the explorer prune by memoized prefix.
//!
//! Once the decision sequence is exhausted the scheduler falls back to a
//! deterministic default: keep running the current thread while it stays
//! eligible, else pick the lowest-numbered eligible thread. The default
//! adds zero preemptions, so a decision sequence's preemption count is a
//! property of the sequence itself — the context bound of CBMC-style
//! context-bounded search.
//!
//! Blocking sites ([`blocked!`](crate::blocked!)) deschedule the calling
//! thread until some other thread calls [`wake_hint`] (placed at lock
//! releases, reader exits, grace-period completions). If every unfinished
//! thread is blocked the run is reported as a deadlock. A run that
//! deadlocks, exceeds its step budget, or receives an infeasible decision
//! is *aborted*: threads unwind via a private panic payload that
//! [`run_schedule`] filters out, so structure-level RAII (lock guards,
//! read sessions) cleans up normally.
//!
//! Soundness caveat (see DESIGN.md §6h): this explores the failpoint
//! graph under sequentially-consistent execution of the instrumented
//! program — it enumerates *interleavings between named yield points*,
//! not weak-memory behaviors, and code between two yield points is one
//! atomic step from the scheduler's point of view.

/// Maximum number of scheduled threads (one base-36 digit per decision).
pub const MAX_SCHED_THREADS: usize = 36;

const DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";

/// Default per-run step budget: generous for ≤3-thread/≤6-op scenarios,
/// small enough that a genuine livelock aborts quickly.
pub const DEFAULT_MAX_STEPS: usize = 20_000;

/// An explicit interleaving: a per-branch-point decision sequence.
///
/// `decisions[i]` is the thread id chosen at the i-th *branch point* of
/// the run (a yield point with ≥ 2 eligible threads). After the sequence
/// is exhausted the scheduler continues with the deterministic
/// zero-preemption default, so short sequences are complete schedules.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchedulePlan {
    decisions: Vec<usize>,
    max_steps: usize,
}

impl SchedulePlan {
    /// A plan from an explicit decision sequence.
    #[must_use]
    pub fn new(decisions: Vec<usize>) -> Self {
        Self {
            decisions,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Overrides the per-run yield-point budget (abort + report if hit).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// The decision sequence.
    #[must_use]
    pub fn decisions(&self) -> &[usize] {
        &self.decisions
    }

    /// The per-run yield-point budget.
    #[must_use]
    pub fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// Compact replayable encoding: one base-36 digit per decision, `-`
    /// for the empty (pure-default) schedule. Paste into
    /// `CITRUS_SCHEDULE=<string>` to rerun one interleaving.
    #[must_use]
    pub fn encode(&self) -> String {
        if self.decisions.is_empty() {
            return "-".to_string();
        }
        self.decisions.iter().map(|&d| DIGITS[d] as char).collect()
    }

    /// Parses the [`encode`](Self::encode) format.
    ///
    /// # Errors
    /// Returns a message naming the offending character if the string
    /// contains anything but base-36 digits (or the lone `-`).
    pub fn decode(s: &str) -> Result<Self, String> {
        let s = s.trim();
        if s.is_empty() || s == "-" {
            return Ok(Self::new(Vec::new()));
        }
        let mut decisions = Vec::with_capacity(s.len());
        for c in s.chars() {
            let d = match c {
                '0'..='9' => c as usize - '0' as usize,
                'a'..='z' => c as usize - 'a' as usize + 10,
                _ => return Err(format!("invalid schedule digit {c:?} in {s:?}")),
            };
            decisions.push(d);
        }
        Ok(Self::new(decisions))
    }
}

/// One branch point observed during a run: where the schedule could have
/// gone differently. The explorer expands alternatives from these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchPoint {
    /// Thread ids that were eligible to run (always ≥ 2 entries).
    pub eligible: Vec<usize>,
    /// The thread that was running when the branch was reached (`None` at
    /// the initial dispatch or right after a thread finished).
    pub running: Option<usize>,
    /// The thread the scheduler picked (by decision or default policy).
    pub chosen: usize,
}

impl BranchPoint {
    /// Whether choosing `alt` here would preempt a still-eligible running
    /// thread (i.e. consume one unit of the preemption bound).
    #[must_use]
    pub fn is_preemption(&self, alt: usize) -> bool {
        matches!(self.running, Some(r) if r != alt && self.eligible.contains(&r))
    }
}

/// What happened during one [`run_schedule`] run.
#[derive(Debug, Default)]
pub struct ScheduleOutcome {
    /// Every branch point, in order, with the choice taken.
    pub branches: Vec<BranchPoint>,
    /// Total yield points executed.
    pub steps: usize,
    /// Preemptions taken (switches away from a still-eligible thread).
    pub preemptions: usize,
    /// How many of the plan's decisions were consumed.
    pub decisions_used: usize,
    /// All unfinished threads were blocked: a deadlock under the
    /// cooperative semantics. The run was aborted.
    pub deadlocked: bool,
    /// The step budget was exhausted (livelock suspect). Aborted.
    pub step_limit_hit: bool,
    /// A decision named a thread that was not eligible at its branch
    /// point — the plan does not correspond to a real schedule of this
    /// scenario (stale after a code change, or hand-written). Aborted.
    pub stale: bool,
    /// `(thread id, failpoint name)` per yield point, in execution order.
    pub trace: Vec<(usize, &'static str)>,
    /// Panic messages from scenario threads (scheduler aborts filtered
    /// out). Non-empty means the scenario itself panicked — a finding.
    pub panics: Vec<String>,
}

impl ScheduleOutcome {
    /// True if the run completed normally: no deadlock, no budget abort,
    /// no stale decision, no scenario panic.
    #[must_use]
    pub fn clean(&self) -> bool {
        !self.deadlocked && !self.step_limit_hit && !self.stale && self.panics.is_empty()
    }

    /// A one-line description of why the run was not clean, if it wasn't.
    #[must_use]
    pub fn failure_reason(&self) -> Option<String> {
        if let Some(p) = self.panics.first() {
            return Some(format!("panic: {p}"));
        }
        if self.deadlocked {
            return Some("deadlock: every unfinished thread blocked".to_string());
        }
        if self.step_limit_hit {
            return Some("step budget exhausted (livelock suspect)".to_string());
        }
        if self.stale {
            return Some("stale schedule: decision named an ineligible thread".to_string());
        }
        None
    }
}

#[cfg(feature = "chaos")]
pub(crate) mod imp {
    use super::{BranchPoint, ScheduleOutcome, SchedulePlan, MAX_SCHED_THREADS};
    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

    /// Private abort payload: unwinds scenario threads out of an aborted
    /// run. Filtered (not reported) by `run_schedule`.
    struct SchedAbort;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum TState {
        NotArrived,
        /// Parked at a yield point, eligible to be granted the CPU.
        Runnable,
        /// Currently holds the (single) virtual CPU.
        Running,
        /// Parked at a `blocked!` site; eligible again once `wake_seq`
        /// advances past `since`.
        Blocked {
            since: u64,
        },
        Finished,
    }

    #[derive(Default)]
    struct Inner {
        active: bool,
        threads: Vec<TState>,
        arrived: usize,
        /// The thread currently granted the virtual CPU.
        current: Option<usize>,
        /// The thread that was running when the last yield began (for
        /// preemption accounting and the continue-current default).
        last_running: Option<usize>,
        decisions: Vec<usize>,
        next_decision: usize,
        branches: Vec<BranchPoint>,
        steps: usize,
        max_steps: usize,
        preemptions: usize,
        wake_seq: u64,
        deadlocked: bool,
        step_limit_hit: bool,
        stale: bool,
        aborting: bool,
        trace: Vec<(usize, &'static str)>,
    }

    static STATE: Mutex<Inner> = Mutex::new(Inner {
        active: false,
        threads: Vec::new(),
        arrived: 0,
        current: None,
        last_running: None,
        decisions: Vec::new(),
        next_decision: 0,
        branches: Vec::new(),
        steps: 0,
        max_steps: 0,
        preemptions: 0,
        wake_seq: 0,
        deadlocked: false,
        step_limit_hit: false,
        stale: false,
        aborting: false,
        trace: Vec::new(),
    });
    static CV: Condvar = Condvar::new();
    /// Fast-path gate: true only while a schedule run is in flight.
    static SCHED_ACTIVE: AtomicBool = AtomicBool::new(false);
    /// The active schedule's encoding, for replay-recipe reporting.
    static ACTIVE_SCHEDULE: Mutex<Option<String>> = Mutex::new(None);

    thread_local! {
        /// This thread's scheduled id, if it is part of the active run.
        static SCHED_ID: Cell<Option<usize>> = const { Cell::new(None) };
    }

    fn lock() -> MutexGuard<'static, Inner> {
        STATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn abort_unwind() -> ! {
        std::panic::panic_any(SchedAbort);
    }

    /// Picks the next thread to run and stores it in `inner.current`.
    /// Never blocks and never panics; on no-eligible-threads it either
    /// records a deadlock (someone unfinished) or leaves `current` empty
    /// (everyone finished).
    fn pick_next(inner: &mut Inner) {
        if inner.aborting {
            CV.notify_all();
            return;
        }
        let mut eligible: Vec<usize> = Vec::new();
        let mut all_finished = true;
        for (i, t) in inner.threads.iter().enumerate() {
            match *t {
                TState::Runnable => {
                    eligible.push(i);
                    all_finished = false;
                }
                TState::Blocked { since } => {
                    all_finished = false;
                    if inner.wake_seq > since {
                        eligible.push(i);
                    }
                }
                TState::NotArrived | TState::Running => all_finished = false,
                TState::Finished => {}
            }
        }
        if eligible.is_empty() {
            inner.current = None;
            if !all_finished {
                inner.deadlocked = true;
                inner.aborting = true;
            }
            CV.notify_all();
            return;
        }
        let running = inner.last_running;
        let chosen = if eligible.len() == 1 {
            // Forced move: no decision consumed, no branch recorded.
            eligible[0]
        } else {
            let chosen = if inner.next_decision < inner.decisions.len() {
                let d = inner.decisions[inner.next_decision];
                inner.next_decision += 1;
                if !eligible.contains(&d) {
                    inner.stale = true;
                    inner.aborting = true;
                    CV.notify_all();
                    return;
                }
                d
            } else if let Some(r) = running.filter(|r| eligible.contains(r)) {
                // Default policy: keep running (zero preemptions)...
                r
            } else {
                // ...else lowest id.
                eligible[0]
            };
            inner.branches.push(BranchPoint {
                eligible: eligible.clone(),
                running,
                chosen,
            });
            chosen
        };
        if let Some(r) = running {
            if r != chosen && eligible.contains(&r) {
                inner.preemptions += 1;
            }
        }
        inner.current = Some(chosen);
        CV.notify_all();
    }

    /// Parks until this thread is granted the CPU (or the run aborts).
    fn wait_granted(mut inner: MutexGuard<'static, Inner>, me: usize) {
        loop {
            if inner.aborting {
                drop(inner);
                abort_unwind();
            }
            if inner.current == Some(me) {
                inner.threads[me] = TState::Running;
                return;
            }
            inner = CV.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn enter(me: usize) {
        SCHED_ID.with(|c| c.set(Some(me)));
        let mut inner = lock();
        debug_assert!(inner.active);
        inner.threads[me] = TState::Runnable;
        inner.arrived += 1;
        if inner.arrived == inner.threads.len() {
            // All threads at the start barrier: first dispatch. With >1
            // thread this is the run's first branch point.
            pick_next(&mut inner);
        }
        wait_granted(inner, me);
    }

    fn leave(me: usize) {
        SCHED_ID.with(|c| c.set(None));
        let mut inner = lock();
        if !inner.active {
            return;
        }
        inner.threads[me] = TState::Finished;
        if inner.aborting {
            CV.notify_all();
            return;
        }
        if inner.current == Some(me) {
            inner.current = None;
            inner.last_running = None;
            pick_next(&mut inner);
        }
    }

    /// Common preamble for yield/blocked points. Returns the guard with
    /// the step recorded, or `None` if this call should be a no-op (not
    /// a scheduled thread, inactive, or unwinding).
    fn step_prologue(name: &'static str) -> Option<(MutexGuard<'static, Inner>, usize)> {
        if !SCHED_ACTIVE.load(Ordering::Acquire) {
            return None;
        }
        // During unwind (a scenario panic or a scheduler abort), pass
        // through without scheduling: parking here could double-panic.
        if std::thread::panicking() {
            return None;
        }
        let me = SCHED_ID.with(Cell::get)?;
        let mut inner = lock();
        if !inner.active {
            return None;
        }
        if inner.aborting {
            drop(inner);
            abort_unwind();
        }
        inner.steps += 1;
        if inner.trace.len() < 4096 {
            inner.trace.push((me, name));
        }
        if inner.steps > inner.max_steps {
            inner.step_limit_hit = true;
            inner.aborting = true;
            CV.notify_all();
            drop(inner);
            abort_unwind();
        }
        Some((inner, me))
    }

    /// A cooperative yield point. Returns true if the call was handled by
    /// an active scheduler (so chaos rolls should be skipped).
    pub fn maybe_yield(name: &'static str) -> bool {
        if !SCHED_ACTIVE.load(Ordering::Acquire) {
            return false;
        }
        let Some((mut inner, me)) = step_prologue(name) else {
            // Active schedule but this thread is not part of it (or we
            // are unwinding): swallow the point, no chaos roll either.
            return true;
        };
        inner.threads[me] = TState::Runnable;
        inner.last_running = Some(me);
        pick_next(&mut inner);
        wait_granted(inner, me);
        true
    }

    /// A blocking yield point. Returns true if handled by an active
    /// scheduler; false means the caller should fall back to its own
    /// spin-wait (plus an ordinary chaos roll).
    pub fn block_current(name: &'static str) -> bool {
        if !SCHED_ACTIVE.load(Ordering::Acquire) {
            return false;
        }
        let Some((mut inner, me)) = step_prologue(name) else {
            // Unregistered thread under an active schedule: let it spin
            // for real, but don't inject chaos noise.
            return true;
        };
        let since = inner.wake_seq;
        inner.threads[me] = TState::Blocked { since };
        inner.last_running = Some(me);
        pick_next(&mut inner);
        wait_granted(inner, me);
        true
    }

    /// Signals that shared state changed in a way that may unblock a
    /// `blocked!` waiter (lock released, reader exited, grace period
    /// completed). Cheap no-op outside an active schedule.
    pub fn wake_hint() {
        if !SCHED_ACTIVE.load(Ordering::Acquire) {
            return;
        }
        // Only scheduled threads advance the wake clock: wakes from
        // unrelated threads in the same process (parallel tests) would
        // make eligibility — and thus branch sets — nondeterministic.
        if SCHED_ID.with(Cell::get).is_none() {
            return;
        }
        let mut inner = lock();
        if inner.active {
            inner.wake_seq += 1;
        }
    }

    /// The active schedule's compact encoding, if a run is in flight.
    #[must_use]
    pub fn active_schedule() -> Option<String> {
        if !SCHED_ACTIVE.load(Ordering::Acquire) {
            return None;
        }
        ACTIVE_SCHEDULE
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Runs `threads` under the deterministic cooperative scheduler,
    /// driven by `plan`. Blocks until every thread finishes or the run
    /// aborts (deadlock / step budget / stale decision).
    ///
    /// Takes the same global serialization lock as `ChaosPlan::install`,
    /// so schedule runs never overlap chaos runs or each other.
    pub fn run_schedule(
        plan: &SchedulePlan,
        threads: Vec<Box<dyn FnOnce() + Send + '_>>,
    ) -> ScheduleOutcome {
        let n = threads.len();
        assert!(
            (1..=MAX_SCHED_THREADS).contains(&n),
            "run_schedule supports 1..={MAX_SCHED_THREADS} threads, got {n}"
        );
        let _serial = crate::point::serial_lock();
        {
            let mut inner = lock();
            *inner = Inner {
                active: true,
                threads: vec![TState::NotArrived; n],
                max_steps: plan.max_steps(),
                decisions: plan.decisions().to_vec(),
                ..Inner::default()
            };
        }
        *ACTIVE_SCHEDULE
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(plan.encode());
        SCHED_ACTIVE.store(true, Ordering::Release);

        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for (i, f) in threads.into_iter().enumerate() {
                let panics = &panics;
                std::thread::Builder::new()
                    .name(format!("sched-{i}"))
                    .spawn_scoped(s, move || {
                        let result = catch_unwind(AssertUnwindSafe(move || {
                            enter(i);
                            f();
                        }));
                        leave(i);
                        if let Err(payload) = result {
                            if payload.downcast_ref::<SchedAbort>().is_none() {
                                panics
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push((i, panic_text(&*payload)));
                            }
                        }
                    })
                    .expect("spawn scheduled thread");
            }
        });

        SCHED_ACTIVE.store(false, Ordering::Release);
        *ACTIVE_SCHEDULE
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = None;
        let mut inner = lock();
        inner.active = false;
        let mut thread_panics = panics.into_inner().unwrap_or_else(PoisonError::into_inner);
        thread_panics.sort_by_key(|&(i, _)| i);
        ScheduleOutcome {
            branches: std::mem::take(&mut inner.branches),
            steps: inner.steps,
            preemptions: inner.preemptions,
            decisions_used: inner.next_decision,
            deadlocked: inner.deadlocked,
            step_limit_hit: inner.step_limit_hit,
            stale: inner.stale,
            trace: std::mem::take(&mut inner.trace),
            panics: thread_panics
                .into_iter()
                .map(|(i, p)| format!("thread {i}: {p}"))
                .collect(),
        }
    }
}

#[cfg(not(feature = "chaos"))]
pub(crate) mod imp {
    use super::{ScheduleOutcome, SchedulePlan, MAX_SCHED_THREADS};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[allow(dead_code)]
    pub fn maybe_yield(_name: &'static str) -> bool {
        false
    }

    #[allow(dead_code)]
    pub fn block_current(_name: &'static str) -> bool {
        false
    }

    /// No-op in this build (failpoints are compiled out).
    #[inline(always)]
    pub fn wake_hint() {}

    /// Always `None` in this build.
    #[inline(always)]
    #[must_use]
    pub fn active_schedule() -> Option<String> {
        None
    }

    /// Without the `chaos` feature there are no yield points, so the only
    /// schedule is the sequential one: each thread runs to completion in
    /// id order on the calling thread. This keeps explorer-driven tests
    /// compiling and (degenerately) passing as sequential smoke tests.
    pub fn run_schedule(
        _plan: &SchedulePlan,
        threads: Vec<Box<dyn FnOnce() + Send + '_>>,
    ) -> ScheduleOutcome {
        let n = threads.len();
        assert!(
            (1..=MAX_SCHED_THREADS).contains(&n),
            "run_schedule supports 1..={MAX_SCHED_THREADS} threads, got {n}"
        );
        let mut outcome = ScheduleOutcome::default();
        for (i, f) in threads.into_iter().enumerate() {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let text = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                outcome.panics.push(format!("thread {i}: {text}"));
            }
        }
        outcome
    }
}

pub use imp::{active_schedule, run_schedule, wake_hint};
#[allow(unused_imports)]
pub(crate) use imp::{block_current, maybe_yield};
