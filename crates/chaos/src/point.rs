//! Failpoints: [`point`], [`should_fail`], plan installation, and the
//! per-thread decision trace.

/// What a failpoint decided to do when it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// No perturbation.
    Pass,
    /// Yielded the OS scheduler (`std::thread::yield_now`).
    Yield,
    /// Spin-delayed for this many `spin_loop` hints.
    Spin(u32),
    /// A [`should_fail`] site forced the operation to restart.
    Fail,
}

/// One recorded failpoint firing (with [`ChaosPlan::traced`] plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// The failpoint name (`component/operation/site`).
    pub point: &'static str,
    /// The decision taken.
    pub action: ChaosAction,
}

/// Returns `true` iff this build has real failpoints (the `chaos` cargo
/// feature). With it off every failpoint is an empty `#[inline]` function.
#[must_use]
pub const fn chaos_enabled() -> bool {
    cfg!(feature = "chaos")
}

#[cfg(feature = "chaos")]
mod imp {
    use super::{ChaosAction, TraceEntry};
    use crate::plan::{mix64, ChaosPlan, SplitMix64};
    use core::cell::RefCell;
    use core::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Trace entries kept per thread; both runs of a replay pair truncate
    /// identically, so capping preserves trace-equality checks.
    const TRACE_CAP: usize = 1 << 16;

    /// `0` = no plan installed; failpoints are single-load no-ops.
    static ACTIVE_GENERATION: AtomicU64 = AtomicU64::new(0);
    static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);
    static PLAN: Mutex<Option<ChaosPlan>> = Mutex::new(None);
    /// Serializes chaos runs: concurrent tests in one binary would
    /// otherwise perturb (and be perturbed by) each other's plans.
    static SERIAL: Mutex<()> = Mutex::new(());
    /// Stream ids handed to threads that did not pin one; reset per
    /// install so spawn order alone determines streams.
    static NEXT_STREAM: AtomicU64 = AtomicU64::new(0);

    struct ThreadState {
        generation: u64,
        plan: ChaosPlan,
        rng: SplitMix64,
        pinned_stream: Option<u64>,
        trace: Vec<TraceEntry>,
    }

    thread_local! {
        static STATE: RefCell<ThreadState> = const {
            RefCell::new(ThreadState {
                generation: 0,
                plan: ChaosPlan::from_seed(0),
                rng: SplitMix64::new(0),
                pinned_stream: None,
                trace: Vec::new(),
            })
        };
    }

    fn unpoisoned<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An installed chaos plan. Failpoints stop firing when it drops; it
    /// also holds the global serialization lock, so at most one plan is
    /// active per process.
    pub struct ChaosGuard {
        _serial: MutexGuard<'static, ()>,
    }

    impl core::fmt::Debug for ChaosGuard {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("ChaosGuard").finish_non_exhaustive()
        }
    }

    impl Drop for ChaosGuard {
        fn drop(&mut self) {
            ACTIVE_GENERATION.store(0, Ordering::Release);
            *unpoisoned(&PLAN) = None;
        }
    }

    /// Installs `plan`, activating every failpoint in the process until
    /// the returned guard drops. Blocks while another plan is installed.
    #[must_use]
    pub fn install(plan: ChaosPlan) -> ChaosGuard {
        let serial = unpoisoned(&SERIAL);
        *unpoisoned(&PLAN) = Some(plan);
        NEXT_STREAM.store(0, Ordering::Relaxed);
        let generation = NEXT_GENERATION.fetch_add(1, Ordering::Relaxed);
        ACTIVE_GENERATION.store(generation, Ordering::Release);
        ChaosGuard { _serial: serial }
    }

    /// Pins the calling thread's decision-stream id for the current and
    /// all future plans. Replay tests pin explicit ids so two runs use
    /// identical streams regardless of what ran on the thread before;
    /// unpinned threads draw ids in first-failpoint order.
    pub fn set_thread_stream(id: u64) {
        STATE.with(|cell| {
            let mut s = cell.borrow_mut();
            s.pinned_stream = Some(id);
            // Force a refresh (and reseed) at the next failpoint.
            s.generation = 0;
        });
    }

    /// Takes the calling thread's recorded trace (empty unless the active
    /// plan was built with [`ChaosPlan::traced`]).
    #[must_use]
    pub fn take_trace() -> Vec<TraceEntry> {
        STATE.with(|cell| core::mem::take(&mut cell.borrow_mut().trace))
    }

    /// FNV-1a over the point name, so co-located points in one decision
    /// stream take name-dependent actions.
    fn hash_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Rolls the action for one firing; `None` if the plan vanished
    /// between the generation load and here.
    fn roll(name: &'static str, generation: u64, fail_site: bool) -> Option<ChaosAction> {
        STATE.with(|cell| {
            let mut s = cell.borrow_mut();
            if s.generation != generation {
                let plan = (*unpoisoned(&PLAN))?;
                let stream = s
                    .pinned_stream
                    .unwrap_or_else(|| NEXT_STREAM.fetch_add(1, Ordering::Relaxed));
                s.generation = generation;
                s.plan = plan;
                s.rng = SplitMix64::new(mix64(
                    plan.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ));
                s.trace.clear();
            }
            let z = mix64(s.rng.next_u64() ^ hash_name(name));
            let permille = (z % 1000) as u16;
            let action = if fail_site {
                if permille < s.plan.fail_permille {
                    ChaosAction::Fail
                } else {
                    ChaosAction::Pass
                }
            } else if permille < s.plan.yield_permille {
                ChaosAction::Yield
            } else if permille < s.plan.yield_permille.saturating_add(s.plan.spin_permille) {
                ChaosAction::Spin(1 + ((z >> 32) as u32) % s.plan.max_spin.max(1))
            } else {
                ChaosAction::Pass
            };
            if s.plan.trace && s.trace.len() < TRACE_CAP {
                s.trace.push(TraceEntry {
                    point: name,
                    action,
                });
            }
            Some(action)
        })
    }

    /// A named schedule-perturbation failpoint.
    #[inline]
    pub fn point(name: &'static str) {
        // An active deterministic schedule turns the point into a
        // cooperative yield and suppresses random rolls entirely.
        if crate::sched::maybe_yield(name) {
            return;
        }
        let generation = ACTIVE_GENERATION.load(Ordering::Acquire);
        if generation == 0 {
            return;
        }
        point_slow(name, generation);
    }

    #[cold]
    fn point_slow(name: &'static str, generation: u64) {
        match roll(name, generation, false) {
            Some(ChaosAction::Yield) => std::thread::yield_now(),
            Some(ChaosAction::Spin(n)) => {
                for _ in 0..n {
                    core::hint::spin_loop();
                }
            }
            _ => {}
        }
    }

    /// A named forced-restart failpoint: `true` means the caller must act
    /// as if its (correctness-preserving) retry condition fired.
    #[inline]
    pub fn should_fail(name: &'static str) -> bool {
        // Under a deterministic schedule a fail site is a plain yield
        // point: restarts are never forced (DESIGN.md §6h caveat).
        if crate::sched::maybe_yield(name) {
            return false;
        }
        let generation = ACTIVE_GENERATION.load(Ordering::Acquire);
        if generation == 0 {
            return false;
        }
        should_fail_slow(name, generation)
    }

    #[cold]
    fn should_fail_slow(name: &'static str, generation: u64) -> bool {
        matches!(roll(name, generation, true), Some(ChaosAction::Fail))
    }

    /// `true` while a plan is installed.
    #[must_use]
    pub fn chaos_active() -> bool {
        ACTIVE_GENERATION.load(Ordering::Acquire) != 0
    }

    /// The installed plan's seed, for replay-recipe reporting.
    #[must_use]
    pub fn active_plan_seed() -> Option<u64> {
        if !chaos_active() {
            return None;
        }
        (*unpoisoned(&PLAN)).map(|p| p.seed)
    }

    /// The global chaos serialization lock, shared with schedule runs so
    /// deterministic schedules never overlap random chaos plans.
    pub(crate) fn serial_lock() -> MutexGuard<'static, ()> {
        unpoisoned(&SERIAL)
    }
}

#[cfg(not(feature = "chaos"))]
mod imp {
    use super::TraceEntry;
    use crate::plan::ChaosPlan;

    /// An installed chaos plan (zero-sized no-op in this build).
    #[derive(Debug)]
    pub struct ChaosGuard {}

    /// Accepts and ignores `plan`; failpoints stay compiled out.
    #[inline]
    #[must_use]
    pub fn install(plan: ChaosPlan) -> ChaosGuard {
        let _ = plan;
        ChaosGuard {}
    }

    /// No-op in this build.
    #[inline(always)]
    pub fn set_thread_stream(id: u64) {
        let _ = id;
    }

    /// Always empty in this build.
    #[inline]
    #[must_use]
    pub fn take_trace() -> Vec<TraceEntry> {
        Vec::new()
    }

    /// No-op in this build.
    #[inline(always)]
    pub fn point(name: &'static str) {
        let _ = name;
    }

    /// Always `false` in this build.
    #[inline(always)]
    #[must_use]
    pub fn should_fail(name: &'static str) -> bool {
        let _ = name;
        false
    }

    /// Always `false` in this build.
    #[inline(always)]
    #[must_use]
    pub fn chaos_active() -> bool {
        false
    }

    /// Always `None` in this build.
    #[inline(always)]
    #[must_use]
    pub fn active_plan_seed() -> Option<u64> {
        None
    }
}

#[cfg(feature = "chaos")]
pub(crate) use imp::serial_lock;
pub use imp::{
    active_plan_seed, chaos_active, install, point, set_thread_stream, should_fail, take_trace,
    ChaosGuard,
};

#[cfg(test)]
mod tests {
    #[cfg(not(feature = "chaos"))]
    use super::*;

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn noop_failpoints_are_zero_cost() {
        assert_eq!(core::mem::size_of::<ChaosGuard>(), 0);
        let _guard = install(crate::ChaosPlan::from_seed(1).traced(true));
        point("x/y/z");
        assert!(!should_fail("x/y/z"));
        assert!(!chaos_active());
        assert!(take_trace().is_empty());
    }

    #[cfg(feature = "chaos")]
    mod chaos_on {
        use super::super::*;
        use crate::ChaosPlan;

        fn traced_run(seed: u64, fires: usize) -> Vec<TraceEntry> {
            let _guard = install(ChaosPlan::from_seed(seed).traced(true));
            set_thread_stream(0);
            for i in 0..fires {
                point(if i % 2 == 0 { "a/b/even" } else { "a/b/odd" });
                let _ = should_fail("a/b/fail");
            }
            take_trace()
        }

        #[test]
        fn same_seed_same_trace() {
            let t1 = traced_run(0xC17, 200);
            let t2 = traced_run(0xC17, 200);
            assert_eq!(t1.len(), 400);
            assert_eq!(t1, t2, "same seed must replay the same decisions");
        }

        #[test]
        fn different_seeds_diverge() {
            assert_ne!(traced_run(1, 200), traced_run(2, 200));
        }

        #[test]
        fn fail_rate_extremes() {
            let _guard = install(ChaosPlan::from_seed(3).fails(1000));
            set_thread_stream(0);
            assert!(should_fail("always"));
            drop(_guard);
            let _guard = install(ChaosPlan::from_seed(3).fails(0));
            set_thread_stream(0);
            for _ in 0..100 {
                assert!(!should_fail("never"));
            }
        }

        #[test]
        fn uninstall_deactivates() {
            let guard = install(ChaosPlan::from_seed(4).traced(true));
            assert!(chaos_active());
            set_thread_stream(0);
            point("p");
            drop(guard);
            assert!(!chaos_active());
            // Firing after uninstall records nothing new; the old trace
            // remains until taken.
            point("q");
            let trace = take_trace();
            assert_eq!(trace.len(), 1);
            assert_eq!(trace[0].point, "p");
        }

        #[test]
        fn untraced_plan_records_nothing() {
            let _guard = install(ChaosPlan::from_seed(5));
            set_thread_stream(0);
            point("p");
            assert!(take_trace().is_empty());
        }
    }
}
