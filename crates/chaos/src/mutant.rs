//! Test-only mutation hooks: named switches that make instrumented code
//! *deliberately wrong*, so the exploration and chaos suites can prove
//! they detect real bugs (and CI can self-test the detector).
//!
//! Instrumented code guards a correctness-critical step with
//! [`mutant_enabled`]:
//!
//! ```ignore
//! if !citrus_chaos::mutant_enabled("citrus/remove/skip-synchronize") {
//!     self.rcu.synchronize();
//! }
//! ```
//!
//! With the `chaos` feature off the check is `const false` and the
//! branch folds away entirely — mutants cannot be enabled in production
//! builds. Tests enable one with [`enable_mutant`] and hold the returned
//! guard for the duration of the run.

/// RAII guard from [`enable_mutant`]; dropping it disables the mutant.
#[derive(Debug)]
pub struct MutantGuard {
    #[cfg(feature = "chaos")]
    name: &'static str,
}

#[cfg(feature = "chaos")]
mod imp {
    use super::MutantGuard;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, PoisonError};

    /// Fast-path count of enabled mutants: the common case (none) is a
    /// single relaxed load.
    static ENABLED_COUNT: AtomicUsize = AtomicUsize::new(0);
    static ENABLED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

    fn set() -> std::sync::MutexGuard<'static, BTreeSet<&'static str>> {
        ENABLED.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether the named mutation is currently enabled.
    #[inline]
    #[must_use]
    pub fn mutant_enabled(name: &str) -> bool {
        if ENABLED_COUNT.load(Ordering::Relaxed) == 0 {
            return false;
        }
        set().contains(name)
    }

    /// Enables the named mutation until the returned guard drops.
    #[must_use]
    pub fn enable_mutant(name: &'static str) -> MutantGuard {
        let inserted = set().insert(name);
        assert!(inserted, "mutant {name:?} enabled twice");
        ENABLED_COUNT.fetch_add(1, Ordering::Relaxed);
        MutantGuard { name }
    }

    impl Drop for MutantGuard {
        fn drop(&mut self) {
            set().remove(self.name);
            ENABLED_COUNT.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[cfg(not(feature = "chaos"))]
mod imp {
    use super::MutantGuard;

    /// Always `false` in this build: mutations are compiled out.
    #[inline(always)]
    #[must_use]
    pub fn mutant_enabled(name: &str) -> bool {
        let _ = name;
        false
    }

    /// No-op guard in this build (the mutation will never fire).
    #[must_use]
    pub fn enable_mutant(name: &'static str) -> MutantGuard {
        let _ = name;
        MutantGuard {}
    }
}

pub use imp::{enable_mutant, mutant_enabled};
